//! Exact rational arithmetic for certifying float LP answers.
//!
//! The simplex solver works in `f64` and accepts anything within
//! [`crate::EPS`] of feasible. That is fine for driving a search, but a
//! *certificate* must not inherit the solver's rounding error — so this
//! module re-evaluates constraint rows in exact arithmetic over
//! [`Rat64`], a small bigint-free rational type whose every operation
//! is overflow-checked. Each finite `f64` is a dyadic rational and
//! converts *exactly* (no epsilon enters the conversion); an operation
//! whose exact result leaves the `i64` range is a typed
//! [`RatError::Overflow`], never a silently wrong answer.
//!
//! The verdict policy ([`check_feasibility_exact`]) is deliberately
//! three-valued: a point is **feasible** when every row holds with
//! slack outside the configured band, **infeasible** with the violated
//! row as witness, or **refused** when the exact slack is inside the
//! band — too close to call given that the *inputs* were produced by
//! float arithmetic, even though our re-evaluation of them is exact.
//!
//! # Examples
//!
//! ```
//! use ced_lp::rational::Rat64;
//!
//! let third = Rat64::new(1, 3)?;
//! let sum = third.add(third)?.add(third)?;
//! assert_eq!(sum, Rat64::from_int(1));
//! // f64 conversion is exact: 0.1 is NOT 1/10 in binary.
//! assert_ne!(Rat64::from_f64(0.1)?, Rat64::new(1, 10)?);
//! # Ok::<(), ced_lp::rational::RatError>(())
//! ```

use crate::problem::{ConstraintOp, LinearProgram};
use std::cmp::Ordering;
use std::fmt;

/// Failure of an exact-arithmetic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RatError {
    /// An intermediate or final value left the `i64` range. The
    /// certification layer treats this as "cannot certify", never as
    /// evidence either way.
    Overflow,
    /// A zero denominator (construction) or non-finite float
    /// (conversion).
    Undefined,
}

impl fmt::Display for RatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatError::Overflow => write!(f, "exact rational overflowed i64"),
            RatError::Undefined => write!(f, "undefined rational (zero denominator or NaN/inf)"),
        }
    }
}

impl std::error::Error for RatError {}

/// An exact rational `num/den` with `den > 0`, always in lowest terms.
///
/// Bigint-free by design: the numerator and denominator are plain
/// `i64`s and every operation reports [`RatError::Overflow`] instead of
/// wrapping or saturating. For the LP rows this workspace generates
/// (coefficients in `{−1, 0, 1}`, bounds in `[0, 1]`, right-hand sides
/// like `1/q`) the range is never stressed; the checks exist so that a
/// pathological input degrades to a typed refusal, not a wrong
/// certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rat64 {
    num: i64,
    den: i64,
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    // Magnitudes fit because callers never pass i64::MIN (normalize
    // rejects it via checked negation before reducing).
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// The arithmetic methods intentionally shadow the operator-trait names:
// they are the *fallible* forms (overflow is an error, not a panic), so
// implementing `Add`/`Sub`/`Mul`/`Neg` — whose signatures cannot return
// `Result` — would be wrong, and any other names would read worse.
#[allow(clippy::should_implement_trait)]
impl Rat64 {
    /// The exact zero.
    pub const ZERO: Rat64 = Rat64 { num: 0, den: 1 };

    /// Builds `num/den` in lowest terms.
    ///
    /// # Errors
    ///
    /// [`RatError::Undefined`] for `den == 0`; [`RatError::Overflow`]
    /// when normalization cannot represent the value (only possible for
    /// `i64::MIN` components).
    pub fn new(num: i64, den: i64) -> Result<Rat64, RatError> {
        if den == 0 {
            return Err(RatError::Undefined);
        }
        // Normalize sign into the numerator via checked negation, so
        // i64::MIN (whose negation overflows) is rejected, not wrapped.
        let (num, den) = if den < 0 {
            (
                num.checked_neg().ok_or(RatError::Overflow)?,
                den.checked_neg().ok_or(RatError::Overflow)?,
            )
        } else {
            (num, den)
        };
        if num == i64::MIN {
            return Err(RatError::Overflow);
        }
        let g = gcd(num, den);
        if g <= 1 {
            return Ok(Rat64 { num, den });
        }
        Ok(Rat64 {
            num: num / g,
            den: den / g,
        })
    }

    /// The exact integer `n`.
    pub fn from_int(n: i64) -> Rat64 {
        Rat64 { num: n, den: 1 }
    }

    /// Converts a finite `f64` exactly (every finite float is a dyadic
    /// rational `m · 2^e`).
    ///
    /// # Errors
    ///
    /// [`RatError::Undefined`] for NaN/infinities;
    /// [`RatError::Overflow`] when the exact value does not fit — e.g.
    /// magnitudes at or above `2^63`, or exponents below `−62` whose
    /// denominator `2^|e|` leaves `i64`.
    pub fn from_f64(x: f64) -> Result<Rat64, RatError> {
        if !x.is_finite() {
            return Err(RatError::Undefined);
        }
        if x == 0.0 {
            return Ok(Rat64::ZERO);
        }
        let bits = x.to_bits();
        let sign: i64 = if bits >> 63 == 1 { -1 } else { 1 };
        let biased = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Mantissa with the implicit leading 1 (or a subnormal), and the
        // power-of-two exponent that scales it.
        let (mut mant, mut exp) = if biased == 0 {
            (frac as i64, -1074i64)
        } else {
            ((frac | (1 << 52)) as i64, biased - 1075)
        };
        // Strip trailing zeros so the exponent is as small in magnitude
        // as the value allows.
        while mant & 1 == 0 && mant != 0 {
            mant >>= 1;
            exp += 1;
        }
        match exp.cmp(&0) {
            Ordering::Equal => Rat64::new(sign * mant, 1),
            Ordering::Greater => {
                if exp >= 63 {
                    return Err(RatError::Overflow);
                }
                let num = mant.checked_shl(exp as u32).ok_or(RatError::Overflow)?;
                // checked_shl only catches shift-amount overflow, not
                // value overflow; verify the shift is reversible.
                if num >> exp != mant {
                    return Err(RatError::Overflow);
                }
                Rat64::new(sign * num, 1)
            }
            Ordering::Less => {
                if -exp >= 63 {
                    return Err(RatError::Overflow);
                }
                Rat64::new(sign * mant, 1i64 << (-exp))
            }
        }
    }

    /// The numerator (sign-carrying, lowest terms).
    pub fn numerator(&self) -> i64 {
        self.num
    }

    /// The denominator (always positive, lowest terms).
    pub fn denominator(&self) -> i64 {
        self.den
    }

    /// Exact sum.
    ///
    /// # Errors
    ///
    /// [`RatError::Overflow`] when the exact result leaves `i64`.
    pub fn add(self, other: Rat64) -> Result<Rat64, RatError> {
        // a/b + c/d over the reduced common denominator: keeps the
        // intermediates as small as a 64-bit-only implementation can.
        let g = gcd(self.den, other.den);
        let lhs_scale = other.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)
            .and_then(|a| {
                other
                    .num
                    .checked_mul(rhs_scale)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(RatError::Overflow)?;
        let den = self.den.checked_mul(lhs_scale).ok_or(RatError::Overflow)?;
        Rat64::new(num, den)
    }

    /// Exact difference.
    ///
    /// # Errors
    ///
    /// [`RatError::Overflow`] when the exact result leaves `i64`.
    pub fn sub(self, other: Rat64) -> Result<Rat64, RatError> {
        self.add(other.neg()?)
    }

    /// Exact product.
    ///
    /// # Errors
    ///
    /// [`RatError::Overflow`] when the exact result leaves `i64`.
    pub fn mul(self, other: Rat64) -> Result<Rat64, RatError> {
        // Cross-reduce before multiplying: (a/b)(c/d) with gcd(a,d) and
        // gcd(c,b) divided out first survives much larger operands.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(other.num / g2)
            .ok_or(RatError::Overflow)?;
        let den = (self.den / g2)
            .checked_mul(other.den / g1)
            .ok_or(RatError::Overflow)?;
        Rat64::new(num, den)
    }

    /// Exact negation.
    ///
    /// # Errors
    ///
    /// [`RatError::Overflow`] for `i64::MIN` numerators (unreachable
    /// for normalized values, kept for totality).
    pub fn neg(self) -> Result<Rat64, RatError> {
        Ok(Rat64 {
            num: self.num.checked_neg().ok_or(RatError::Overflow)?,
            den: self.den,
        })
    }

    /// Exact sign: −1, 0 or 1.
    pub fn signum(&self) -> i64 {
        self.num.signum()
    }

    /// Exact absolute value.
    pub fn abs(self) -> Rat64 {
        Rat64 {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Nearest `f64` (for reporting only — never for decisions).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact comparison.
    pub fn cmp_exact(&self, other: &Rat64) -> Result<Ordering, RatError> {
        Ok(self.sub(*other)?.num.cmp(&0))
    }
}

impl fmt::Display for Rat64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Exact slack of one constraint row at a point: `rhs − lhs` for `≤`,
/// `lhs − rhs` for `≥`, `−|lhs − rhs|` for `=` — positive means
/// satisfied with room, negative means violated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackReport {
    /// Constraint row index in the program.
    pub row: usize,
    /// The exact signed slack.
    pub slack: Rat64,
}

/// Outcome of an exact feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum RationalVerdict {
    /// Every bound and row holds, each with slack at or outside the
    /// band (binding `=` rows hold exactly).
    Feasible {
        /// The smallest slack over all inequality rows (`None` when the
        /// program has only equality rows).
        min_slack: Option<SlackReport>,
    },
    /// A bound or row is violated; the witness names it.
    Infeasible {
        /// The most-violated row (or variable bound, see
        /// [`RationalVerdict::Infeasible::bound_of_var`]).
        witness: SlackReport,
        /// `Some(j)` when the witness is variable `j`'s bound rather
        /// than a constraint row (then `witness.row` is `j` too).
        bound_of_var: Option<usize>,
    },
    /// Satisfied, but some row's exact slack is strictly inside the
    /// band `(0, band)`: the float pipeline that produced the point
    /// cannot distinguish this from a violation, so certification is
    /// refused rather than granted.
    Refused {
        /// The offending row and its too-small slack.
        witness: SlackReport,
        /// The band the slack fell inside.
        band: f64,
    },
    /// Exact arithmetic could not represent an intermediate value.
    Unrepresentable {
        /// Row being evaluated when the overflow happened.
        row: usize,
    },
}

/// Checks primal feasibility of `x` in exact rational arithmetic.
///
/// All coefficients, bounds, right-hand sides and coordinates convert
/// from `f64` exactly; no epsilon enters the evaluation. `band` is the
/// refusal policy, not a tolerance: strict violations are
/// [`RationalVerdict::Infeasible`] no matter how small (this is what
/// catches float answers infeasible by less than [`crate::EPS`]), and
/// *satisfied* inequality rows whose slack is positive but below `band`
/// are [`RationalVerdict::Refused`]. Pass `band = 0.0` to certify any
/// exactly-feasible point. Equality rows must hold exactly; bounds are
/// never refused, only violated (they are integral in this workspace).
///
/// # Panics
///
/// Panics if `x.len()` differs from the program's variable count.
pub fn check_feasibility_exact(lp: &LinearProgram, x: &[f64], band: f64) -> RationalVerdict {
    assert_eq!(x.len(), lp.num_variables(), "point arity mismatch");
    let mut xs: Vec<Rat64> = Vec::with_capacity(x.len());
    for (j, &v) in x.iter().enumerate() {
        match Rat64::from_f64(v) {
            Ok(r) => xs.push(r),
            Err(_) => return RationalVerdict::Unrepresentable { row: j },
        }
    }

    // Variable bounds first: a violated bound is the cheapest witness.
    let lower = lp.lower_bounds();
    let upper = lp.upper_bounds();
    for j in 0..x.len() {
        for (bound, from_below) in [(lower[j], true), (upper[j], false)] {
            if !bound.is_finite() {
                continue;
            }
            let b = match Rat64::from_f64(bound) {
                Ok(b) => b,
                Err(_) => return RationalVerdict::Unrepresentable { row: j },
            };
            let slack = match if from_below {
                xs[j].sub(b)
            } else {
                b.sub(xs[j])
            } {
                Ok(s) => s,
                Err(_) => return RationalVerdict::Unrepresentable { row: j },
            };
            if slack.signum() < 0 {
                return RationalVerdict::Infeasible {
                    witness: SlackReport { row: j, slack },
                    bound_of_var: Some(j),
                };
            }
        }
    }

    let mut min_slack: Option<SlackReport> = None;
    for (i, c) in lp.constraints().iter().enumerate() {
        let mut lhs = Rat64::ZERO;
        for (v, a) in &c.terms {
            let coeff = match Rat64::from_f64(*a) {
                Ok(r) => r,
                Err(_) => return RationalVerdict::Unrepresentable { row: i },
            };
            lhs = match coeff.mul(xs[v.0]).and_then(|t| lhs.add(t)) {
                Ok(s) => s,
                Err(_) => return RationalVerdict::Unrepresentable { row: i },
            };
        }
        let rhs = match Rat64::from_f64(c.rhs) {
            Ok(r) => r,
            Err(_) => return RationalVerdict::Unrepresentable { row: i },
        };
        let slack = match c.op {
            ConstraintOp::Le => rhs.sub(lhs),
            ConstraintOp::Ge => lhs.sub(rhs),
            ConstraintOp::Eq => match lhs.sub(rhs) {
                Ok(d) => d.abs().neg(),
                Err(e) => Err(e),
            },
        };
        let slack = match slack {
            Ok(s) => s,
            Err(_) => return RationalVerdict::Unrepresentable { row: i },
        };
        if c.op == ConstraintOp::Eq {
            // slack = −|lhs − rhs|: zero iff the row holds exactly.
            if slack.signum() != 0 {
                return RationalVerdict::Infeasible {
                    witness: SlackReport { row: i, slack },
                    bound_of_var: None,
                };
            }
            continue;
        }
        if slack.signum() < 0 {
            return RationalVerdict::Infeasible {
                witness: SlackReport { row: i, slack },
                bound_of_var: None,
            };
        }
        if slack.signum() > 0 {
            // The band test is policy, not correctness, so a float
            // comparison is acceptable here (the band itself, e.g.
            // 1e-9, has no bigint-free exact representation — its
            // denominator is ≈ 2^78). Violation detection above never
            // touches floats.
            if slack.to_f64() < band {
                return RationalVerdict::Refused {
                    witness: SlackReport { row: i, slack },
                    band,
                };
            }
        }
        let replace = match &min_slack {
            None => true,
            Some(best) => matches!(slack.cmp_exact(&best.slack), Ok(Ordering::Less)),
        };
        if replace {
            min_slack = Some(SlackReport { row: i, slack });
        }
    }
    RationalVerdict::Feasible { min_slack }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp::*, LinearProgram, Sense};

    #[test]
    fn construction_normalizes() {
        let r = Rat64::new(6, -8).unwrap();
        assert_eq!(r.numerator(), -3);
        assert_eq!(r.denominator(), 4);
        assert_eq!(Rat64::new(0, 5).unwrap(), Rat64::ZERO);
        assert_eq!(Rat64::new(1, 0), Err(RatError::Undefined));
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Rat64::new(1, 3).unwrap();
        let b = Rat64::new(1, 6).unwrap();
        assert_eq!(a.add(b).unwrap(), Rat64::new(1, 2).unwrap());
        assert_eq!(a.sub(b).unwrap(), b);
        assert_eq!(a.mul(b).unwrap(), Rat64::new(1, 18).unwrap());
        assert_eq!(a.cmp_exact(&b).unwrap(), std::cmp::Ordering::Greater);
    }

    #[test]
    fn overflow_is_typed_not_wrapped() {
        let big = Rat64::from_int(i64::MAX);
        assert_eq!(big.add(Rat64::from_int(1)), Err(RatError::Overflow));
        assert_eq!(big.mul(Rat64::from_int(2)), Err(RatError::Overflow));
        // Cross-reduction survives products a naive implementation loses.
        let a = Rat64::new(i64::MAX, 3).unwrap();
        let b = Rat64::new(3, i64::MAX).unwrap();
        assert_eq!(a.mul(b).unwrap(), Rat64::from_int(1));
    }

    #[test]
    fn f64_conversion_is_exact() {
        assert_eq!(Rat64::from_f64(0.5).unwrap(), Rat64::new(1, 2).unwrap());
        assert_eq!(Rat64::from_f64(-2.25).unwrap(), Rat64::new(-9, 4).unwrap());
        assert_eq!(Rat64::from_f64(3.0).unwrap(), Rat64::from_int(3));
        // 0.1 is a repeating binary fraction; its f64 is NOT 1/10 and the
        // conversion must preserve that distinction (it needs 2^55 in the
        // denominator, still within range after trailing-zero stripping).
        let tenth = Rat64::from_f64(0.1).unwrap();
        assert_ne!(tenth, Rat64::new(1, 10).unwrap());
        assert_eq!(tenth.to_f64(), 0.1);
        assert_eq!(Rat64::from_f64(f64::NAN), Err(RatError::Undefined));
        assert_eq!(Rat64::from_f64(f64::INFINITY), Err(RatError::Undefined));
        // 2^63 overflows the numerator; 2^-63 overflows the denominator.
        assert_eq!(Rat64::from_f64(2f64.powi(63)), Err(RatError::Overflow));
        assert_eq!(Rat64::from_f64(2f64.powi(-63)), Err(RatError::Overflow));
    }

    fn toy_lp() -> LinearProgram {
        // x + y ≥ 1, x ∈ [0,1], y ∈ [0,1].
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 1.0, 1.0);
        let y = lp.add_variable(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 1.0);
        lp
    }

    #[test]
    fn exact_check_accepts_clearly_feasible_points() {
        let lp = toy_lp();
        match check_feasibility_exact(&lp, &[1.0, 0.5], crate::EPS) {
            RationalVerdict::Feasible { min_slack } => {
                let s = min_slack.unwrap();
                assert_eq!(s.row, 0);
                assert_eq!(s.slack, Rat64::new(1, 2).unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn sub_eps_violations_are_caught_exactly() {
        let lp = toy_lp();
        // Violated by 2^-40 ≈ 9e-13 — far inside the float tolerance
        // (is_feasible accepts it), but the exact check must reject it.
        let x = 0.5 - 2f64.powi(-40);
        assert!(lp.is_feasible(&[x, 0.5], crate::EPS));
        match check_feasibility_exact(&lp, &[x, 0.5], crate::EPS) {
            RationalVerdict::Infeasible {
                witness,
                bound_of_var: None,
            } => {
                assert_eq!(witness.row, 0);
                assert_eq!(witness.slack.signum(), -1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn slack_inside_band_is_refused_not_certified() {
        let lp = toy_lp();
        // Feasible, but only by 2^-40 < EPS: refuse.
        let x = 0.5 + 2f64.powi(-40);
        match check_feasibility_exact(&lp, &[x, 0.5], crate::EPS) {
            RationalVerdict::Refused { witness, band } => {
                assert_eq!(witness.row, 0);
                assert_eq!(band, crate::EPS);
                assert_eq!(witness.slack.signum(), 1);
            }
            other => panic!("{other:?}"),
        }
        // The same point certifies with the band switched off.
        assert!(matches!(
            check_feasibility_exact(&lp, &[x, 0.5], 0.0),
            RationalVerdict::Feasible { .. }
        ));
    }

    #[test]
    fn bound_violations_name_the_variable() {
        let lp = toy_lp();
        match check_feasibility_exact(&lp, &[1.5, 0.0], crate::EPS) {
            RationalVerdict::Infeasible {
                witness,
                bound_of_var: Some(0),
            } => {
                assert_eq!(witness.slack, Rat64::new(-1, 2).unwrap());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn equality_rows_must_hold_exactly() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Eq, 0.5);
        assert!(matches!(
            check_feasibility_exact(&lp, &[0.5], crate::EPS),
            RationalVerdict::Feasible { .. }
        ));
        assert!(matches!(
            check_feasibility_exact(&lp, &[0.5 + 2f64.powi(-50)], crate::EPS),
            RationalVerdict::Infeasible { .. }
        ));
    }
}
