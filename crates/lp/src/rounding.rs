//! Randomized rounding (Raghavan–Thompson).
//!
//! Turns a fractional LP point into a random integral point: each 0/1
//! variable independently becomes 1 with probability equal to its
//! fractional value. The paper rounds the Statement-5 relaxation a fixed
//! number of times (`ITER`) and keeps the first integral point that
//! satisfies the original integer program.
//!
//! # Examples
//!
//! ```
//! use ced_lp::rounding::round_binary;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let bits = round_binary(&[0.0, 1.0, 0.5], &mut rng);
//! assert!(!bits[0]);
//! assert!(bits[1]);
//! ```

use ced_runtime::{Budget, Interrupted};
use rand::Rng;

/// Rounds a fractional 0–1 vector to booleans: entry `x` becomes `true`
/// with probability `clamp(x, 0, 1)`.
pub fn round_binary<R: Rng + ?Sized>(fractional: &[f64], rng: &mut R) -> Vec<bool> {
    fractional
        .iter()
        .map(|&x| {
            let p = x.clamp(0.0, 1.0);
            // Avoid sampling for the (common) integral entries.
            if p <= 0.0 {
                false
            } else if p >= 1.0 {
                true
            } else {
                rng.gen_bool(p)
            }
        })
        .collect()
}

/// Rounds a fractional 0–1 vector into a bitmask (bit `i` = entry `i`).
///
/// # Panics
///
/// Panics if `fractional.len() > 64`.
pub fn round_to_mask<R: Rng + ?Sized>(fractional: &[f64], rng: &mut R) -> u64 {
    assert!(
        fractional.len() <= 64,
        "mask rounding limited to 64 entries"
    );
    round_binary(fractional, rng)
        .into_iter()
        .enumerate()
        .fold(0u64, |m, (i, b)| if b { m | (1 << i) } else { m })
}

/// Repeatedly rounds `fractional` until `accept` approves a sample or
/// `max_attempts` is exhausted; returns the accepted sample and the
/// number of attempts used.
pub fn round_until<R, F>(
    fractional: &[f64],
    rng: &mut R,
    max_attempts: usize,
    mut accept: F,
) -> Option<(Vec<bool>, usize)>
where
    R: Rng + ?Sized,
    F: FnMut(&[bool]) -> bool,
{
    for attempt in 1..=max_attempts {
        let sample = round_binary(fractional, rng);
        if accept(&sample) {
            return Some((sample, attempt));
        }
    }
    None
}

/// [`round_until`] under a [`Budget`]: one work unit is charged per
/// rounding attempt (acceptance checks can be expensive — each one
/// replays fault coverage) and the budget is checked before each
/// attempt.
///
/// # Errors
///
/// The budget's interruption. Rounding attempts consume the RNG, so an
/// interrupted run is restartable but not resumable mid-stream; callers
/// reseed on retry.
pub fn round_until_budgeted<R, F>(
    fractional: &[f64],
    rng: &mut R,
    max_attempts: usize,
    budget: &Budget,
    mut accept: F,
) -> Result<Option<(Vec<bool>, usize)>, Interrupted>
where
    R: Rng + ?Sized,
    F: FnMut(&[bool]) -> bool,
{
    for attempt in 1..=max_attempts {
        budget.tick(1, "rounding:attempt")?;
        let sample = round_binary(fractional, rng);
        if accept(&sample) {
            return Ok(Some((sample, attempt)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn integral_entries_are_deterministic() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let bits = round_binary(&[0.0, 1.0, 1.0, 0.0], &mut rng);
            assert_eq!(bits, vec![false, true, true, false]);
        }
    }

    #[test]
    fn out_of_range_values_clamped() {
        let mut rng = StdRng::seed_from_u64(0);
        let bits = round_binary(&[-0.5, 1.5], &mut rng);
        assert_eq!(bits, vec![false, true]);
    }

    #[test]
    fn half_probability_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(123);
        let mut ones = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if round_binary(&[0.5], &mut rng)[0] {
                ones += 1;
            }
        }
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "biased rounding: {frac}");
    }

    #[test]
    fn mask_rounding() {
        let mut rng = StdRng::seed_from_u64(9);
        let m = round_to_mask(&[1.0, 0.0, 1.0], &mut rng);
        assert_eq!(m, 0b101);
    }

    #[test]
    fn round_until_accepts_eventually() {
        let mut rng = StdRng::seed_from_u64(5);
        // Accept only all-ones; probability 1/8 per attempt.
        let got = round_until(&[0.5, 0.5, 0.5], &mut rng, 1000, |s| s.iter().all(|&b| b));
        let (sample, attempts) = got.expect("should succeed within 1000 tries");
        assert!(sample.iter().all(|&b| b));
        assert!(attempts >= 1);
    }

    #[test]
    fn round_until_gives_up() {
        let mut rng = StdRng::seed_from_u64(5);
        let got = round_until(&[0.5], &mut rng, 10, |_| false);
        assert!(got.is_none());
    }
}
