//! A dense two-phase primal simplex solver with bounded variables.
//!
//! Implements the textbook full-tableau simplex extended with the
//! upper-bounding technique (nonbasic variables rest at either bound;
//! bound flips avoid pivots), plus a phase-1 artificial-variable start.
//! Dantzig pricing with an automatic switch to Bland's rule guards
//! against cycling.
//!
//! This is deliberately a from-scratch implementation: no mature LP
//! crate is available offline, and the paper only requires "e.g. the
//! Simplex algorithm" (see DESIGN.md substitution note (c)). Problem
//! sizes produced by the CED pipeline — thousands of rows/columns after
//! the symmetric-block reduction and lazy row generation — are well
//! within dense-tableau reach.
//!
//! # Examples
//!
//! ```
//! use ced_lp::problem::{LinearProgram, Sense, ConstraintOp};
//! use ced_lp::simplex::solve;
//!
//! let mut lp = LinearProgram::new(Sense::Minimize);
//! let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
//! let y = lp.add_variable(0.0, f64::INFINITY, 1.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
//! let sol = solve(&lp)?;
//! assert!((sol.objective - 2.0).abs() < 1e-7);
//! # Ok::<(), ced_lp::simplex::SolveError>(())
//! ```

use crate::problem::{ConstraintOp, LinearProgram, Sense};
use ced_runtime::{Budget, Interrupted};
use std::fmt;

/// Numerical tolerance for optimality/feasibility decisions — the
/// workspace-wide [`crate::EPS`], so every comparison in the solver and
/// its callers agrees on what "zero" means.
const TOL: f64 = crate::EPS;
/// Pivot elements smaller than this are rejected (one decade above
/// [`crate::EPS`]: a pivot this close to the noise floor would amplify
/// rounding error through the whole tableau).
const PIVOT_TOL: f64 = 10.0 * crate::EPS;
/// Phase-1 residual above which the program is declared infeasible
/// (two decades above [`crate::EPS`]: phase-1 objectives accumulate
/// error across every row, so the cutoff is deliberately looser).
const PHASE1_TOL: f64 = 100.0 * crate::EPS;

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The iteration limit was reached (numerical trouble).
    IterationLimit,
    /// The caller's [`Budget`] interrupted the solve mid-pivot-sequence
    /// (cancellation, deadline, or work-unit cap).
    Interrupted(Interrupted),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "linear program is infeasible"),
            SolveError::Unbounded => write!(f, "linear program is unbounded"),
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::Interrupted(i) => write!(f, "simplex {i}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable values, indexed by [`crate::problem::VarId`].
    pub x: Vec<f64>,
    /// Optimal objective value (in the program's own sense).
    pub objective: f64,
    /// Dual values (shadow prices), one per constraint, in the
    /// *minimization* convention of the internal solver: for a
    /// `Maximize` program they are reported negated back into the
    /// program's own sense, so that relaxing a binding `≤` row by one
    /// unit improves the objective by about the dual value.
    pub duals: Vec<f64>,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Tableau {
    /// Rows × columns, `B⁻¹A`.
    t: Vec<Vec<f64>>,
    /// Reduced-cost row (kept in sync by pivots).
    z: Vec<f64>,
    /// Current basic-variable values.
    beta: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Variable statuses.
    status: Vec<VarStatus>,
    /// Upper bounds in the shifted space (lower bounds are all 0).
    upper: Vec<f64>,
    /// Costs in the shifted space (current phase).
    cost: Vec<f64>,
    iterations: usize,
}

impl Tableau {
    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::Basic(r) => self.beta[r],
            VarStatus::AtLower => 0.0,
            VarStatus::AtUpper => self.upper[j],
        }
    }

    fn objective(&self) -> f64 {
        (0..self.cost.len())
            .map(|j| self.cost[j] * self.value_of(j))
            .sum()
    }

    /// Recomputes the reduced-cost row from scratch for the current costs.
    fn reprice(&mut self) {
        let n = self.cost.len();
        let m = self.basis.len();
        let cb: Vec<f64> = self.basis.iter().map(|&b| self.cost[b]).collect();
        for j in 0..n {
            let mut d = self.cost[j];
            for i in 0..m {
                if cb[i] != 0.0 {
                    d -= cb[i] * self.t[i][j];
                }
            }
            self.z[j] = d;
        }
    }

    /// One simplex phase: optimize the current cost vector.
    ///
    /// One work unit is charged per pivot; the budget is checked every
    /// 128 pivots so a degenerate stall or huge tableau cannot outlive
    /// its deadline.
    fn optimize(&mut self, max_iterations: usize, budget: &Budget) -> Result<(), SolveError> {
        let n = self.cost.len();
        let m = self.basis.len();
        self.reprice();
        let bland_after = max_iterations / 2;
        let mut local_iter = 0usize;
        loop {
            local_iter += 1;
            self.iterations += 1;
            if local_iter > max_iterations {
                return Err(SolveError::IterationLimit);
            }
            budget.charge(1);
            // Check on the first pivot (catches pre-cancelled tokens even
            // on tiny problems) and every 128 pivots thereafter.
            if local_iter % 128 == 1 {
                budget
                    .check("simplex:pivot")
                    .map_err(SolveError::Interrupted)?;
            }
            let use_bland = local_iter > bland_after;

            // Entering variable.
            let mut entering: Option<(usize, f64)> = None; // (col, dir)
            let mut best_score = TOL;
            for j in 0..n {
                let dir = match self.status[j] {
                    VarStatus::Basic(_) => continue,
                    VarStatus::AtLower => {
                        if self.z[j] >= -TOL {
                            continue;
                        }
                        1.0
                    }
                    VarStatus::AtUpper => {
                        if self.z[j] <= TOL {
                            continue;
                        }
                        -1.0
                    }
                };
                if self.upper[j] <= 0.0 {
                    // Pinned variables (upper == lower == 0) cannot move.
                    continue;
                }
                if use_bland {
                    entering = Some((j, dir));
                    break;
                }
                let score = self.z[j].abs();
                if score > best_score {
                    best_score = score;
                    entering = Some((j, dir));
                }
            }
            let Some((e, dir)) = entering else {
                return Ok(()); // optimal
            };

            // Ratio test: largest step t ≥ 0 keeping all basics in range,
            // capped by the entering variable's own bound span. Ties break
            // toward the largest pivot magnitude for stability. The tie
            // window is the same TOL the entering test used: judging
            // near-degenerate pivots by two different epsilons lets a
            // column pass one test and fail the other.
            let tie = TOL;
            let mut t_limit = self.upper[e]; // bound-flip limit (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
            let mut best_pivot = 0.0f64;
            for i in 0..m {
                let w = self.t[i][e];
                let delta = -dir * w; // d beta_i / d t
                let candidate = if delta < -PIVOT_TOL {
                    // beta_i decreases toward 0.
                    Some((self.beta[i].max(0.0) / (-delta), false))
                } else if delta > PIVOT_TOL {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        // beta_i increases toward its upper bound.
                        Some(((ub - self.beta[i]).max(0.0) / delta, true))
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some((t, hits_upper)) = candidate {
                    let better = t < t_limit - tie || (t < t_limit + tie && w.abs() > best_pivot);
                    if better {
                        t_limit = t.min(t_limit);
                        best_pivot = w.abs();
                        leave = Some((i, hits_upper));
                    }
                }
            }

            if t_limit.is_infinite() {
                return Err(SolveError::Unbounded);
            }
            let t_step = t_limit.max(0.0);

            match leave {
                None => {
                    // Bound flip: entering moves across its full range.
                    for i in 0..m {
                        let delta = -dir * self.t[i][e];
                        self.beta[i] += delta * t_step;
                    }
                    self.status[e] = match self.status[e] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        VarStatus::Basic(_) => unreachable!("entering is nonbasic"),
                    };
                }
                Some((r, hits_upper)) => {
                    // Update basic values.
                    for i in 0..m {
                        if i != r {
                            let delta = -dir * self.t[i][e];
                            self.beta[i] += delta * t_step;
                        }
                    }
                    let entering_value = if dir > 0.0 {
                        t_step
                    } else {
                        self.upper[e] - t_step
                    };
                    let leaving = self.basis[r];
                    self.status[leaving] = if hits_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    // Pivot.
                    let pivot = self.t[r][e];
                    debug_assert!(pivot.abs() > PIVOT_TOL * 0.01, "tiny pivot {pivot}");
                    let inv = 1.0 / pivot;
                    for v in self.t[r].iter_mut() {
                        *v *= inv;
                    }
                    for i in 0..m {
                        if i == r {
                            continue;
                        }
                        let factor = self.t[i][e];
                        if factor != 0.0 {
                            // Row operation: row_i -= factor * row_r.
                            let (head, tail) = if i < r {
                                let (a, b) = self.t.split_at_mut(r);
                                (&mut a[i], &b[0])
                            } else {
                                let (a, b) = self.t.split_at_mut(i);
                                (&mut b[0], &a[r])
                            };
                            for (x, y) in head.iter_mut().zip(tail.iter()) {
                                *x -= factor * y;
                            }
                        }
                    }
                    let zfactor = self.z[e];
                    if zfactor != 0.0 {
                        let row = self.t[r].clone();
                        for (x, y) in self.z.iter_mut().zip(row.iter()) {
                            *x -= zfactor * y;
                        }
                    }
                    self.basis[r] = e;
                    self.status[e] = VarStatus::Basic(r);
                    self.beta[r] = entering_value;
                }
            }
        }
    }
}

/// Solves a linear program to optimality.
///
/// # Errors
///
/// * [`SolveError::Infeasible`] if no point satisfies all constraints;
/// * [`SolveError::Unbounded`] if the objective can improve forever;
/// * [`SolveError::IterationLimit`] on pathological numerical behaviour.
pub fn solve(lp: &LinearProgram) -> Result<LpSolution, SolveError> {
    solve_budgeted(lp, &Budget::unlimited())
}

/// [`solve`] under a [`Budget`]: one work unit is charged per simplex
/// pivot (both phases) with a budget check every 128 pivots.
///
/// # Errors
///
/// As [`solve`], plus [`SolveError::Interrupted`] when the budget is
/// exhausted or cancelled. An interrupted solve is restartable from
/// scratch — the tableau is not worth checkpointing, a re-solve from a
/// warm problem is cheap relative to the rest of the pipeline.
pub fn solve_budgeted(lp: &LinearProgram, budget: &Budget) -> Result<LpSolution, SolveError> {
    let n_struct = lp.num_variables();
    let m = lp.num_constraints();
    let lower = lp.lower_bounds();
    let upper = lp.upper_bounds();

    // Shifted space: y_j = x_j − l_j ∈ [0, u_j − l_j].
    let mut shifted_upper: Vec<f64> = (0..n_struct).map(|j| upper[j] - lower[j]).collect();
    // Minimization costs.
    let sign = match lp.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost: Vec<f64> = lp.objective().iter().map(|c| sign * c).collect();

    // Dense rows over structural + slack columns; shifted RHS.
    let mut n_total = n_struct;
    let mut slack_col: Vec<Option<usize>> = vec![None; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        if !matches!(c.op, ConstraintOp::Eq) {
            slack_col[i] = Some(n_total);
            n_total += 1;
        }
    }
    let n_with_slack = n_total;
    // One artificial per row.
    let art_base = n_with_slack;
    n_total += m;

    let mut rows = vec![vec![0.0f64; n_total]; m];
    let mut rhs = vec![0.0f64; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        let mut b = c.rhs;
        for (v, a) in &c.terms {
            rows[i][v.0] += *a;
            b -= *a * lower[v.0];
        }
        if let Some(sc) = slack_col[i] {
            rows[i][sc] = match c.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => unreachable!(),
            };
        }
        rhs[i] = b;
    }
    shifted_upper.resize(n_with_slack, f64::INFINITY);
    cost.resize(n_with_slack, 0.0);

    // Artificial columns: ±identity so that initial beta = |rhs| ≥ 0.
    let mut row_sign = vec![1.0f64; m];
    for i in 0..m {
        let s = if rhs[i] < 0.0 { -1.0 } else { 1.0 };
        if s < 0.0 {
            for v in rows[i].iter_mut() {
                *v = -*v;
            }
            rhs[i] = -rhs[i];
            row_sign[i] = -1.0;
        }
        rows[i][art_base + i] = 1.0;
    }
    shifted_upper.resize(n_total, f64::INFINITY);
    // Phase-1 costs: artificials 1, everything else 0.
    let mut phase1_cost = vec![0.0f64; n_total];
    for j in art_base..n_total {
        phase1_cost[j] = 1.0;
    }

    let mut status = vec![VarStatus::AtLower; n_total];
    let mut basis = Vec::with_capacity(m);
    for (i, st) in status[art_base..].iter_mut().enumerate() {
        *st = VarStatus::Basic(i);
        basis.push(art_base + i);
    }

    let mut tab = Tableau {
        t: rows,
        z: vec![0.0; n_total],
        beta: rhs,
        basis,
        status,
        upper: shifted_upper,
        cost: phase1_cost,
        iterations: 0,
    };

    let max_iterations = 200 * (m + n_total) + 20_000;

    // Phase 1: drive the artificial infeasibility to zero.
    tab.optimize(max_iterations, budget)?;
    if tab.objective() > PHASE1_TOL {
        return Err(SolveError::Infeasible);
    }
    // Pin artificials so they can never re-enter with nonzero value.
    for j in art_base..n_total {
        tab.upper[j] = 0.0;
    }

    // Phase 2: real objective.
    cost.resize(n_total, 0.0);
    tab.cost = cost;
    tab.optimize(max_iterations, budget)?;

    // Recover x in the original space.
    let mut x = vec![0.0f64; n_struct];
    for (j, xv) in x.iter_mut().enumerate() {
        *xv = tab.value_of(j) + lower[j];
    }
    let objective = lp.objective_value(&x);
    // Duals from the artificial columns' reduced costs: artificial i has
    // zero phase-2 cost, so its reduced cost is −(c_B B⁻¹)ᵢ in the
    // (possibly sign-flipped) row basis; undo the flip and the sense.
    tab.reprice();
    let duals = (0..m)
        .map(|i| sign * row_sign[i] * -tab.z[art_base + i])
        .collect();
    Ok(LpSolution {
        x,
        objective,
        duals,
        iterations: tab.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp::*, LinearProgram, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn basic_maximize() {
        // max x + y  s.t. x + 2y ≤ 4, 3x + y ≤ 6; optimum at (1.6, 1.2).
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Le, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Le, 6.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 2.8);
        assert_close(sol.x[0], 1.6);
        assert_close(sol.x[1], 1.2);
    }

    #[test]
    fn basic_minimize_with_ge() {
        // min 2x + 3y  s.t. x + y ≥ 4, x ≥ 1; optimum (4, 0) → 8.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, f64::INFINITY, 2.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 8.0);
    }

    #[test]
    fn equality_constraints() {
        // max x − y  s.t. x + y = 3, x ∈ [0,2], y ∈ [0,3] → x=2, y=1.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, 2.0, 1.0);
        let y = lp.add_variable(0.0, 3.0, -1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 3.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 1.0);
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn upper_bounds_respected_via_bound_flip() {
        // max x + y with x,y ≤ 1 and x + y ≤ 1.5 → 1.5.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, 1.0, 1.0);
        let y = lp.add_variable(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Le, 1.5);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 1.5);
        assert!(sol.x[0] <= 1.0 + 1e-9 && sol.x[1] <= 1.0 + 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn contradictory_equalities_infeasible() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Eq, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Eq, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Le, 1.0);
        assert_eq!(solve(&lp).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn bounded_by_variable_bounds_only() {
        // No constraints at all: optimum at the bound.
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_variable(0.0, 5.0, 2.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 10.0);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x ∈ [2, 10], y ∈ [3, 10], x + y ≥ 6 → 6 at (3,3)
        // or (2,4) etc.; objective is 6.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(2.0, 10.0, 1.0);
        let y = lp.add_variable(3.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 6.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 6.0);
        assert!(sol.x[0] >= 2.0 - 1e-9 && sol.x[1] >= 3.0 - 1e-9);
    }

    #[test]
    fn negative_rhs_rows() {
        // −x ≤ −2  ⇔  x ≥ 2.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, -1.0)], Le, -2.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 1.0);
        for k in 1..=6 {
            lp.add_constraint(vec![(x, k as f64), (y, k as f64)], Le, k as f64);
        }
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn solution_is_feasible() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let v: Vec<_> = (0..5)
            .map(|i| lp.add_variable(0.0, 1.0, (i + 1) as f64))
            .collect();
        lp.add_constraint(v.iter().map(|&x| (x, 1.0)).collect(), Le, 2.5);
        lp.add_constraint(vec![(v[0], 1.0), (v[4], 1.0)], Ge, 0.5);
        let sol = solve(&lp).unwrap();
        assert!(lp.is_feasible(&sol.x, 1e-6));
        // Greedy optimum: x4 = 1, x3 = 1, x2 = 0.5 → 5 + 4 + 1.5 = 10.5.
        assert_close(sol.objective, 10.5);
    }

    #[test]
    fn zero_variable_lp() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        lp.add_constraint(vec![], Le, 1.0);
        let sol = solve(&lp).unwrap();
        assert_close(sol.objective, 0.0);
        // An empty Ge row with positive rhs is infeasible.
        let mut bad = LinearProgram::new(Sense::Minimize);
        bad.add_constraint(vec![], Ge, 1.0);
        assert_eq!(solve(&bad).unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn duals_match_finite_differences() {
        // max x + y s.t. x + 2y ≤ 4, 3x + y ≤ 6 (both binding at the
        // optimum). The dual of each row ≈ objective gain per unit of
        // extra RHS.
        let build = |b1: f64, b2: f64| {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
            let y = lp.add_variable(0.0, f64::INFINITY, 1.0);
            lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Le, b1);
            lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Le, b2);
            lp
        };
        let base = solve(&build(4.0, 6.0)).unwrap();
        let eps = 1e-4;
        let up1 = solve(&build(4.0 + eps, 6.0)).unwrap();
        let up2 = solve(&build(4.0, 6.0 + eps)).unwrap();
        let fd1 = (up1.objective - base.objective) / eps;
        let fd2 = (up2.objective - base.objective) / eps;
        assert!(
            (base.duals[0] - fd1).abs() < 1e-3,
            "dual0 {} vs fd {}",
            base.duals[0],
            fd1
        );
        assert!(
            (base.duals[1] - fd2).abs() < 1e-3,
            "dual1 {} vs fd {}",
            base.duals[1],
            fd2
        );
    }

    #[test]
    fn nonbinding_rows_have_zero_duals() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 2.0); // binding
        lp.add_constraint(vec![(x, 1.0)], Le, 100.0); // slack
        let sol = solve(&lp).unwrap();
        assert!(sol.duals[1].abs() < 1e-9, "slack row dual {}", sol.duals[1]);
        assert!(sol.duals[0].abs() > 1e-9, "binding row dual is zero");
    }

    fn pivot_heavy_lp() -> LinearProgram {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| lp.add_variable(0.0, 1.0, 1.0 + (i % 7) as f64))
            .collect();
        for k in 0..12 {
            let terms = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i + k) % 5) as f64))
                .collect();
            lp.add_constraint(terms, Le, 3.0 + k as f64);
        }
        lp
    }

    #[test]
    fn exhausted_budget_is_a_typed_interrupt() {
        use ced_runtime::{Budget, InterruptKind};
        let lp = pivot_heavy_lp();
        // Cap of 1: the first in-loop check already sees ticks >= cap,
        // independent of how many pivots the problem actually needs.
        let budget = Budget::new().with_tick_cap(1);
        match solve_budgeted(&lp, &budget) {
            Err(SolveError::Interrupted(i)) => {
                assert_eq!(i.kind, InterruptKind::TickCapExceeded);
                assert_eq!(i.progress.stage, "simplex:pivot");
                assert!(!i.resumable);
            }
            other => panic!("expected interrupt, got {other:?}"),
        }
        // The same problem solves fine without a cap.
        assert!(solve(&lp).is_ok());
    }

    #[test]
    fn cancelled_budget_interrupts_solve() {
        use ced_runtime::{Budget, CancelToken, InterruptKind};
        let lp = pivot_heavy_lp();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::new().with_cancel(token);
        match solve_budgeted(&lp, &budget) {
            Err(SolveError::Interrupted(i)) => {
                assert_eq!(i.kind, InterruptKind::Cancelled);
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn random_lps_agree_with_enumeration() {
        // 2-variable LPs solved by brute-force vertex enumeration.
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 2000) as f64 / 100.0 - 10.0
        };
        for trial in 0..50 {
            let mut lp = LinearProgram::new(Sense::Maximize);
            let c = [next(), next()];
            let x = lp.add_variable(0.0, 10.0, c[0]);
            let y = lp.add_variable(0.0, 10.0, c[1]);
            let mut rows = Vec::new();
            for _ in 0..4 {
                let a = [next(), next()];
                let b = next().abs() + 1.0;
                rows.push((a, b));
                lp.add_constraint(vec![(x, a[0]), (y, a[1])], Le, b);
            }
            // Brute force over a fine grid (bounded box, so an optimum
            // close to the grid optimum must exist).
            let mut best = f64::NEG_INFINITY;
            let steps = 200;
            for i in 0..=steps {
                for j in 0..=steps {
                    let px = 10.0 * i as f64 / steps as f64;
                    let py = 10.0 * j as f64 / steps as f64;
                    if rows.iter().all(|(a, b)| a[0] * px + a[1] * py <= *b + 1e-9) {
                        best = best.max(c[0] * px + c[1] * py);
                    }
                }
            }
            match solve(&lp) {
                Ok(sol) => {
                    assert!(
                        lp.is_feasible(&sol.x, 1e-6),
                        "trial {trial}: infeasible answer"
                    );
                    assert!(
                        sol.objective >= best - 0.5,
                        "trial {trial}: {} < grid {best}",
                        sol.objective
                    );
                }
                Err(SolveError::Infeasible) => {
                    assert!(
                        best == f64::NEG_INFINITY,
                        "trial {trial}: solver infeasible, grid found {best}"
                    );
                }
                Err(e) => panic!("trial {trial}: unexpected {e}"),
            }
        }
    }
}
