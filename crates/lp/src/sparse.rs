//! A sparse-pivot twin of the dense two-phase simplex in
//! [`crate::simplex`], bit-compatible by construction.
//!
//! The covering relaxations the CED pipeline builds are very sparse: a
//! `≤` linking row holds one `t` term, the `β` terms of one block and a
//! slack; a `≥` demand row holds `p·L` unit terms. Under elimination
//! the tableau stays sparse — typical rows keep well under a tenth of
//! their columns nonzero — yet the dense solver's per-pivot update
//! `row_i -= factor · row_r` walks every column of every touched row,
//! although only `row_r`'s nonzero columns can change anything.
//!
//! This solver stores the tableau **column-major** (`cols[j][i]` is the
//! dense tableau's `t[i][j]`) and bounds every pivot to the true
//! nonzero structure: the ratio test is one contiguous scan of the
//! entering column that also gathers its nonzero `(row, factor)` pairs;
//! the pivot row is gathered through a per-row column-support bitmap
//! into a packed `(column, value)` list; and the elimination walks the
//! packed columns contiguously, updating only the gathered factor rows.
//! Cache lines carry only cells that change — the dense row-major sweep
//! streams the full `m × n` block per pivot, which is why it loses by
//! an order of magnitude on the covering LPs despite being
//! SIMD-friendly. The solver performs **exactly the floating-point
//! operations the dense solver performs on nonzero operands**:
//!
//! * pricing, entering choice, Bland switch, ratio-test candidate
//!   logic, tie-breaks and tolerances are the dense code verbatim, and
//!   the entering column is visited in the dense loop's ascending row
//!   order, so the candidate sequence — and the tie-break outcome — is
//!   identical (rows holding an exact zero have `|delta| ≤ PIVOT_TOL`
//!   and are never candidates in the dense code either);
//! * each eliminated cell computes the dense update `x − factor·y` on
//!   identical operands, with `factor` captured from the entering
//!   column before any elimination write, exactly as the dense code
//!   reads it; cells are independent (no cell is both read and written
//!   across the pivot), so visiting columns-outer instead of rows-outer
//!   reorders no arithmetic *within* any cell;
//! * per-`z[j]` and per-`beta[i]` accumulation orders are preserved
//!   (ascending basic-row order in `SparseTableau::reprice`, one
//!   update per pivot elsewhere);
//! * the skipped cells hold an exact `0.0` operand, where the dense
//!   update (`x − factor·0.0`, `0.0 · inv`, `z − zfactor·0.0`, a ratio
//!   candidate with `delta = ±0.0`) is an identity on the magnitude of
//!   the target.
//!
//! The skipped operations can differ from the dense ones only in the
//! sign of a zero, which no comparison, pivot choice or reported value
//! in this solver observes (IEEE-754 orders `−0.0 == +0.0`). Hence
//! [`solve_sparse`] returns solutions equal (`==` on [`LpSolution`],
//! including iteration counts) to [`crate::simplex::solve`]; the seeded
//! differential tests in `tests/seeded.rs` pin this.
//!
//! The support bitmaps are supersets: exact cancellation leaves a stale
//! bit whose cell holds an exact `0.0`, which every gather re-checks by
//! value. Bits are cleared only when a set is recomputed exactly (the
//! pivot row's support after normalization).
//!
//! When dense still wins: tiny programs, or programs whose pivot rows
//! fill in to near-full support, where the per-pivot gather buys
//! nothing over the dense solver's straight-line SIMD-friendly sweep.
//! The pipeline keeps the dense path selectable for exactly that
//! reason (DESIGN.md §15).

use crate::problem::{ConstraintOp, LinearProgram, Sense};
use crate::simplex::{LpSolution, SolveError};
use ced_runtime::Budget;
use std::cell::RefCell;

thread_local! {
    /// Reused backing for the two large per-solve allocations — the
    /// column-major cells and the row-support bitmaps. The search
    /// solves long runs of identically-shaped LPs; reusing the
    /// buffers keeps their pages warm. Contents are fully rewritten
    /// at the start of every solve.
    static TABLEAU_SCRATCH: RefCell<(Vec<f64>, Vec<u64>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Same decision tolerances as the dense solver — shared meaning of
/// "zero" is a precondition for bit-compatibility.
const TOL: f64 = crate::EPS;
const PIVOT_TOL: f64 = 10.0 * crate::EPS;
const PHASE1_TOL: f64 = 100.0 * crate::EPS;

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct SparseTableau {
    /// Column-major cells, one flat allocation: the dense tableau's
    /// `t[i][j]` lives at `cols[j * m + i]`. The entering-column scan
    /// and the per-column eliminations are contiguous in this layout.
    cols: Vec<f64>,
    /// Row count (the column stride of `cols`).
    m: usize,
    /// Per-row bitmap over columns, flat with stride `words`: bit `j`
    /// of row `i`'s slice set when `t[i][j]` *may* be nonzero (a
    /// superset — cancellations leave stale bits, and every gather
    /// re-checks the cell by value). Cells outside the set hold a
    /// zero.
    row_support: Vec<u64>,
    /// `row_support` stride (`ceil(n_total / 64)`).
    words: usize,
    /// Reused packed `(column, value)` gather of the normalized pivot
    /// row.
    pivot_scratch: Vec<(u32, f64)>,
    /// Reused packed `(row, value)` gather of the entering column,
    /// filled by the ratio test.
    factor_scratch: Vec<(u32, f64)>,
    /// Reused dense scatter of the entering column's factors (zero
    /// outside the gathered rows), for the branchless elimination
    /// sweep.
    factor_dense: Vec<f64>,
    /// Reused column-set bitmap of the packed pivot row.
    mask_scratch: Vec<u64>,
    /// Bitmap of columns the entering scan must visit: exactly the
    /// non-basic columns with `upper > 0` — the columns the dense scan
    /// does not `continue` past before reading anything that matters.
    /// Maintained per pivot; rebuilt at the start of each phase.
    eligible: Vec<u64>,
    z: Vec<f64>,
    beta: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    iterations: usize,
}

/// Visits the set bits of `words` in ascending index order.
#[inline]
fn for_each_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            w &= w - 1;
            f(wi * 64 + b);
        }
    }
}

impl SparseTableau {
    fn value_of(&self, j: usize) -> f64 {
        match self.status[j] {
            VarStatus::Basic(r) => self.beta[r],
            VarStatus::AtLower => 0.0,
            VarStatus::AtUpper => self.upper[j],
        }
    }

    fn objective(&self) -> f64 {
        (0..self.cost.len())
            .map(|j| self.cost[j] * self.value_of(j))
            .sum()
    }

    /// Recomputes the reduced-cost row. The dense loop subtracts
    /// `cb[i]·t[i][j]` from each `z[j]` for ascending `i`, skipping
    /// zero basic costs; iterating columns-outer performs the same
    /// subtraction sequence per `z[j]`.
    fn reprice(&mut self) {
        let cb: Vec<(usize, f64)> = self
            .basis
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (self.cost[b] != 0.0).then_some((i, self.cost[b])))
            .collect();
        self.z.copy_from_slice(&self.cost);
        if cb.is_empty() {
            return;
        }
        for (zj, col) in self.z.iter_mut().zip(self.cols.chunks_exact(self.m)) {
            for &(i, c) in &cb {
                *zj -= c * col[i];
            }
        }
    }

    /// One simplex phase; the dense `optimize` with pivot-row-bounded
    /// eliminations.
    fn optimize(&mut self, max_iterations: usize, budget: &Budget) -> Result<(), SolveError> {
        let n = self.cost.len();
        let m = self.basis.len();
        self.reprice();
        // The dense entering scan skips basic columns and columns with
        // `upper ≤ 0` before any decision depends on their values;
        // visiting exactly the remainder, ascending, picks the same
        // column. Upper bounds change only between phases, so the set
        // is rebuilt here and maintained per pivot below.
        self.eligible.clear();
        self.eligible.resize(n.div_ceil(64), 0);
        for j in 0..n {
            let nonbasic = !matches!(self.status[j], VarStatus::Basic(_));
            if nonbasic && self.upper[j] > 0.0 {
                self.eligible[j / 64] |= 1 << (j % 64);
            }
        }
        self.factor_dense.clear();
        self.factor_dense.resize(m, 0.0);
        let bland_after = max_iterations / 2;
        let mut local_iter = 0usize;
        let stats = std::env::var_os("CED_SPARSE_STATS").is_some();
        let (mut tot_factors, mut tot_packed, mut n_pivots) = (0u64, 0u64, 0u64);
        let mut tot_support = 0u64;
        loop {
            local_iter += 1;
            self.iterations += 1;
            if local_iter > max_iterations {
                return Err(SolveError::IterationLimit);
            }
            budget.charge(1);
            if local_iter % 128 == 1 {
                budget
                    .check("simplex:pivot")
                    .map_err(SolveError::Interrupted)?;
            }
            let use_bland = local_iter > bland_after;

            // Entering variable — the dense logic over the eligible
            // set. Columns the bitmap skips are exactly those the
            // dense scan `continue`s past (basic, or `upper ≤ 0` — the
            // z-sign test on those can only lead to that same
            // `continue`), so the candidate order and the Dantzig /
            // Bland choice are identical.
            let mut entering: Option<(usize, f64)> = None;
            let mut best_score = TOL;
            'scan: for (wi, &word) in self.eligible.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let j = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    let dir = match self.status[j] {
                        VarStatus::Basic(_) => unreachable!("basic columns are not eligible"),
                        VarStatus::AtLower => {
                            if self.z[j] >= -TOL {
                                continue;
                            }
                            1.0
                        }
                        VarStatus::AtUpper => {
                            if self.z[j] <= TOL {
                                continue;
                            }
                            -1.0
                        }
                    };
                    if use_bland {
                        entering = Some((j, dir));
                        break 'scan;
                    }
                    let score = self.z[j].abs();
                    if score > best_score {
                        best_score = score;
                        entering = Some((j, dir));
                    }
                }
            }
            let Some((e, dir)) = entering else {
                if stats && n_pivots > 0 {
                    eprintln!(
                        "sparse-stats: iters={local_iter} pivots={n_pivots} m={m} n={n} \
                         avg_factors={:.1} avg_packed={:.1} avg_support={:.1}",
                        tot_factors as f64 / local_iter as f64,
                        tot_packed as f64 / n_pivots as f64,
                        tot_support as f64 / n_pivots as f64,
                    );
                }
                return Ok(());
            };

            // Ratio test — the dense candidate logic over a contiguous
            // scan of the entering column, rows ascending exactly as
            // the dense loop visits them (rows holding an exact zero
            // have `|delta| ≤ PIVOT_TOL` and are never candidates in
            // the dense code either). The scan also gathers the
            // column's nonzero `(row, factor)` pairs — the factors the
            // dense elimination will read — before anything writes to
            // the column.
            let mut factors = std::mem::take(&mut self.factor_scratch);
            factors.clear();
            let tie = TOL;
            let mut t_limit = self.upper[e];
            let mut leave: Option<(usize, bool)> = None;
            let mut best_pivot = 0.0f64;
            for (i, &w) in self.cols[e * m..e * m + m].iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                factors.push((i as u32, w));
                let delta = -dir * w;
                let candidate = if delta < -PIVOT_TOL {
                    Some((self.beta[i].max(0.0) / (-delta), false))
                } else if delta > PIVOT_TOL {
                    let ub = self.upper[self.basis[i]];
                    if ub.is_finite() {
                        Some(((ub - self.beta[i]).max(0.0) / delta, true))
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some((t, hits_upper)) = candidate {
                    let better = t < t_limit - tie || (t < t_limit + tie && w.abs() > best_pivot);
                    if better {
                        t_limit = t.min(t_limit);
                        best_pivot = w.abs();
                        leave = Some((i, hits_upper));
                    }
                }
            }
            if stats {
                tot_factors += factors.len() as u64;
            }

            if t_limit.is_infinite() {
                return Err(SolveError::Unbounded);
            }
            let t_step = t_limit.max(0.0);

            match leave {
                None => {
                    // Bound flip — the dense loop restricted to the
                    // column's nonzero rows (skipped rows add
                    // `(−dir·0.0)·t_step`, an exact no-op on the
                    // magnitude of `beta`).
                    for &(i, w) in &factors {
                        let delta = -dir * w;
                        self.beta[i as usize] += delta * t_step;
                    }
                    self.status[e] = match self.status[e] {
                        VarStatus::AtLower => VarStatus::AtUpper,
                        VarStatus::AtUpper => VarStatus::AtLower,
                        VarStatus::Basic(_) => unreachable!("entering is nonbasic"),
                    };
                }
                Some((r, hits_upper)) => {
                    for &(i, w) in &factors {
                        if i as usize != r {
                            let delta = -dir * w;
                            self.beta[i as usize] += delta * t_step;
                        }
                    }
                    let entering_value = if dir > 0.0 {
                        t_step
                    } else {
                        self.upper[e] - t_step
                    };
                    let leaving = self.basis[r];
                    self.status[leaving] = if hits_upper {
                        VarStatus::AtUpper
                    } else {
                        VarStatus::AtLower
                    };
                    // Pivot: normalize row r through its support
                    // bitmap, gathering the nonzero `(column, value)`
                    // pairs ascending — the dense column order. Zero
                    // cells are `0.0 · inv` in dense too; a cell
                    // scaled to an exact zero (underflow) stays stored
                    // and every later dense use of it is a `±0.0`
                    // no-op, so dropping it from the gather is exact.
                    let pivot = self.cols[e * m + r];
                    debug_assert!(pivot.abs() > PIVOT_TOL * 0.01, "tiny pivot {pivot}");
                    let inv = 1.0 / pivot;
                    let mut packed = std::mem::take(&mut self.pivot_scratch);
                    packed.clear();
                    if stats {
                        tot_support += self.row_support[r * self.words..(r + 1) * self.words]
                            .iter()
                            .map(|w| w.count_ones() as u64)
                            .sum::<u64>();
                    }
                    {
                        let cols = &mut self.cols;
                        let support = &self.row_support[r * self.words..(r + 1) * self.words];
                        for_each_bit(support, |j| {
                            let v = &mut cols[j * m + r];
                            if *v != 0.0 {
                                *v *= inv;
                                if *v != 0.0 {
                                    packed.push((j as u32, *v));
                                }
                            }
                        });
                    }
                    // Eliminate: the dense code updates cell (i, j)
                    // as `t[i][j] -= factor · y_j` for every nonzero
                    // factor row i ≠ r and every pivot-row column j.
                    // Each cell is touched once with operands fixed
                    // before the sweep, so walking columns-outer
                    // (contiguous in this layout) computes the
                    // identical values.
                    // Scatter the captured factors into a dense
                    // m-vector (zero at the pivot row and every row
                    // the dense code skips), then sweep each packed
                    // column contiguously. Skipped rows compute
                    // `x − (±0.0)·y`, exact on the magnitude of `x`,
                    // and the sweep is branchless — the compiler
                    // vectorizes it.
                    factors.retain(|&(i, _)| i as usize != r);
                    for &(i, factor) in &factors {
                        self.factor_dense[i as usize] = factor;
                    }
                    {
                        let cols = &mut self.cols;
                        let fd = &self.factor_dense;
                        for &(j, y) in &packed {
                            let col = &mut cols[j as usize * m..j as usize * m + m];
                            for (x, &factor) in col.iter_mut().zip(fd) {
                                *x -= factor * y;
                            }
                        }
                    }
                    for &(i, _) in &factors {
                        self.factor_dense[i as usize] = 0.0;
                    }
                    // The elimination wrote cells only at (factor
                    // rows) × (pivot-row columns): widen those rows'
                    // bitmaps. Row r's support is now exactly the
                    // packed set.
                    let mut mask = std::mem::take(&mut self.mask_scratch);
                    mask.clear();
                    mask.resize(self.words, 0);
                    for &(j, _) in &packed {
                        mask[j as usize / 64] |= 1 << (j as usize % 64);
                    }
                    let words = self.words;
                    for &(i, _) in &factors {
                        let sup = &mut self.row_support[i as usize * words..];
                        for (dst, &src) in sup.iter_mut().zip(&mask) {
                            *dst |= src;
                        }
                    }
                    self.row_support[r * words..(r + 1) * words].copy_from_slice(&mask);
                    self.mask_scratch = mask;
                    // Reduced costs: dense subtracts over every column
                    // of (normalized) row r; zero columns contribute
                    // `zfactor · 0.0`.
                    let zfactor = self.z[e];
                    if zfactor != 0.0 {
                        for &(j, y) in &packed {
                            self.z[j as usize] -= zfactor * y;
                        }
                    }
                    if stats {
                        tot_packed += packed.len() as u64;
                        n_pivots += 1;
                    }
                    self.pivot_scratch = packed;
                    self.basis[r] = e;
                    self.status[e] = VarStatus::Basic(r);
                    self.beta[r] = entering_value;
                    // Maintain the eligible set: `e` became basic, the
                    // leaving column became nonbasic (eligible only
                    // when its upper bound admits movement).
                    self.eligible[e / 64] &= !(1 << (e % 64));
                    if self.upper[leaving] > 0.0 {
                        self.eligible[leaving / 64] |= 1 << (leaving % 64);
                    }
                }
            }
            self.factor_scratch = factors;
        }
    }
}

/// Solves a linear program with the sparse-pivot simplex.
///
/// Returns solutions equal to [`crate::simplex::solve`] (same `x`,
/// objective, duals and iteration count).
///
/// # Errors
///
/// As [`crate::simplex::solve`].
pub fn solve_sparse(lp: &LinearProgram) -> Result<LpSolution, SolveError> {
    solve_budgeted_sparse(lp, &Budget::unlimited())
}

/// [`solve_sparse`] under a [`Budget`], charging and checking exactly
/// as [`crate::simplex::solve_budgeted`] does (one unit per pivot, a
/// check every 128).
///
/// # Errors
///
/// As [`crate::simplex::solve_budgeted`].
pub fn solve_budgeted_sparse(
    lp: &LinearProgram,
    budget: &Budget,
) -> Result<LpSolution, SolveError> {
    let n_struct = lp.num_variables();
    let m = lp.num_constraints();
    let lower = lp.lower_bounds();
    let upper = lp.upper_bounds();

    let mut shifted_upper: Vec<f64> = (0..n_struct).map(|j| upper[j] - lower[j]).collect();
    let sign = match lp.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost: Vec<f64> = lp.objective().iter().map(|c| sign * c).collect();

    let mut n_total = n_struct;
    let mut slack_col: Vec<Option<usize>> = vec![None; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        if !matches!(c.op, ConstraintOp::Eq) {
            slack_col[i] = Some(n_total);
            n_total += 1;
        }
    }
    let n_with_slack = n_total;
    let art_base = n_with_slack;
    n_total += m;

    // Assemble each row exactly as the dense solver does (duplicate
    // terms add, lower bounds shift the RHS, negative-RHS rows negate
    // in place), writing straight into the column-major store and the
    // row-support bitmaps. A duplicate pair cancelling to an exact
    // zero leaves a stale support bit over a zero cell, which every
    // later gather re-checks by value.
    let words = n_total.div_ceil(64);
    let (mut cols, mut row_support) =
        TABLEAU_SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    cols.clear();
    cols.resize(n_total * m, 0.0);
    row_support.clear();
    row_support.resize(m * words, 0);
    let mut rhs = vec![0.0f64; m];
    let mut row_sign = vec![1.0f64; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        let support = &mut row_support[i * words..(i + 1) * words];
        let mut b = c.rhs;
        for (v, a) in &c.terms {
            cols[v.0 * m + i] += *a;
            b -= *a * lower[v.0];
            support[v.0 / 64] |= 1 << (v.0 % 64);
        }
        if let Some(sc) = slack_col[i] {
            cols[sc * m + i] = match c.op {
                ConstraintOp::Le => 1.0,
                ConstraintOp::Ge => -1.0,
                ConstraintOp::Eq => unreachable!(),
            };
            support[sc / 64] |= 1 << (sc % 64);
        }
        if b < 0.0 {
            // The dense code negates the full row; its zero cells
            // only change zero sign.
            for_each_bit(support, |j| {
                let v = &mut cols[j * m + i];
                *v = -*v;
            });
            b = -b;
            row_sign[i] = -1.0;
        }
        rhs[i] = b;
        let aj = art_base + i;
        cols[aj * m + i] = 1.0;
        support[aj / 64] |= 1 << (aj % 64);
    }
    shifted_upper.resize(n_with_slack, f64::INFINITY);
    cost.resize(n_with_slack, 0.0);
    shifted_upper.resize(n_total, f64::INFINITY);
    let mut phase1_cost = vec![0.0f64; n_total];
    for j in art_base..n_total {
        phase1_cost[j] = 1.0;
    }

    let mut status = vec![VarStatus::AtLower; n_total];
    let mut basis = Vec::with_capacity(m);
    for (i, st) in status[art_base..].iter_mut().enumerate() {
        *st = VarStatus::Basic(i);
        basis.push(art_base + i);
    }

    let mut tab = SparseTableau {
        cols,
        m,
        row_support,
        words,
        pivot_scratch: Vec::new(),
        factor_scratch: Vec::new(),
        factor_dense: Vec::new(),
        mask_scratch: Vec::new(),
        eligible: Vec::new(),
        z: vec![0.0; n_total],
        beta: rhs,
        basis,
        status,
        upper: shifted_upper,
        cost: phase1_cost,
        iterations: 0,
    };

    let max_iterations = 200 * (m + n_total) + 20_000;

    let run = (|| -> Result<(), SolveError> {
        tab.optimize(max_iterations, budget)?;
        if tab.objective() > PHASE1_TOL {
            return Err(SolveError::Infeasible);
        }
        for j in art_base..n_total {
            tab.upper[j] = 0.0;
        }
        cost.resize(n_total, 0.0);
        tab.cost = cost;
        tab.optimize(max_iterations, budget)
    })();

    let out = run.map(|()| {
        let mut x = vec![0.0f64; n_struct];
        for (j, xv) in x.iter_mut().enumerate() {
            *xv = tab.value_of(j) + lower[j];
        }
        let objective = lp.objective_value(&x);
        tab.reprice();
        let duals = (0..m)
            .map(|i| sign * row_sign[i] * -tab.z[art_base + i])
            .collect();
        LpSolution {
            x,
            objective,
            duals,
            iterations: tab.iterations,
        }
    });

    TABLEAU_SCRATCH.with(|s| {
        *s.borrow_mut() = (
            std::mem::take(&mut tab.cols),
            std::mem::take(&mut tab.row_support),
        );
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp::*, LinearProgram, Sense};
    use crate::simplex::solve;

    /// Bitwise-equal against the dense solver (LpSolution derives
    /// PartialEq over its f64 fields).
    fn assert_matches_dense(lp: &LinearProgram) {
        let dense = solve(lp);
        let sparse = solve_sparse(lp);
        match (dense, sparse) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("dense {a:?} vs sparse {b:?}"),
        }
    }

    #[test]
    fn textbook_instances_match_dense_exactly() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Le, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Le, 6.0);
        assert_matches_dense(&lp);

        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, f64::INFINITY, 2.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 3.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 1.0);
        assert_matches_dense(&lp);

        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, 2.0, 1.0);
        let y = lp.add_variable(0.0, 3.0, -1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 3.0);
        assert_matches_dense(&lp);
    }

    #[test]
    fn typed_failures_match_dense() {
        let mut infeasible = LinearProgram::new(Sense::Maximize);
        let x = infeasible.add_variable(0.0, 1.0, 1.0);
        infeasible.add_constraint(vec![(x, 1.0)], Ge, 2.0);
        assert_matches_dense(&infeasible);

        let mut unbounded = LinearProgram::new(Sense::Maximize);
        let x = unbounded.add_variable(0.0, f64::INFINITY, 1.0);
        let y = unbounded.add_variable(0.0, f64::INFINITY, 0.0);
        unbounded.add_constraint(vec![(x, 1.0), (y, -1.0)], Le, 1.0);
        assert_matches_dense(&unbounded);
    }

    #[test]
    fn negative_rhs_and_bounds_match_dense() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, -1.0)], Le, -2.0);
        assert_matches_dense(&lp);

        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(2.0, 10.0, 1.0);
        let y = lp.add_variable(3.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 6.0);
        assert_matches_dense(&lp);
    }

    #[test]
    fn degenerate_vertex_matches_dense() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, f64::INFINITY, 1.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 1.0);
        for k in 1..=6 {
            lp.add_constraint(vec![(x, k as f64), (y, k as f64)], Le, k as f64);
        }
        assert_matches_dense(&lp);
    }

    #[test]
    fn budget_interrupt_is_identical() {
        use ced_runtime::InterruptKind;
        let mut lp = LinearProgram::new(Sense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| lp.add_variable(0.0, 1.0, 1.0 + (i % 7) as f64))
            .collect();
        for k in 0..12 {
            let terms = vars
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + ((i + k) % 5) as f64))
                .collect();
            lp.add_constraint(terms, Le, 3.0 + k as f64);
        }
        let budget = Budget::new().with_tick_cap(1);
        match solve_budgeted_sparse(&lp, &budget) {
            Err(SolveError::Interrupted(i)) => {
                assert_eq!(i.kind, InterruptKind::TickCapExceeded);
                assert_eq!(i.progress.stage, "simplex:pivot");
            }
            other => panic!("expected interrupt, got {other:?}"),
        }
        assert_matches_dense(&lp);
    }

    /// The covering-relaxation shape at a realistic size: unit
    /// coefficients cancel exactly under elimination, so pivot rows
    /// must stay genuinely sparse for the packed gather to pay off —
    /// and the answers must stay bitwise dense.
    #[test]
    fn unit_coefficient_covering_lp_matches_dense() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let vars: Vec<_> = (0..20).map(|_| lp.add_variable(0.0, 1.0, 1.0)).collect();
        let mut state = 0x2468_ACE1_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..60 {
            let terms: Vec<_> = vars
                .iter()
                .filter(|_| next() % 3 == 0)
                .map(|&v| (v, 1.0))
                .collect();
            if terms.is_empty() {
                continue;
            }
            lp.add_constraint(terms, Ge, 1.0);
        }
        assert_matches_dense(&lp);
    }
}
