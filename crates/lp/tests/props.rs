//! Property-based tests for the simplex solver: every reported optimum
//! must be feasible, beat random feasible points, and behave sanely
//! under objective scaling and constraint tightening.

use ced_lp::problem::{ConstraintOp, LinearProgram, Sense};
use ced_lp::simplex::{solve, SolveError};
use proptest::prelude::*;

/// A random small LP: bounded box, ≤ constraints with positive RHS so
/// the origin-shifted problem is always feasible.
#[derive(Debug, Clone)]
struct RandomLp {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
}

fn random_lp(vars: usize, rows: usize) -> impl Strategy<Value = RandomLp> {
    let coef = -5.0..5.0f64;
    (
        proptest::collection::vec(coef.clone(), vars),
        proptest::collection::vec(
            (proptest::collection::vec(coef, vars), 0.5..8.0f64),
            0..=rows,
        ),
    )
        .prop_map(|(costs, rows)| RandomLp { costs, rows })
}

fn build(lp_spec: &RandomLp, sense: Sense) -> LinearProgram {
    let mut lp = LinearProgram::new(sense);
    let vars: Vec<_> = lp_spec
        .costs
        .iter()
        .map(|&c| lp.add_variable(0.0, 3.0, c))
        .collect();
    for (coefs, rhs) in &lp_spec.rows {
        let terms: Vec<_> = vars.iter().zip(coefs).map(|(&v, &a)| (v, a)).collect();
        lp.add_constraint(terms, ConstraintOp::Le, *rhs);
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimum_is_feasible(spec in random_lp(4, 5)) {
        let lp = build(&spec, Sense::Maximize);
        // Origin is feasible (rhs > 0, lower bounds 0), so never Infeasible.
        let sol = solve(&lp).expect("origin-feasible LP must solve");
        prop_assert!(lp.is_feasible(&sol.x, 1e-6), "optimum violates constraints");
    }

    #[test]
    fn optimum_dominates_grid_points(spec in random_lp(3, 4)) {
        let lp = build(&spec, Sense::Maximize);
        let sol = solve(&lp).expect("feasible");
        // Coarse grid over the box; optimum must not be beaten.
        let steps = 6;
        for i in 0..=steps {
            for j in 0..=steps {
                for k in 0..=steps {
                    let x = [
                        3.0 * i as f64 / steps as f64,
                        3.0 * j as f64 / steps as f64,
                        3.0 * k as f64 / steps as f64,
                    ];
                    if lp.is_feasible(&x, 1e-9) {
                        let val = lp.objective_value(&x);
                        prop_assert!(
                            sol.objective >= val - 1e-6,
                            "grid point {x:?} = {val} beats optimum {}",
                            sol.objective
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn min_equals_negated_max(spec in random_lp(4, 4)) {
        let max_lp = build(&spec, Sense::Maximize);
        let mut neg = spec.clone();
        for c in neg.costs.iter_mut() {
            *c = -*c;
        }
        let min_lp = build(&neg, Sense::Minimize);
        let a = solve(&max_lp).expect("feasible");
        let b = solve(&min_lp).expect("feasible");
        prop_assert!((a.objective + b.objective).abs() < 1e-5,
            "max {} vs min {}", a.objective, b.objective);
    }

    #[test]
    fn scaling_objective_scales_optimum(spec in random_lp(3, 4), scale in 0.5..4.0f64) {
        let base = solve(&build(&spec, Sense::Maximize)).expect("feasible");
        let mut scaled_spec = spec.clone();
        for c in scaled_spec.costs.iter_mut() {
            *c *= scale;
        }
        let scaled = solve(&build(&scaled_spec, Sense::Maximize)).expect("feasible");
        prop_assert!((scaled.objective - scale * base.objective).abs() < 1e-4 * (1.0 + base.objective.abs()),
            "scaled {} vs {} × {}", scaled.objective, scale, base.objective);
    }

    #[test]
    fn extra_constraint_never_improves(spec in random_lp(3, 3), rhs in 0.5..4.0f64) {
        let lp1 = build(&spec, Sense::Maximize);
        let base = solve(&lp1).expect("feasible");
        // Add one more ≤ row (sum of vars ≤ rhs keeps origin feasible).
        let mut spec2 = spec.clone();
        spec2.rows.push((vec![1.0; 3], rhs));
        let tightened = solve(&build(&spec2, Sense::Maximize)).expect("feasible");
        prop_assert!(tightened.objective <= base.objective + 1e-6);
    }

    #[test]
    fn equality_rows_hold_exactly(a in 0.2..3.0f64, b in 0.2..3.0f64) {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 10.0, 1.0);
        let y = lp.add_variable(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, a), (y, b)], ConstraintOp::Eq, a + b);
        let sol = solve(&lp).expect("point (1,1) is feasible");
        let lhs = a * sol.x[0] + b * sol.x[1];
        prop_assert!((lhs - (a + b)).abs() < 1e-6);
    }

    #[test]
    fn infeasible_boxes_detected(lo in 2.0..4.0f64) {
        // x ≤ 1 and x ≥ lo > 1 simultaneously.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, 10.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, lo);
        prop_assert_eq!(solve(&lp).unwrap_err(), SolveError::Infeasible);
    }
}
