//! Seeded property tests for the simplex solver.
//!
//! Three robustness contracts beyond the feasibility/optimality
//! properties in `props.rs`:
//!
//! 1. determinism — the solver is a pure function of the program, so
//!    rebuilding the same seeded instance must reproduce the solution
//!    bit for bit (x, duals, objective, and iteration count);
//! 2. anti-cycling — Beale's classic cycling instance (which loops
//!    forever under naive Dantzig pricing) must terminate at its known
//!    optimum, exercising the Bland's-rule switch;
//! 3. typed failures — every public entry point returns `Result`, and
//!    pathological inputs surface as `SolveError` variants, never
//!    panics.

use ced_lp::problem::{ConstraintOp, LinearProgram, Sense};
use ced_lp::simplex::{solve, LpSolution, SolveError};
use ced_lp::sparse::solve_sparse;
use proptest::prelude::*;

/// Splitmix64: a tiny deterministic generator so instances are a pure
/// function of the seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish coefficient in [-5, 5].
    fn coef(&mut self) -> f64 {
        (self.next() % 10_001) as f64 / 1000.0 - 5.0
    }
}

/// Builds a bounded-box LP entirely determined by `seed`. RHS values
/// are positive so the origin is always feasible.
fn lp_from_seed(seed: u64, vars: usize, rows: usize) -> LinearProgram {
    let mut rng = Mix(seed);
    let mut lp = LinearProgram::new(Sense::Maximize);
    let ids: Vec<_> = (0..vars)
        .map(|_| {
            let c = rng.coef();
            lp.add_variable(0.0, 3.0, c)
        })
        .collect();
    for _ in 0..rows {
        let terms: Vec<_> = ids.iter().map(|&v| (v, rng.coef())).collect();
        let rhs = rng.coef().abs() + 0.5;
        lp.add_constraint(terms, ConstraintOp::Le, rhs);
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed ⇒ identical solution, including iteration counts:
    /// nothing in the solver may depend on ambient state.
    #[test]
    fn same_seed_reproduces_the_solution_exactly(
        seed in any::<u64>(),
        vars in 1usize..6,
        rows in 0usize..6,
    ) {
        let a = solve(&lp_from_seed(seed, vars, rows)).expect("origin-feasible");
        let b = solve(&lp_from_seed(seed, vars, rows)).expect("origin-feasible");
        // LpSolution derives PartialEq over f64 fields, so this is
        // bitwise-identical-or-fail, not approximately-equal.
        prop_assert_eq!(a, b);
    }

    /// The sparse-row solver replays the dense solver's arithmetic:
    /// identical x, duals, objective and iteration counts on every
    /// seeded instance. `LpSolution` derives `PartialEq` over f64
    /// fields, so this is bitwise-identical-or-fail (up to IEEE-754
    /// ordering `−0.0 == +0.0`, which nothing downstream observes).
    #[test]
    fn sparse_solver_reproduces_dense_solution_exactly(
        seed in any::<u64>(),
        vars in 1usize..6,
        rows in 0usize..6,
    ) {
        let dense = solve(&lp_from_seed(seed, vars, rows)).expect("origin-feasible");
        let sparse = solve_sparse(&lp_from_seed(seed, vars, rows)).expect("origin-feasible");
        prop_assert_eq!(dense, sparse);
    }

    /// Seeded instances never panic or hit the iteration limit; the
    /// only allowed outcomes are an optimum or a typed failure.
    #[test]
    fn seeded_instances_terminate_without_iteration_limit(
        seed in any::<u64>(),
        vars in 1usize..7,
        rows in 0usize..8,
    ) {
        match solve(&lp_from_seed(seed, vars, rows)) {
            Ok(sol) => prop_assert!(sol.x.len() == vars),
            Err(SolveError::IterationLimit) => {
                prop_assert!(false, "iteration limit on a tiny box LP");
            }
            // The box is bounded and the origin feasible, but keep the
            // match exhaustive for the error type.
            Err(e) => prop_assert!(false, "unexpected {e}"),
        }
    }
}

/// Beale's cycling example: the textbook instance on which Dantzig
/// pricing with lowest-index tie-breaking cycles forever. Terminating
/// here at the known optimum −1/20 shows the Bland's-rule switch does
/// its job.
#[test]
fn beales_cycling_instance_terminates_at_its_optimum() {
    let mut lp = LinearProgram::new(Sense::Minimize);
    let x1 = lp.add_variable(0.0, f64::INFINITY, -0.75);
    let x2 = lp.add_variable(0.0, f64::INFINITY, 150.0);
    let x3 = lp.add_variable(0.0, f64::INFINITY, -0.02);
    let x4 = lp.add_variable(0.0, f64::INFINITY, 6.0);
    lp.add_constraint(
        vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        ConstraintOp::Le,
        0.0,
    );
    lp.add_constraint(
        vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        ConstraintOp::Le,
        0.0,
    );
    lp.add_constraint(vec![(x3, 1.0)], ConstraintOp::Le, 1.0);
    let sol = solve(&lp).expect("Beale's instance is feasible and bounded");
    assert!(
        (sol.objective - (-0.05)).abs() < 1e-7,
        "objective {} != -1/20",
        sol.objective
    );
    assert!(lp.is_feasible(&sol.x, 1e-9));
}

/// Beale's cycling instance through the sparse revised-simplex path:
/// same anti-cycling behaviour, same optimum, and the whole solution
/// identical to the dense path — the degenerate-pivot tie-breaks (the
/// place a revised simplex classically diverges from a tableau one)
/// must resolve the same way.
#[test]
fn beales_instance_is_identical_under_the_sparse_path() {
    let build = || {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x1 = lp.add_variable(0.0, f64::INFINITY, -0.75);
        let x2 = lp.add_variable(0.0, f64::INFINITY, 150.0);
        let x3 = lp.add_variable(0.0, f64::INFINITY, -0.02);
        let x4 = lp.add_variable(0.0, f64::INFINITY, 6.0);
        lp.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            ConstraintOp::Le,
            0.0,
        );
        lp.add_constraint(vec![(x3, 1.0)], ConstraintOp::Le, 1.0);
        lp
    };
    let dense = solve(&build()).expect("feasible and bounded");
    let sparse = solve_sparse(&build()).expect("feasible and bounded");
    assert_eq!(dense, sparse);
    assert!(
        (sparse.objective - (-0.05)).abs() < 1e-7,
        "objective {} != -1/20",
        sparse.objective
    );
}

/// A fully degenerate vertex — every row passes through the optimum —
/// must still terminate and solve twice to the identical answer.
#[test]
fn degenerate_ties_are_deterministic() {
    let build = || {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, f64::INFINITY, 3.0);
        let y = lp.add_variable(0.0, f64::INFINITY, 2.0);
        let z = lp.add_variable(0.0, f64::INFINITY, 1.0);
        // Eight redundant facets all active at the same point.
        for k in 1..=8 {
            let k = k as f64;
            lp.add_constraint(vec![(x, k), (y, k), (z, k)], ConstraintOp::Le, 2.0 * k);
        }
        lp
    };
    let a = solve(&build()).expect("bounded and feasible");
    let b = solve(&build()).expect("bounded and feasible");
    assert_eq!(a, b);
    assert!((a.objective - 6.0).abs() < 1e-7, "optimum is x=2 → 6");
}

/// Every public solver entry point is `Result`-typed: this function
/// only compiles if `solve` has the expected fallible signature, and
/// the match below proves each failure is a value, not a panic.
#[test]
fn public_entry_points_are_result_typed() {
    fn assert_fallible(f: fn(&LinearProgram) -> Result<LpSolution, SolveError>) -> bool {
        let mut infeasible = LinearProgram::new(Sense::Minimize);
        let x = infeasible.add_variable(0.0, 1.0, 1.0);
        infeasible.add_constraint(vec![(x, 1.0)], ConstraintOp::Ge, 2.0);

        let mut unbounded = LinearProgram::new(Sense::Maximize);
        unbounded.add_variable(0.0, f64::INFINITY, 1.0);

        matches!(f(&infeasible), Err(SolveError::Infeasible))
            && matches!(f(&unbounded), Err(SolveError::Unbounded))
    }
    assert!(assert_fallible(solve));
}
