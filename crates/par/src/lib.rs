//! Deterministic parallel execution for the CED pipeline.
//!
//! Every stage of the flow that fans out over independent work items —
//! per-fault transition-table extraction, injection-campaign faults,
//! certification claims, suite machines — funnels through one
//! primitive: [`ParExec::map_reduce`] (and its streaming sibling
//! [`ParExec::for_each_ordered`]). The contract that makes parallelism
//! invisible to every report consumer:
//!
//! 1. **Pure maps, ordered merges.** The `map` closure runs on worker
//!    threads in whatever order the chunked work claiming produces;
//!    the `merge`/`consume` closure runs on the *caller's* thread in
//!    canonical item-index order, regardless of completion order. A
//!    fold over parallel results is therefore byte-identical to the
//!    serial fold — for any worker count, including one.
//! 2. **Deterministic failure selection.** When items fail, the error
//!    returned is the one carried by the *lowest-index* failing item —
//!    exactly the failure a serial left-to-right run would have hit
//!    first. Workers stop claiming items above the lowest failing
//!    index (the "failure floor"), but items below it always run, so
//!    the selection cannot race. Item panics are captured per item and
//!    re-raised on the caller thread under the same lowest-index rule.
//! 3. **Cooperative draining.** Budget/cancellation integration is by
//!    composition: map closures check their [`ced_runtime::Budget`]
//!    and return its [`ced_runtime::Interrupted`] as an ordinary item
//!    error. The failure floor then drains the pool — in-flight items
//!    finish (they observe the same cancelled/exhausted budget and
//!    fail fast), queued items above the floor are never started — and
//!    the caller receives the interrupt exactly as the serial path
//!    would have surfaced it.
//!
//! The pool is *scoped*: worker threads live only for the duration of
//! one call, borrow the items and closures directly (no `'static`
//! bounds, no channels leaking past the call), and are joined before
//! the call returns. `ParExec` itself is a tiny value type — a worker
//! count plus an optional thread name — so it can be cloned into
//! options structs freely.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A deterministic fork-join executor; see the crate docs for the
/// ordering contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParExec {
    jobs: usize,
    thread_name: Option<String>,
}

/// Outcome of one item, tagged for transport to the merging thread.
enum ItemResult<U, E> {
    Ok(U),
    Err(E),
    Panic(Box<dyn std::any::Any + Send + 'static>),
}

impl ParExec {
    /// An executor with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> ParExec {
        ParExec {
            jobs: jobs.max(1),
            thread_name: None,
        }
    }

    /// A single-worker executor: runs items in order on the caller's
    /// thread (unless a thread name forces a worker; see
    /// [`Self::with_thread_name`]).
    pub fn serial() -> ParExec {
        ParExec::new(1)
    }

    /// An executor sized to the machine's available parallelism
    /// (falls back to 1 when the runtime cannot tell).
    pub fn available() -> ParExec {
        ParExec::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Names the worker threads (visible to panic hooks and
    /// debuggers). Naming also forces even a single-worker executor to
    /// run items on a spawned worker thread rather than inline, so
    /// thread-name-keyed panic hooks behave identically at every
    /// worker count.
    #[must_use]
    pub fn with_thread_name(mut self, name: &str) -> ParExec {
        self.thread_name = Some(name.to_string());
        self
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `map` over `items` on the worker pool and folds the
    /// results with `merge` in item-index order on the caller's
    /// thread. Returns the lowest-index item error, if any.
    ///
    /// # Errors
    ///
    /// The error of the lowest-index failing item (see the crate docs
    /// for why this matches the serial run).
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-index captured item panic.
    pub fn map_reduce<T, U, E, A>(
        &self,
        items: &[T],
        map: impl Fn(usize, &T) -> Result<U, E> + Sync,
        init: A,
        mut merge: impl FnMut(A, U) -> A,
    ) -> Result<A, E>
    where
        T: Sync,
        U: Send,
        E: Send,
    {
        let mut acc = Some(init);
        self.for_each_ordered(items, map, |_, u| {
            let folded = merge(acc.take().expect("accumulator present"), u);
            acc = Some(folded);
        })?;
        Ok(acc.expect("accumulator present"))
    }

    /// [`Self::map_reduce`] specialised to collecting the mapped
    /// values in item order.
    ///
    /// # Errors
    ///
    /// As [`Self::map_reduce`].
    pub fn try_map<T, U, E>(
        &self,
        items: &[T],
        map: impl Fn(usize, &T) -> Result<U, E> + Sync,
    ) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
    {
        self.map_reduce(items, map, Vec::with_capacity(items.len()), |mut v, u| {
            v.push(u);
            v
        })
    }

    /// The streaming engine: `map` runs on workers, `consume` runs on
    /// the caller's thread in item-index order *as results become
    /// ready* — item `i` is consumed as soon as items `0..=i` have all
    /// succeeded, while later items are still in flight. This is what
    /// lets the suite emit per-machine checkpoints mid-campaign
    /// without giving up the ordered-merge determinism.
    ///
    /// On failure, `consume` still sees every item below the
    /// lowest-index failure; items above it are discarded.
    ///
    /// # Errors
    ///
    /// The error of the lowest-index failing item.
    ///
    /// # Panics
    ///
    /// Re-raises the lowest-index captured item panic.
    pub fn for_each_ordered<T, U, E>(
        &self,
        items: &[T],
        map: impl Fn(usize, &T) -> Result<U, E> + Sync,
        mut consume: impl FnMut(usize, U),
    ) -> Result<(), E>
    where
        T: Sync,
        U: Send,
        E: Send,
    {
        if items.is_empty() {
            return Ok(());
        }
        if self.jobs == 1 && self.thread_name.is_none() {
            // Inline fast path: literally the serial loop, stopping at
            // the first failure like any left-to-right fold.
            for (i, item) in items.iter().enumerate() {
                consume(i, map(i, item)?);
            }
            return Ok(());
        }
        self.run_pooled(items, &map, &mut consume)
    }

    fn run_pooled<T, U, E>(
        &self,
        items: &[T],
        map: &(impl Fn(usize, &T) -> Result<U, E> + Sync),
        consume: &mut impl FnMut(usize, U),
    ) -> Result<(), E>
    where
        T: Sync,
        U: Send,
        E: Send,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        // Chunked work claiming: workers grab ascending index ranges
        // from a shared cursor. Chunks amortize the cursor contention
        // for large item counts while keeping the tail balanced; item
        // costs in this codebase are coarse (a whole fault simulation,
        // a whole machine), so small chunks win.
        let chunk = (n / (workers * 8)).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        // Lowest index known to have failed; workers never *start* an
        // item at or above the floor, and ascending claims guarantee
        // every item below the final floor was started, so the floor
        // converges to the serial run's first failure.
        let floor = AtomicUsize::new(usize::MAX);
        let (tx, rx) = mpsc::channel::<(usize, ItemResult<U, E>)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let floor = &floor;
                let builder = match &self.thread_name {
                    Some(name) => std::thread::Builder::new().name(name.clone()),
                    None => std::thread::Builder::new(),
                };
                builder
                    .spawn_scoped(scope, move || loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n || start >= floor.load(Ordering::Relaxed) {
                            return;
                        }
                        let end = (start + chunk).min(n);
                        for (off, item) in items[start..end].iter().enumerate() {
                            let i = start + off;
                            if i >= floor.load(Ordering::Relaxed) {
                                return;
                            }
                            let result =
                                match std::panic::catch_unwind(AssertUnwindSafe(|| map(i, item))) {
                                    Ok(Ok(u)) => ItemResult::Ok(u),
                                    Ok(Err(e)) => {
                                        floor.fetch_min(i, Ordering::Relaxed);
                                        ItemResult::Err(e)
                                    }
                                    Err(payload) => {
                                        floor.fetch_min(i, Ordering::Relaxed);
                                        ItemResult::Panic(payload)
                                    }
                                };
                            if tx.send((i, result)).is_err() {
                                return;
                            }
                        }
                    })
                    .expect("spawning pool worker");
            }
            drop(tx);

            // Ordered streaming merge on the caller's thread: buffer
            // out-of-order arrivals, consume the contiguous ready
            // prefix, and remember only the lowest-index failure.
            let mut pending: Vec<Option<U>> = Vec::new();
            let mut next = 0usize;
            let mut failure: Option<(usize, ItemResult<U, E>)> = None;
            for (i, result) in rx {
                match result {
                    ItemResult::Ok(u) => {
                        if failure.as_ref().is_some_and(|(fi, _)| i > *fi) {
                            continue;
                        }
                        if i >= pending.len() {
                            pending.resize_with(i + 1, || None);
                        }
                        pending[i] = Some(u);
                    }
                    other => {
                        if failure.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            failure = Some((i, other));
                        }
                    }
                }
                let limit = failure.as_ref().map_or(n, |(fi, _)| *fi);
                while next < limit && pending.get(next).is_some_and(Option::is_some) {
                    let u = pending[next].take().expect("checked above");
                    consume(next, u);
                    next += 1;
                }
            }
            match failure {
                None => Ok(()),
                Some((fi, ItemResult::Err(e))) => {
                    // Everything below the failure has been consumed:
                    // ascending claims ran all of `0..fi`, and the
                    // channel closed only after every worker finished.
                    debug_assert_eq!(next, fi);
                    Err(e)
                }
                Some((_, ItemResult::Panic(payload))) => std::panic::resume_unwind(payload),
                Some((_, ItemResult::Ok(_))) => unreachable!("failures never hold Ok"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn merge_order_is_item_order_at_every_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for jobs in [1usize, 2, 3, 8, 64] {
            let got: Vec<u64> = ParExec::new(jobs)
                .try_map(&items, |_, &x| Ok::<u64, ()>(x * 3))
                .unwrap();
            assert_eq!(got, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn fold_matches_serial_fold_bytewise() {
        let items: Vec<u64> = (0..100).collect();
        let serial = items
            .iter()
            .fold(String::new(), |acc, x| format!("{acc}|{x}"));
        let parallel = ParExec::new(7)
            .map_reduce(
                &items,
                |_, &x| Ok::<u64, ()>(x),
                String::new(),
                |acc, x| format!("{acc}|{x}"),
            )
            .unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn lowest_index_error_wins_regardless_of_completion_order() {
        // Items 10, 40 and 70 fail; 10 must always be reported, even
        // though 40/70 often complete first on other workers.
        let items: Vec<usize> = (0..100).collect();
        for _ in 0..50 {
            let err = ParExec::new(8)
                .try_map(&items, |_, &x| {
                    if x == 40 || x == 70 {
                        return Err(x); // fails fast
                    }
                    if x == 10 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        return Err(x); // fails slow
                    }
                    Ok(x)
                })
                .unwrap_err();
            assert_eq!(err, 10);
        }
    }

    #[test]
    fn consume_sees_exactly_the_prefix_below_the_failure() {
        let items: Vec<usize> = (0..64).collect();
        let mut seen = Vec::new();
        let err = ParExec::new(4)
            .for_each_ordered(
                &items,
                |_, &x| if x == 17 { Err(x) } else { Ok(x) },
                |i, u| {
                    assert_eq!(i, u);
                    seen.push(u);
                },
            )
            .unwrap_err();
        assert_eq!(err, 17);
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn item_panic_is_reraised_on_the_caller_thread() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            ParExec::new(4)
                .try_map(&items, |_, &x| {
                    if x == 5 {
                        panic!("boom at {x}");
                    }
                    Ok::<usize, ()>(x)
                })
                .unwrap();
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom at 5"), "{msg}");
    }

    #[test]
    fn error_drains_the_pool_without_running_the_tail() {
        // After the failure floor settles at item 0, workers must not
        // start items above it (modulo the chunk already claimed).
        let started = AtomicU64::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        ParExec::new(4)
            .try_map(&items, |_, &x| {
                started.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    Err(())
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    Ok(x)
                }
            })
            .unwrap_err();
        let ran = started.load(Ordering::Relaxed);
        assert!(ran < 2_000, "pool kept running after failure: {ran} items");
    }

    #[test]
    fn named_single_worker_runs_off_the_caller_thread() {
        let caller = std::thread::current().id();
        let pool = ParExec::new(1).with_thread_name("ced-par-test");
        let names = pool
            .try_map(&[0u8], |_, _| {
                let t = std::thread::current();
                Ok::<_, ()>((t.id(), t.name().map(str::to_string)))
            })
            .unwrap();
        assert_ne!(names[0].0, caller);
        assert_eq!(names[0].1.as_deref(), Some("ced-par-test"));
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        let none: Vec<u8> = Vec::new();
        assert_eq!(
            ParExec::new(16).try_map(&none, |_, _| Ok::<u8, ()>(0)),
            Ok(Vec::new())
        );
        assert_eq!(
            ParExec::new(64).try_map(&[1u8, 2], |_, &x| Ok::<u8, ()>(x + 1)),
            Ok(vec![2, 3])
        );
        assert_eq!(ParExec::new(0).jobs(), 1);
    }

    #[test]
    fn budget_cancellation_drains_all_workers() {
        use ced_runtime::{Budget, Interrupted};
        let budget = Budget::new();
        let items: Vec<usize> = (0..64).collect();
        let token = budget.cancel_token();
        let err = ParExec::new(4)
            .try_map(&items, |i, _| {
                if i == 3 {
                    token.cancel();
                }
                budget.check("par:test")?;
                Ok::<usize, Interrupted>(i)
            })
            .unwrap_err();
        assert_eq!(err.kind, ced_runtime::InterruptKind::Cancelled);
    }
}
