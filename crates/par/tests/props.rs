//! Property-based tests of the deterministic pool: for random item
//! sets, job counts and failure patterns, `map_reduce` is
//! indistinguishable from the serial fold — same accumulator, same
//! error, same consume prefix — no matter which worker finishes (or
//! fails) first.

use ced_par::ParExec;
use proptest::prelude::*;

/// The serial reference: a plain fold with first-error-wins.
fn serial_fold<E: Clone>(
    items: &[u64],
    map: impl Fn(usize, u64) -> Result<u64, E>,
) -> Result<Vec<u64>, E> {
    let mut acc = Vec::new();
    for (i, &x) in items.iter().enumerate() {
        acc.push(map(i, x)?);
    }
    Ok(acc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure maps: the pooled fold is bytewise the serial fold at every
    /// job count.
    #[test]
    fn map_reduce_equals_serial_fold(
        items in proptest::collection::vec(any::<u64>(), 0..80),
        jobs in 1usize..=8,
    ) {
        let map = |i: usize, x: u64| -> Result<u64, ()> {
            Ok(x.rotate_left((i % 64) as u32) ^ 0x9E37_79B9)
        };
        let serial = serial_fold(&items, map);
        let pooled = ParExec::new(jobs).map_reduce(
            &items,
            |i, &x| map(i, x),
            Vec::new(),
            |mut acc, v| { acc.push(v); acc },
        );
        prop_assert_eq!(serial, pooled);
    }

    /// Failing maps: the pooled run surfaces exactly the error the
    /// serial fold hits first (the lowest failing index), regardless
    /// of which worker reached its failure earlier in wall-clock.
    #[test]
    fn lowest_index_error_matches_serial(
        items in proptest::collection::vec(any::<u64>(), 1..80),
        jobs in 1usize..=8,
        fail_mod in 2u64..7,
    ) {
        // Deterministic scattered failures: item value decides.
        let map = |i: usize, x: u64| -> Result<u64, String> {
            if x.is_multiple_of(fail_mod) {
                Err(format!("item {i} failed (x={x})"))
            } else {
                Ok(x.wrapping_mul(0x100_0000_01b3))
            }
        };
        let serial = serial_fold(&items, map);
        let pooled = ParExec::new(jobs).map_reduce(
            &items,
            |i, &x| map(i, x),
            Vec::new(),
            |mut acc, v| { acc.push(v); acc },
        );
        prop_assert_eq!(serial, pooled);
    }

    /// The ordered-consume prefix: every item strictly below the
    /// failing index is consumed exactly once, in index order, and
    /// nothing at or above it ever reaches the consumer — the
    /// "TensorTooLarge surfaces identically no matter which worker
    /// hits it first" contract, abstracted.
    #[test]
    fn consume_prefix_is_exactly_the_serial_prefix(
        len in 1usize..60,
        fail_at in 0usize..60,
        jobs in 1usize..=8,
    ) {
        let items: Vec<u64> = (0..len as u64).collect();
        let fail_at = fail_at % len;
        let mut consumed = Vec::new();
        let result = ParExec::new(jobs).for_each_ordered(
            &items,
            |i, &x| if i == fail_at { Err(i) } else { Ok(x) },
            |i, v| consumed.push((i, v)),
        );
        prop_assert_eq!(result, Err(fail_at));
        let expect: Vec<(usize, u64)> =
            (0..fail_at).map(|i| (i, i as u64)).collect();
        prop_assert_eq!(consumed, expect);
    }

    /// try_map collects the same vector as the serial map at every
    /// job count, including on empty input.
    #[test]
    fn try_map_equals_serial_collect(
        items in proptest::collection::vec(any::<u64>(), 0..60),
        jobs in 1usize..=8,
    ) {
        let serial: Vec<u64> = items.iter().map(|x| x ^ 0xABCD).collect();
        let pooled = ParExec::new(jobs)
            .try_map(&items, |_, &x| Ok::<_, ()>(x ^ 0xABCD))
            .expect("no failures injected");
        prop_assert_eq!(serial, pooled);
    }
}
