//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the slice of proptest's API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! strategies for integer/float ranges, tuples, `any::<T>()`,
//! `collection::vec`, and the `proptest!`/`prop_assert*`/`prop_assume!`
//! macros. Generation is deterministic: each test's case stream is
//! seeded from a hash of its module path and name, so failures
//! reproduce exactly across runs. There is no shrinking — a failing
//! case panics with the generated inputs visible via the assert
//! message, which has proven sufficient for this workspace.

/// Configuration and the deterministic RNG driving generation.
pub mod test_runner {
    /// Per-block configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from `name` (FNV-1a), so every test gets a
        /// distinct but reproducible case sequence.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53 mantissa bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, span)` without modulo bias worth
        /// caring about at test scales.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the
        /// strategy `f` builds from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "strategy range is empty");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span as u64) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "strategy range is empty");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "strategy range is empty");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` — whole-domain strategies for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws a uniform value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "collection size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "collection size range is empty");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values drawn from `element`, with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Declares property tests. Each function runs `config.cases` times
/// with freshly generated arguments; a `prop_assume!` failure skips
/// the case rather than the test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: a token muncher emitting
/// one plain `fn` per declared property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // A closure so `prop_assume!` can skip the case by
                // returning early.
                let __case_fn = move || {
                    $body;
                };
                __case_fn();
                let _ = __case;
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return;
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, u64)> {
        (1usize..=4, 0u64..100).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in 0u64..=5, f in 0.25..0.75f64) {
            prop_assert!((3..10).contains(&n));
            prop_assert!(x <= 5);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in crate::collection::vec(0u8..10, 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn flat_map_dependent_generation(
            v in (1usize..=5).prop_flat_map(|n| crate::collection::vec(0usize..n, n)),
        ) {
            let n = v.len();
            prop_assert!((1..=5).contains(&n));
            prop_assert!(v.iter().all(|&x| x < n));
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn composed_strategies_generate(p in pair(), b in any::<bool>()) {
            prop_assert!(p.0 >= 1);
            let _ = b;
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let strat = 0u64..=u64::MAX;
        for _ in 0..32 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
