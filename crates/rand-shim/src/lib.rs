//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `rand 0.8` API surface it
//! actually uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `RngCore::next_u64`, and an object-safe `Rng` with `gen_bool` /
//! `gen_range` over integer and float ranges. The generator is
//! SplitMix64 — deterministic per seed, which is all the callers rely
//! on (none depend on value-compatibility with upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit word stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers layered over [`RngCore`].
///
/// Deliberately has no `Self: Sized` bound on `gen_bool` so that
/// `&mut dyn`-style generic bounds like `R: Rng + ?Sized` work.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply-shift; the
/// bias for spans far below 2^64 is negligible for this workspace's
/// test/benchmark usage.
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// `rand::prelude`-alike for glob imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.5..4.0f64);
            assert!((0.5..4.0).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes_and_bias() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn flip<R: Rng + ?Sized>(rng: &mut R) -> bool {
            rng.gen_bool(0.5)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = flip(&mut rng);
    }
}
