//! Work budgets and cooperative cancellation.
//!
//! A [`Budget`] bounds a computation along three axes — wall-clock
//! deadline, abstract work units ("ticks") and estimated allocated
//! bytes — and carries a shared [`CancelToken`]. Long-running loops
//! charge ticks as they make progress and call [`Budget::check`] at
//! safe points; an exceeded bound or a fired token surfaces as a typed
//! [`Interrupted`] error, never a hang or a panic.
//!
//! Budgets are cheaply cloneable; clones share the same counters and
//! token, so a budget handed to a sub-stage keeps charging the caller's
//! account.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag shared between an owner (who fires
/// it) and any number of workers (who poll it at safe points).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token. Idempotent; workers observe it at their next
    /// [`Budget::check`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Which bound an interrupted computation ran into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterruptKind {
    /// The [`CancelToken`] fired.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// The work-unit tick cap was reached.
    TickCapExceeded,
    /// The estimated-bytes cap was reached.
    ByteCapExceeded,
}

impl fmt::Display for InterruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptKind::Cancelled => write!(f, "cancelled"),
            InterruptKind::DeadlineExceeded => write!(f, "deadline exceeded"),
            InterruptKind::TickCapExceeded => write!(f, "work-unit cap exceeded"),
            InterruptKind::ByteCapExceeded => write!(f, "memory-estimate cap exceeded"),
        }
    }
}

/// How far a computation had progressed when it was interrupted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Progress {
    /// Work units charged so far.
    pub ticks: u64,
    /// Bytes estimated so far.
    pub bytes: u64,
    /// The stage label passed to the failing check.
    pub stage: String,
}

/// Typed interruption: which bound tripped, how far the work had got,
/// and whether the stage left behind state a checkpoint can resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interrupted {
    /// The bound that tripped.
    pub kind: InterruptKind,
    /// Progress at the moment of interruption.
    pub progress: Progress,
    /// `true` when the interrupting stage stopped at a clean boundary
    /// from which a checkpoint (carried alongside this error by the
    /// stage's own error type) can resume. Stages set this; the budget
    /// itself always reports `false`.
    pub resumable: bool,
}

impl fmt::Display for Interrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interrupted ({}) in stage `{}` after {} work units",
            self.kind, self.progress.stage, self.progress.ticks
        )?;
        if self.resumable {
            write!(f, " [resumable]")?;
        }
        Ok(())
    }
}

impl Error for Interrupted {}

/// Shared mutable part of a budget: counters live here so clones keep
/// charging the same account.
#[derive(Debug, Default)]
struct Shared {
    ticks: AtomicU64,
    bytes: AtomicU64,
}

/// Progress observer attached to a budget: called with `(ticks, bytes)`
/// roughly every `every` charged ticks (from the charging thread).
struct Observer {
    every: u64,
    last: AtomicU64,
    callback: Box<dyn Fn(u64, u64) + Send + Sync>,
}

/// A bounded execution budget.
///
/// All bounds are optional; [`Budget::unlimited`] never interrupts
/// (its checks still observe the attached token, but a fresh budget's
/// token is private and never fired).
#[derive(Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    tick_cap: Option<u64>,
    byte_cap: Option<u64>,
    cancel: CancelToken,
    shared: Arc<Shared>,
    observer: Option<Arc<Observer>>,
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.deadline)
            .field("tick_cap", &self.tick_cap)
            .field("byte_cap", &self.byte_cap)
            .field("ticks", &self.ticks())
            .field("bytes", &self.bytes())
            .field("cancelled", &self.cancel.is_cancelled())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl Budget {
    /// A budget with no bounds and a private, never-fired token.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Equivalent to [`Budget::unlimited`]; read as the start of a
    /// builder chain.
    pub fn new() -> Budget {
        Budget::default()
    }

    /// Bounds wall-clock time to `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> Budget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Bounds total charged work units.
    pub fn with_tick_cap(mut self, cap: u64) -> Budget {
        self.tick_cap = Some(cap);
        self
    }

    /// Bounds total estimated bytes.
    pub fn with_byte_cap(mut self, cap: u64) -> Budget {
        self.byte_cap = Some(cap);
        self
    }

    /// Attaches an external cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Budget {
        self.cancel = token;
        self
    }

    /// Attaches a progress observer invoked with `(ticks, bytes)`
    /// whenever the tick counter crosses a multiple of `every`.
    pub fn with_observer<F>(mut self, every: u64, callback: F) -> Budget
    where
        F: Fn(u64, u64) + Send + Sync + 'static,
    {
        self.observer = Some(Arc::new(Observer {
            every: every.max(1),
            last: AtomicU64::new(0),
            callback: Box::new(callback),
        }));
        self
    }

    /// The attached cancellation token (clone to fire from elsewhere).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Work units charged so far.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Bytes estimated so far.
    pub fn bytes(&self) -> u64 {
        self.shared.bytes.load(Ordering::Relaxed)
    }

    /// Charges `n` work units without checking any bound. Infallible:
    /// inner loops charge freely and let the enclosing stage `check`
    /// at its next clean boundary.
    pub fn charge(&self, n: u64) {
        let before = self.shared.ticks.fetch_add(n, Ordering::Relaxed);
        if let Some(obs) = &self.observer {
            let after = before.saturating_add(n);
            let last = obs.last.load(Ordering::Relaxed);
            if after / obs.every > last / obs.every
                && obs
                    .last
                    .compare_exchange(last, after, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                (obs.callback)(after, self.bytes());
            }
        }
    }

    /// Adds `n` to the byte estimate without checking any bound.
    pub fn charge_bytes(&self, n: u64) {
        self.shared.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Checks every bound, in order: cancellation, deadline, tick cap,
    /// byte cap. `stage` labels the failing check in the error.
    pub fn check(&self, stage: &str) -> Result<(), Interrupted> {
        let kind = if self.cancel.is_cancelled() {
            InterruptKind::Cancelled
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            InterruptKind::DeadlineExceeded
        } else if self.tick_cap.is_some_and(|cap| self.ticks() >= cap) {
            InterruptKind::TickCapExceeded
        } else if self.byte_cap.is_some_and(|cap| self.bytes() >= cap) {
            InterruptKind::ByteCapExceeded
        } else {
            return Ok(());
        };
        Err(Interrupted {
            kind,
            progress: Progress {
                ticks: self.ticks(),
                bytes: self.bytes(),
                stage: stage.to_string(),
            },
            resumable: false,
        })
    }

    /// [`Budget::charge`] followed by [`Budget::check`].
    pub fn tick(&self, n: u64, stage: &str) -> Result<(), Interrupted> {
        self.charge(n);
        self.check(stage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let b = Budget::unlimited();
        for _ in 0..1000 {
            b.tick(1_000_000, "loop").expect("unlimited");
        }
        assert_eq!(b.ticks(), 1_000_000_000);
    }

    #[test]
    fn tick_cap_trips_with_progress() {
        let b = Budget::new().with_tick_cap(10);
        b.tick(4, "a").unwrap();
        b.tick(4, "a").unwrap();
        let err = b.tick(4, "b").unwrap_err();
        assert_eq!(err.kind, InterruptKind::TickCapExceeded);
        assert_eq!(err.progress.ticks, 12);
        assert_eq!(err.progress.stage, "b");
        assert!(!err.resumable);
    }

    #[test]
    fn cancellation_dominates_other_bounds() {
        let b = Budget::new().with_tick_cap(1);
        b.charge(100);
        b.cancel_token().cancel();
        assert_eq!(b.check("x").unwrap_err().kind, InterruptKind::Cancelled);
    }

    #[test]
    fn clones_share_counters_and_token() {
        let a = Budget::new().with_tick_cap(100);
        let b = a.clone();
        b.charge(60);
        a.charge(50);
        assert!(a.check("s").is_err());
        assert!(b.check("s").is_err());
        let t = a.cancel_token();
        t.cancel();
        assert!(b.cancel_token().is_cancelled());
    }

    #[test]
    fn deadline_in_the_past_trips_immediately() {
        let b = Budget::new().with_deadline(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(
            b.check("t").unwrap_err().kind,
            InterruptKind::DeadlineExceeded
        );
    }

    #[test]
    fn byte_cap_trips() {
        let b = Budget::new().with_byte_cap(1024);
        b.charge_bytes(2048);
        assert_eq!(
            b.check("alloc").unwrap_err().kind,
            InterruptKind::ByteCapExceeded
        );
    }

    #[test]
    fn observer_fires_on_multiples() {
        use std::sync::atomic::AtomicUsize;
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let b = Budget::new().with_observer(10, move |_, _| {
            h.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..35 {
            b.charge(1);
        }
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn display_mentions_stage_and_kind() {
        let b = Budget::new().with_tick_cap(0);
        let err = b.tick(1, "tensor").unwrap_err();
        let s = err.to_string();
        assert!(s.contains("tensor"), "{s}");
        assert!(s.contains("work-unit cap"), "{s}");
    }
}
