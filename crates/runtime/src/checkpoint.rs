//! Versioned, checksummed checkpoint storage.
//!
//! A checkpoint is a kind-tagged binary payload wrapped in a small
//! header and protected end-to-end by an FNV-1a-64 checksum:
//!
//! ```text
//! magic "CEDC" | version u16 LE | kind u16 LE | payload len u64 LE
//! | payload bytes | checksum u64 LE (over everything before it)
//! ```
//!
//! Files are written atomically (temp file in the same directory, then
//! rename), so a crash mid-write leaves either the old checkpoint or
//! none — never a torn one. Loading verifies magic, version, length
//! and checksum before the payload is handed back; any mismatch is a
//! typed [`CheckpointError`], letting callers report it and fall back
//! to recomputation instead of resuming from garbage.
//!
//! [`ByteWriter`]/[`ByteReader`] are the shared little-endian
//! serialization primitives the stage-specific checkpoint payloads
//! (detectability tables, search state, suite progress) are built from.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Leading magic of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"CEDC";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

const HEADER_LEN: usize = 4 + 2 + 2 + 8;
const CHECKSUM_LEN: usize = 8;

/// Why a checkpoint could not be decoded or stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The data ends before the declared length.
    Truncated,
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The format version differs from [`CHECKPOINT_VERSION`].
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this build understands.
        expected: u16,
    },
    /// The checkpoint is of a different kind than requested.
    KindMismatch {
        /// Kind tag found in the header.
        found: u16,
        /// Kind tag the caller expected.
        expected: u16,
    },
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the data.
        computed: u64,
    },
    /// An I/O error while reading or writing the file.
    Io(String),
    /// The payload is internally inconsistent (bad tag, bad UTF-8,
    /// impossible length...).
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} (this build reads {expected})"
            ),
            CheckpointError::KindMismatch { found, expected } => write!(
                f,
                "checkpoint kind {found} where kind {expected} was expected"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CheckpointError::Io(msg) => write!(f, "checkpoint i/o error: {msg}"),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint payload corrupt: {msg}"),
        }
    }
}

impl Error for CheckpointError {}

/// FNV-1a 64-bit hash — the checkpoint checksum and the fingerprint
/// hash used to match a checkpoint against its originating inputs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps a payload in the checkpoint envelope (header + checksum).
pub fn encode_checkpoint(kind: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Unwraps and verifies a checkpoint envelope, returning the payload.
///
/// Verification order: magic, version, declared length, checksum,
/// kind — so a flipped payload byte surfaces as
/// [`CheckpointError::ChecksumMismatch`], never as garbage data.
pub fn decode_checkpoint(bytes: &[u8], kind: u16) -> Result<Vec<u8>, CheckpointError> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(CheckpointError::Truncated);
    }
    if bytes[0..4] != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::VersionMismatch {
            found: version,
            expected: CHECKPOINT_VERSION,
        });
    }
    let found_kind = u16::from_le_bytes([bytes[6], bytes[7]]);
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let Ok(len) = usize::try_from(len) else {
        return Err(CheckpointError::Corrupt("payload length overflow".into()));
    };
    let expected_total = HEADER_LEN
        .checked_add(len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN));
    match expected_total {
        Some(total) if bytes.len() == total => {}
        Some(total) if bytes.len() < total => return Err(CheckpointError::Truncated),
        _ => {
            return Err(CheckpointError::Corrupt(
                "file longer than declared payload".into(),
            ))
        }
    }
    let body = &bytes[..HEADER_LEN + len];
    let stored = u64::from_le_bytes(bytes[HEADER_LEN + len..].try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    if found_kind != kind {
        return Err(CheckpointError::KindMismatch {
            found: found_kind,
            expected: kind,
        });
    }
    Ok(bytes[HEADER_LEN..HEADER_LEN + len].to_vec())
}

/// Atomically writes a checkpoint: the envelope is written to a
/// temporary file in the same directory, flushed, then renamed over
/// `path`.
pub fn save_checkpoint(path: &Path, kind: u16, payload: &[u8]) -> Result<(), CheckpointError> {
    let bytes = encode_checkpoint(kind, payload);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Io("checkpoint path has no file name".into()))?;
    let mut tmp = std::ffi::OsString::from(".");
    tmp.push(file_name);
    tmp.push(".tmp");
    let tmp_path = match dir {
        Some(d) => d.join(&tmp),
        None => std::path::PathBuf::from(&tmp),
    };
    let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
    let mut f = fs::File::create(&tmp_path).map_err(io)?;
    f.write_all(&bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp_path, path).map_err(io)
}

/// Loads and verifies a checkpoint file, returning its payload.
pub fn load_checkpoint(path: &Path, kind: u16) -> Result<Vec<u8>, CheckpointError> {
    let bytes = fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    decode_checkpoint(&bytes, kind)
}

/// Little-endian binary serializer for checkpoint payloads.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The serialized bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern (lossless and
    /// bit-exact through a round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes a length-prefixed slice of `u64`s.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }
}

/// Matching deserializer; every read is bounds-checked and returns
/// [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`]
/// instead of panicking on malformed payloads.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CheckpointError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and converts to `usize`.
    pub fn usize(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.u64()?)
            .map_err(|_| CheckpointError::Corrupt("length exceeds usize".into()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Corrupt(format!("bad bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CheckpointError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CheckpointError> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Corrupt("invalid UTF-8 in string".into()))
    }

    /// Reads a length-prefixed slice of `u64`s.
    pub fn u64_slice(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.usize()?;
        if len > self.buf.len().saturating_sub(self.pos) / 8 {
            return Err(CheckpointError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Asserts every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes in payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a-64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn envelope_round_trips() {
        let payload = b"detectability table state".to_vec();
        let enc = encode_checkpoint(7, &payload);
        assert_eq!(decode_checkpoint(&enc, 7).unwrap(), payload);
    }

    #[test]
    fn any_payload_byte_flip_is_checksum_mismatch() {
        let enc = encode_checkpoint(3, b"0123456789abcdef");
        for i in HEADER_LEN..enc.len() - CHECKSUM_LEN {
            let mut bad = enc.clone();
            bad[i] ^= 0x40;
            match decode_checkpoint(&bad, 3) {
                Err(CheckpointError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_reported() {
        let enc = encode_checkpoint(1, b"abcdefgh");
        for cut in 0..enc.len() {
            let err = decode_checkpoint(&enc[..cut], 1).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn wrong_kind_and_version_and_magic() {
        let enc = encode_checkpoint(2, b"xy");
        assert_eq!(
            decode_checkpoint(&enc, 9).unwrap_err(),
            CheckpointError::KindMismatch {
                found: 2,
                expected: 9
            }
        );
        let mut wrong_ver = enc.clone();
        wrong_ver[4] = 0xFF;
        assert!(matches!(
            decode_checkpoint(&wrong_ver, 2).unwrap_err(),
            CheckpointError::VersionMismatch { found: 0xFF, .. }
        ));
        let mut wrong_magic = enc;
        wrong_magic[0] = b'X';
        assert_eq!(
            decode_checkpoint(&wrong_magic, 2).unwrap_err(),
            CheckpointError::BadMagic
        );
    }

    #[test]
    fn save_and_load_are_atomic_siblings() {
        let dir = std::env::temp_dir().join(format!("ced-ckpt-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        save_checkpoint(&path, 5, b"first").unwrap();
        assert_eq!(load_checkpoint(&path, 5).unwrap(), b"first");
        // Overwrite in place: rename replaces the old file.
        save_checkpoint(&path, 5, b"second").unwrap();
        assert_eq!(load_checkpoint(&path, 5).unwrap(), b"second");
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("state.ckpt")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.usize(12345);
        w.f64(-0.1);
        w.bool(true);
        w.bool(false);
        w.bytes(b"raw");
        w.str("héllo");
        w.u64_slice(&[1, u64::MAX, 42]);
        let buf = w.finish();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.u64_slice().unwrap(), vec![1, u64::MAX, 42]);
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_rejects_malformed_payloads() {
        let mut r = ByteReader::new(&[2]);
        assert_eq!(
            r.bool().unwrap_err(),
            CheckpointError::Corrupt("bad bool byte 2".into())
        );
        let mut r = ByteReader::new(&[0xFF; 8]);
        // Length prefix far beyond the buffer: Truncated, not OOM.
        assert!(matches!(
            ByteReader::new(&[0xFF; 9]).u64_slice().unwrap_err(),
            CheckpointError::Truncated
        ));
        assert!(r.u64().is_ok());
        assert_eq!(r.u8().unwrap_err(), CheckpointError::Truncated);
    }
}
