//! Heartbeat progress reporting to stderr.
//!
//! A [`Heartbeat`] is wired into a [`crate::Budget`] observer: the
//! budget calls it every N charged work units, and the heartbeat
//! rate-limits actual emission (at most one line per interval) so hot
//! loops stay hot. Lines carry the unit count, the rate, and — when a
//! total is known — an ETA. `--quiet` turns a heartbeat into a no-op
//! without disturbing the wiring.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Minimum wall-clock gap between emitted lines.
const MIN_EMIT_INTERVAL: Duration = Duration::from_millis(500);

#[derive(Debug)]
struct State {
    started: Instant,
    last_emit: Option<Instant>,
}

/// A rate-limited stderr progress reporter.
#[derive(Debug)]
pub struct Heartbeat {
    label: String,
    unit: String,
    quiet: bool,
    total: Option<u64>,
    state: Mutex<State>,
}

impl Heartbeat {
    /// A heartbeat labelled `label`, counting `unit`s (e.g. "rows",
    /// "machines", "units").
    pub fn new(label: &str, unit: &str) -> Heartbeat {
        Heartbeat {
            label: label.to_string(),
            unit: unit.to_string(),
            quiet: false,
            total: None,
            state: Mutex::new(State {
                started: Instant::now(),
                last_emit: None,
            }),
        }
    }

    /// Suppresses all output when `quiet` is true.
    pub fn quiet(mut self, quiet: bool) -> Heartbeat {
        self.quiet = quiet;
        self
    }

    /// Declares the expected total, enabling ETA reporting.
    pub fn with_total(mut self, total: u64) -> Heartbeat {
        self.total = Some(total);
        self
    }

    fn line(&self, done: u64, elapsed: Duration) -> String {
        let secs = elapsed.as_secs_f64().max(1e-9);
        let rate = done as f64 / secs;
        let mut line = match self.total {
            Some(total) => format!(
                "[ced] {}: {}/{} {} ({:.0}/s",
                self.label, done, total, self.unit, rate
            ),
            None => format!(
                "[ced] {}: {} {} ({:.0}/s",
                self.label, done, self.unit, rate
            ),
        };
        match self.total {
            Some(total) if done > 0 && done < total => {
                let eta = (total - done) as f64 / rate;
                line.push_str(&format!(", eta {:.0}s)", eta));
            }
            _ => line.push(')'),
        }
        line
    }

    /// Reports `done` completed units; emits at most one stderr line
    /// per `MIN_EMIT_INTERVAL`. Safe to call from any thread and
    /// from inside a budget observer.
    pub fn observe(&self, done: u64) {
        if self.quiet {
            return;
        }
        // try_lock: a concurrent observer already reporting is as good
        // as us reporting.
        let Ok(mut st) = self.state.try_lock() else {
            return;
        };
        let now = Instant::now();
        if st
            .last_emit
            .is_some_and(|last| now.duration_since(last) < MIN_EMIT_INTERVAL)
        {
            return;
        }
        let elapsed = now.duration_since(st.started);
        st.last_emit = Some(now);
        let line = self.line(done, elapsed);
        drop(st);
        eprintln!("{line}");
    }

    /// Emits a final summary line (unless quiet).
    pub fn finish(&self, done: u64) {
        if self.quiet {
            return;
        }
        let st = self.state.lock().unwrap();
        let elapsed = st.started.elapsed();
        drop(st);
        eprintln!("{} done", self.line(done, elapsed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_formats_rate_and_eta() {
        let hb = Heartbeat::new("tensor", "rows").with_total(100);
        let line = hb.line(50, Duration::from_secs(10));
        assert!(line.contains("tensor"), "{line}");
        assert!(line.contains("50/100 rows"), "{line}");
        assert!(line.contains("5/s"), "{line}");
        assert!(line.contains("eta 10s"), "{line}");
    }

    #[test]
    fn line_without_total_omits_eta() {
        let hb = Heartbeat::new("suite", "machines");
        let line = hb.line(3, Duration::from_secs(6));
        assert!(line.contains("3 machines"), "{line}");
        assert!(!line.contains("eta"), "{line}");
    }

    #[test]
    fn quiet_heartbeat_is_silent_and_cheap() {
        let hb = Heartbeat::new("x", "u").quiet(true);
        for i in 0..10_000 {
            hb.observe(i);
        }
        hb.finish(10_000);
    }

    #[test]
    fn rate_limiting_holds_between_observations() {
        let hb = Heartbeat::new("x", "u");
        hb.observe(1);
        let first = hb.state.lock().unwrap().last_emit;
        hb.observe(2); // within the interval: no new emission
        assert_eq!(hb.state.lock().unwrap().last_emit, first);
    }
}
