//! Deterministic JSON emission.
//!
//! The suite runner's report must be byte-identical between an
//! uninterrupted run and an interrupted-then-resumed one, so the
//! emitter is deliberately minimal and deterministic: object keys keep
//! insertion order, floats use Rust's shortest round-trip formatting,
//! and there is no whitespace. [`Json::Raw`] splices an
//! already-rendered fragment verbatim — that is how checkpointed
//! per-machine reports (stored as rendered strings) re-enter a resumed
//! report without any re-escape drift.

use std::fmt::Write;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
    /// A pre-rendered fragment spliced verbatim. The caller guarantees
    /// it is valid JSON.
    Raw(String),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Renders to a compact, deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Shortest round-trip formatting: deterministic and
                    // lossless. Integral floats print without a decimal
                    // point, which is still a valid JSON number.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_canonically() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-5).render(), "-5");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::Object(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[null,false]}");
    }

    #[test]
    fn raw_splices_verbatim() {
        let inner = Json::Object(vec![("q".into(), Json::UInt(3))]).render();
        let outer = Json::Object(vec![("m".into(), Json::Raw(inner.clone()))]);
        assert_eq!(outer.render(), format!("{{\"m\":{inner}}}"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("s27")),
            ("area".into(), Json::Float(123.456)),
            (
                "masks".into(),
                Json::Array(vec![Json::UInt(7), Json::UInt(11)]),
            ),
        ]);
        assert_eq!(v.render(), v.clone().render());
        assert_eq!(
            v.render(),
            "{\"name\":\"s27\",\"area\":123.456,\"masks\":[7,11]}"
        );
    }
}
