//! Deterministic JSON emission and strict parsing.
//!
//! The suite runner's report must be byte-identical between an
//! uninterrupted run and an interrupted-then-resumed one, so the
//! emitter is deliberately minimal and deterministic: object keys keep
//! insertion order, floats use Rust's shortest round-trip formatting,
//! and there is no whitespace. [`Json::Raw`] splices an
//! already-rendered fragment verbatim — that is how checkpointed
//! per-machine reports (stored as rendered strings) re-enter a resumed
//! report without any re-escape drift.
//!
//! [`Json::parse`] is the inverse for untrusted input — the `ced
//! serve` daemon decodes request lines with it. It is strict (no
//! trailing garbage, no unescaped control characters, bounded
//! nesting) and every failure is a typed [`JsonParseError`] carrying
//! the byte offset, so a malformed request can be answered with a
//! precise diagnostic instead of a panic or a guess.

use std::fmt::Write;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A finite float (non-finite values render as `null`).
    Float(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
    /// A pre-rendered fragment spliced verbatim. The caller guarantees
    /// it is valid JSON.
    Raw(String),
}

/// A typed JSON parse failure: what went wrong and the byte offset in
/// the input where the parser noticed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the parsed text.
    pub offset: usize,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting depth beyond which the parser refuses input: a hostile
/// `[[[[…` line must fail typed, not blow the stack.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Parses one complete JSON value from `text`.
    ///
    /// Strictness rules, chosen for a network-facing daemon:
    ///
    /// * the whole input must be consumed (surrounding whitespace is
    ///   fine, trailing garbage is not);
    /// * nesting is bounded (128 levels);
    /// * numbers without `.`/`e` parse as [`Json::Int`] when they fit
    ///   `i64`, as [`Json::UInt`] when they fit `u64`, and fall back
    ///   to [`Json::Float`] otherwise; non-finite results are errors.
    ///
    /// # Errors
    ///
    /// A [`JsonParseError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match; emitted objects never repeat
    /// keys). `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A non-negative integer view: `UInt` directly, `Int` when ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders to a compact, deterministic string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Shortest round-trip formatting: deterministic and
                    // lossless. Integral floats print without a decimal
                    // point, which is still a valid JSON number.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Raw(s) => out.push_str(s),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent parser over the raw bytes (string decoding is the
/// only place multi-byte UTF-8 matters, and it re-borrows `&str` there).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; the input is a `&str`,
                    // so the boundary math cannot fail.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v =
            u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape digits"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Float(v)),
            _ => {
                self.pos = start;
                Err(self.err("invalid number"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_canonically() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-5).render(), "-5");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::Object(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Array(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.render(), "{\"z\":1,\"a\":[null,false]}");
    }

    #[test]
    fn raw_splices_verbatim() {
        let inner = Json::Object(vec![("q".into(), Json::UInt(3))]).render();
        let outer = Json::Object(vec![("m".into(), Json::Raw(inner.clone()))]);
        assert_eq!(outer.render(), format!("{{\"m\":{inner}}}"));
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::Object(vec![
            ("name".into(), Json::str("s27 \"quoted\" \\ tab\there")),
            ("q".into(), Json::UInt(3)),
            ("neg".into(), Json::Int(-17)),
            ("area".into(), Json::Float(123.456)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "rows".into(),
                Json::Array(vec![Json::UInt(7), Json::str("é ✓")]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("round trip");
        assert_eq!(back.render(), text);
        assert_eq!(back.get("q").and_then(Json::as_u64), Some(3));
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("s27 \"quoted\" \\ tab\there")
        );
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse("  { \"a\" : [ 1 , \"\\u0041\\ud83d\\ude00\" ] }  ").expect("parse");
        let items = v.get("a").and_then(Json::as_array).expect("array");
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_str(), Some("A😀"));
    }

    #[test]
    fn parse_rejects_malformed_input_with_offsets() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1}garbage",
            "nul",
            "+5",
            "{\"a\" 1}",
            "\"bad \\x escape\"",
            "\"lone \\ud800 surrogate\"",
            "--3",
            "1e",
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.offset <= bad.len(), "{bad}: offset {}", err.offset);
            assert!(!err.message.is_empty());
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let hostile = "[".repeat(100_000);
        let err = Json::parse(&hostile).expect_err("deep nesting");
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(18_446_744_073_709_551_615)
        );
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert!(Json::parse("1e999").is_err(), "non-finite float");
    }

    #[test]
    fn rendering_is_deterministic() {
        let v = Json::Object(vec![
            ("name".into(), Json::str("s27")),
            ("area".into(), Json::Float(123.456)),
            (
                "masks".into(),
                Json::Array(vec![Json::UInt(7), Json::UInt(11)]),
            ),
        ]);
        assert_eq!(v.render(), v.clone().render());
        assert_eq!(
            v.render(),
            "{\"name\":\"s27\",\"area\":123.456,\"masks\":[7,11]}"
        );
    }
}
