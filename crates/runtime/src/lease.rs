//! Filesystem lease and heartbeat primitives.
//!
//! Multi-process coordination in this workspace (the `ced-fleet`
//! campaign runner, the `ced-store` run leases) is built on three
//! plain-filesystem operations that are atomic or monotone on every
//! platform we target:
//!
//! * **Claim by rename.** A work token is a file; claiming it renames
//!   the file to a claimer-owned path. `rename(2)` is atomic, and the
//!   source disappears when it succeeds, so exactly one claimer wins —
//!   the losers see `NotFound` and move on. No locks, no daemons.
//! * **Heartbeat by mtime.** A live claimer periodically bumps its
//!   lease file's modification time; a watchdog that finds a lease
//!   older than the heartbeat timeout may conclude the claimer is dead
//!   (crashed, killed, unplugged) and reclaim the work.
//! * **Atomic publish with caller-unique temp names.** Results are
//!   written to `.<name>.tmp-<tag>` and renamed into place. Because the
//!   temp name embeds a caller-supplied tag (worker id, pid), two
//!   processes racing to publish the same path never interleave writes
//!   into one temp file; the loser's rename simply replaces the
//!   winner's identical bytes.
//!
//! None of these primitives interpret file contents; payload integrity
//! is the [`crate::checkpoint`] envelope's job.

use crate::checkpoint::{encode_checkpoint, CheckpointError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

/// Atomically claims a token file by renaming it to `to`.
///
/// Returns `true` when this caller won the claim, `false` when the
/// token was already gone (someone else claimed it, or it never
/// existed — indistinguishable by design).
///
/// # Errors
///
/// [`CheckpointError::Io`] for failures other than the token being
/// gone (permissions, a missing destination directory...).
pub fn claim_by_rename(from: &Path, to: &Path) -> Result<bool, CheckpointError> {
    match fs::rename(from, to) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(CheckpointError::Io(format!(
            "claiming {}: {e}",
            from.display()
        ))),
    }
}

/// Bumps a lease file's modification time to now (the heartbeat).
///
/// Returns `false` when the lease file no longer exists — the caller
/// lost it (a watchdog expired the lease); it should stop heartbeating
/// and treat the work as reassigned.
///
/// # Errors
///
/// [`CheckpointError::Io`] on failures other than the file being gone.
pub fn touch(path: &Path) -> Result<bool, CheckpointError> {
    let file = match fs::File::options().write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => {
            return Err(CheckpointError::Io(format!(
                "touching {}: {e}",
                path.display()
            )))
        }
    };
    file.set_times(fs::FileTimes::new().set_modified(SystemTime::now()))
        .map_err(|e| CheckpointError::Io(format!("touching {}: {e}", path.display())))?;
    Ok(true)
}

/// Age of a file's last modification, saturating to zero for files
/// modified "in the future" (clock skew). `None` when the file does
/// not exist or its metadata cannot be read.
pub fn mtime_age(path: &Path) -> Option<Duration> {
    let modified = fs::metadata(path).ok()?.modified().ok()?;
    Some(
        SystemTime::now()
            .duration_since(modified)
            .unwrap_or(Duration::ZERO),
    )
}

/// The temp-file sibling used by [`publish_envelope`] for `path` and
/// `tag` — exposed so tests can assert no temp files leak.
pub fn publish_tmp_path(path: &Path, tag: &str) -> PathBuf {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let tmp = format!(".{name}.tmp-{tag}");
    match dir {
        Some(d) => d.join(tmp),
        None => PathBuf::from(tmp),
    }
}

/// Atomically publishes a checkpoint envelope at `path`, writing via a
/// temp file whose name embeds `tag` (worker id, pid...) so concurrent
/// publishers of the same path never share a temp file. Deterministic
/// producers racing on one path is safe: whoever renames last replaces
/// identical bytes.
///
/// # Errors
///
/// [`CheckpointError::Io`] if the write or rename fails.
pub fn publish_envelope(
    path: &Path,
    kind: u16,
    payload: &[u8],
    tag: &str,
) -> Result<(), CheckpointError> {
    let bytes = encode_checkpoint(kind, payload);
    let tmp = publish_tmp_path(path, tag);
    let io = |e: std::io::Error| CheckpointError::Io(format!("publishing {}: {e}", path.display()));
    let mut f = fs::File::create(&tmp).map_err(io)?;
    f.write_all(&bytes).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    fs::rename(&tmp, path).map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ced-lease-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn exactly_one_claimer_wins() {
        let dir = tmp_dir("claim");
        let token = dir.join("unit-0001.ced");
        fs::write(&token, b"token").unwrap();
        let a = dir.join("unit-0001.alice");
        let b = dir.join("unit-0001.bob");
        let won_a = claim_by_rename(&token, &a).unwrap();
        let won_b = claim_by_rename(&token, &b).unwrap();
        assert!(won_a && !won_b);
        assert!(a.exists() && !b.exists() && !token.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn touch_refreshes_mtime_and_reports_lost_leases() {
        let dir = tmp_dir("touch");
        let lease = dir.join("unit-0001.alice");
        fs::write(&lease, b"lease").unwrap();
        // Backdate, then heartbeat: the age must drop.
        let old = SystemTime::now() - Duration::from_secs(3600);
        fs::File::options()
            .write(true)
            .open(&lease)
            .unwrap()
            .set_times(fs::FileTimes::new().set_modified(old))
            .unwrap();
        assert!(mtime_age(&lease).unwrap() > Duration::from_secs(1800));
        assert!(touch(&lease).unwrap());
        assert!(mtime_age(&lease).unwrap() < Duration::from_secs(1800));
        // A lease someone expired out from under us: touch says so.
        fs::remove_file(&lease).unwrap();
        assert!(!touch(&lease).unwrap());
        assert_eq!(mtime_age(&lease), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn publish_is_atomic_and_tagged() {
        let dir = tmp_dir("publish");
        let path = dir.join("unit-0001.ced");
        publish_envelope(&path, 7, b"result-a", "alice").unwrap();
        // A racing identical publish under a different tag replaces
        // the file without ever sharing a temp name.
        assert_ne!(
            publish_tmp_path(&path, "alice"),
            publish_tmp_path(&path, "bob")
        );
        publish_envelope(&path, 7, b"result-a", "bob").unwrap();
        assert_eq!(
            crate::checkpoint::load_checkpoint(&path, 7).unwrap(),
            b"result-a"
        );
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("unit-0001.ced")]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
