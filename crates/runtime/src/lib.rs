//! Survivable-execution primitives for the CED workspace.
//!
//! Every expensive stage of the pipeline — detectability-tensor
//! construction, fault simulation, two-level minimization, simplex
//! pivoting, randomized rounding, the search ladder and the injection
//! campaigns — accepts a [`Budget`] and reports overruns as a typed
//! [`Interrupted`] value instead of hanging or dying mid-suite. Partial
//! work survives interruption through versioned, checksummed
//! [`checkpoint`]s written atomically, so `--resume` continues exactly
//! where an interrupted run stopped.
//!
//! The crate is a leaf: std-only, no dependencies, usable from every
//! other crate in the workspace.

#![warn(missing_docs)]

pub mod budget;
pub mod checkpoint;
pub mod heartbeat;
pub mod json;
pub mod lease;

pub use budget::{Budget, CancelToken, InterruptKind, Interrupted, Progress};
pub use checkpoint::{
    decode_checkpoint, encode_checkpoint, fnv1a64, load_checkpoint, save_checkpoint, ByteReader,
    ByteWriter, CheckpointError,
};
pub use heartbeat::Heartbeat;
pub use json::{Json, JsonParseError};
pub use lease::{claim_by_rename, mtime_age, publish_envelope, touch};
