//! A minimal blocking client for the `ced-serve/1` protocol.
//!
//! Used by the integration tests, the bench harness and the CI smoke
//! leg; small enough that external callers can also treat it as the
//! protocol's reference implementation: one JSON line out, one JSON
//! line in.

use ced_runtime::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line (the newline is appended).
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one raw response line (without the newline).
    ///
    /// # Errors
    ///
    /// Propagates the read failure; a closed connection surfaces as
    /// [`std::io::ErrorKind::UnexpectedEof`].
    pub fn recv_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a request document and parses the next response line.
    ///
    /// # Errors
    ///
    /// I/O failures, plus [`std::io::ErrorKind::InvalidData`] when the
    /// response is not valid JSON.
    pub fn request(&mut self, doc: &Json) -> std::io::Result<Json> {
        self.send_line(&doc.render())?;
        let line = self.recv_line()?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response: {e}"),
            )
        })
    }

    /// The underlying stream, for tests that need to abuse it
    /// (shutdown mid-line, set timeouts).
    pub fn stream(&self) -> &TcpStream {
        &self.writer
    }
}
