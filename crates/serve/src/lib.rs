//! # ced-serve — the long-lived bounded-latency CED analysis daemon
//!
//! One-shot CLI invocations pay the full cold-start cost every time:
//! process spawn, KISS2 parse, synthesis, tensor builds. `ced serve`
//! keeps that machinery warm — a persistent TCP daemon speaking
//! line-delimited JSON, holding a warm [`ced_store::Store`] in memory
//! and multiplexing concurrent `check`/`table`/`certify`/`inject`
//! requests onto one shared [`ced_par::ParExec`] pool.
//!
//! The crate's defining guarantee is the **serve ≡ CLI differential**:
//! a served response payload is byte-identical to the corresponding
//! one-shot CLI report — cold or warm store, any pool width, any fault
//! model. It holds *by construction*: the [`ops`] module is the single
//! implementation both the CLI subcommands and the daemon's executors
//! call.
//!
//! Robustness is the second pillar (this is a daemon; a bad request
//! must never take it down):
//!
//! * **Admission control** — a bounded pending queue; when full,
//!   requests are shed with a typed `overloaded` error instead of
//!   queueing without bound ([`server`]).
//! * **Disconnect-driven cancellation** — each connection owns a
//!   [`ced_runtime::CancelToken`] wired into its requests' budgets;
//!   the moment the client goes away, its in-flight work is cancelled
//!   cooperatively.
//! * **Panic isolation** — every request runs under `catch_unwind`; a
//!   panicking analysis becomes a typed `internal_error` response and
//!   the daemon keeps serving.
//! * **Hostile framing** — request lines are bounded-read: oversized
//!   lines, slow-trickle partial lines and mid-line disconnects all
//!   produce typed errors ([`proto::LineReader`]), never unbounded
//!   buffering or a wedged reader thread.
//! * **Checkpoint-envelope job handles** — long jobs can be submitted
//!   detached (`submit` → `poll` → `fetch`), surviving the submitting
//!   connection.

#![warn(missing_docs)]

pub mod client;
pub mod ops;
pub mod proto;
pub mod server;

pub use client::Client;
pub use ops::{execute, DeltaSummary, OpError, OpKind, OpOutput, OpRequest};
pub use proto::{ErrorKind, Request};
pub use server::{ServeOptions, Server};
