//! One-shot analysis operations shared by the CLI and the daemon.
//!
//! The serve differential guarantee — a served response payload is
//! byte-identical to the corresponding one-shot CLI report — is not
//! enforced by a test alone; it is enforced *by construction*: both
//! the `ced` subcommands and the daemon's executors call the functions
//! in this module, which take everything they need as parameters (the
//! machine, the pipeline options, a [`Budget`], a [`ParExec`], an
//! optional [`Store`]) and return the rendered payload as a value.
//! Nothing here reads process globals, prints, or exits: a request
//! scope is the only scope.
//!
//! Payload formats per operation:
//!
//! * [`OpKind::Check`] — the human text `ced check` prints on stdout;
//! * [`OpKind::Table`] — the `ced-table-report/1` JSON that `ced table
//!   --out` writes;
//! * [`OpKind::Certify`] — the `ced-cert-report/1` JSON that `ced
//!   certify --out` writes;
//! * [`OpKind::Inject`] — the campaign text that `ced inject
//!   --campaign --out` writes.

use ced_core::pipeline::{
    build_input_model, delta_seed, fault_list, machine_delta, minimize_parity_functions_stored,
    prepare_machine_stored, run_circuit_controlled, MachineDelta, PipelineControl, PipelineError,
    PipelineOptions,
};
use ced_core::report_to_json;
use ced_core::search::minimize_parity_functions;
use ced_core::synthesize_ced;
use ced_fsm::machine::Fsm;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::{Budget, Interrupted};
use ced_sim::cone::cone_keys;
use ced_sim::detect::{BuildControl, DetectOptions, DetectabilityTable, InputModel, Semantics};
use ced_store::Store;
use std::collections::HashSet;
use std::fmt::Write as _;

/// Which analysis a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Algorithm 1 at one latency bound; payload is the `ced check`
    /// stdout text.
    Check,
    /// A Table-1 row across several bounds; payload is the JSON report.
    Table,
    /// Pipeline plus the independent verifier chain; payload is the
    /// certification JSON.
    Certify,
    /// The cross-validating fault-injection campaign; payload is the
    /// campaign report text.
    Inject,
}

impl OpKind {
    /// The wire name (also the CLI subcommand name).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Check => "check",
            OpKind::Table => "table",
            OpKind::Certify => "certify",
            OpKind::Inject => "inject",
        }
    }
}

/// A fully-bound analysis request: the machine text plus every option
/// that affects the payload. Defaults mirror the CLI's defaults, so an
/// empty option set requests exactly what a bare CLI invocation runs.
#[derive(Debug, Clone)]
pub struct OpRequest {
    /// Which analysis to run.
    pub kind: OpKind,
    /// The machine, as KISS2 text (parsed per request; no filesystem).
    pub kiss2: String,
    /// Latency bound for `check`/`inject` (CLI `--latency`).
    pub latency: usize,
    /// Latency bounds for `table`/`certify` (CLI `--latencies`).
    pub latencies: Vec<usize>,
    /// Pipeline configuration (encoding, semantics, fault model, …).
    pub options: PipelineOptions,
    /// Rounding seed (CLI `--seed`); also folded into the inject
    /// campaign seed exactly as the CLI does.
    pub seed: u64,
    /// Cycles per injected fault (CLI `--steps`).
    pub steps: usize,
    /// Run the checker-netlist self-audit inside an inject campaign.
    pub checker_faults: bool,
    /// Baseline machine (KISS2 text) for an incremental `check` — the
    /// daemon's `analyze-delta` op and the CLI's `ced check --baseline`
    /// both set this. The payload is byte-identical to a plain `check`
    /// of `kiss2`; the baseline only seeds per-fault-cone fragment
    /// reuse and the dirty-cone summary.
    pub baseline: Option<String>,
    /// Baseline named by machine fingerprint instead of inline text
    /// (daemon only: resolved against the server's recent-machine
    /// cache before execution).
    pub baseline_fp: Option<u64>,
}

impl OpRequest {
    /// A request with CLI-default options for `kind` over `kiss2`.
    pub fn new(kind: OpKind, kiss2: &str) -> OpRequest {
        OpRequest {
            kind,
            kiss2: kiss2.to_string(),
            latency: 1,
            latencies: vec![1, 2, 3],
            options: PipelineOptions::paper_defaults(),
            seed: 0,
            steps: 2000,
            checker_faults: true,
            baseline: None,
            baseline_fp: None,
        }
    }
}

/// How a baseline-seeded check related the edited machine to its
/// baseline (returned alongside the payload; the CLI prints its
/// [`DeltaSummary::render_line`] on stderr, never into the payload).
#[derive(Debug, Clone)]
pub struct DeltaSummary {
    /// Symbolic classification of the edit.
    pub delta: MachineDelta,
    /// Fault cones of the edited machine.
    pub cones_total: usize,
    /// Cones whose structural key does not occur in the baseline
    /// machine (their fragments must be rebuilt no matter what).
    pub cones_dirty: usize,
    /// State codes whose good response changed (0 when no promotion
    /// seed could be built).
    pub changed_codes: usize,
    /// Whether a cross-machine promotion seed was attached to the
    /// build (false = the delta touches synthesis structure and the
    /// analysis fell back to the whole-stage path).
    pub seeded: bool,
}

impl DeltaSummary {
    /// The one-line stderr summary.
    pub fn render_line(&self) -> String {
        let delta = match &self.delta {
            MachineDelta::Identical => "identical".to_string(),
            MachineDelta::OutputOnly { transitions } => {
                format!("output-only ({} transitions)", transitions.len())
            }
            MachineDelta::Structural { reason } => format!("structural ({reason})"),
        };
        format!(
            "delta: {delta}; cones: {}/{} dirty; {} changed codes; {}",
            self.cones_dirty,
            self.cones_total,
            self.changed_codes,
            if self.seeded {
                "fragment promotion seeded"
            } else {
                "whole-stage fallback"
            }
        )
    }
}

/// A finished operation: the payload — byte-identical to the one-shot
/// CLI output for the same analysis — plus, for a baseline-seeded
/// `analyze-delta`, the rendered [`DeltaSummary`] line. The summary
/// rides *next to* the payload (the daemon emits it as a separate
/// `delta` response field) so baseline presence can never move a
/// payload byte.
#[derive(Debug, Clone)]
pub struct OpOutput {
    /// The rendered payload (report text or JSON document).
    pub payload: String,
    /// `analyze-delta` only: [`DeltaSummary::render_line`].
    pub delta: Option<String>,
}

impl OpOutput {
    fn plain(payload: String) -> OpOutput {
        OpOutput {
            payload,
            delta: None,
        }
    }
}

/// Why an operation produced no payload.
#[derive(Debug)]
pub enum OpError {
    /// The request itself is unusable (unparsable machine, bad bound).
    BadRequest(String),
    /// The request's budget ran out or its cancel token fired.
    Interrupted(Interrupted),
    /// The analysis failed for a reason that is not the client's fault.
    Failed(String),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::BadRequest(m) => write!(f, "bad request: {m}"),
            OpError::Interrupted(i) => write!(f, "{i}"),
            OpError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<PipelineError> for OpError {
    fn from(e: PipelineError) -> OpError {
        match e {
            PipelineError::Interrupted(i) => OpError::Interrupted(i.interrupted),
            other => OpError::Failed(other.to_string()),
        }
    }
}

/// Executes one request against shared infrastructure and returns the
/// rendered payload (plus the delta summary for a baseline-seeded
/// check — see [`OpOutput`]).
///
/// # Errors
///
/// [`OpError::BadRequest`] for client mistakes, [`OpError::Interrupted`]
/// when `budget` trips (including a fired cancel token — the daemon
/// wires client disconnects into it), [`OpError::Failed`] otherwise.
pub fn execute(
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<OpOutput, OpError> {
    let fsm = ced_fsm::kiss::parse(&request.kiss2)
        .map_err(|e| OpError::BadRequest(format!("machine: {e}")))?;
    if request.latency == 0 {
        return Err(OpError::BadRequest(
            "latency bound must be at least 1".into(),
        ));
    }
    if request.latencies.is_empty() || request.latencies.contains(&0) {
        return Err(OpError::BadRequest("latencies need positive bounds".into()));
    }
    if request.baseline_fp.is_some() && request.baseline.is_none() {
        // The daemon resolves fingerprints against its recent-machine
        // cache before calling in; an unresolved one reaching this
        // layer means the caller skipped that step.
        return Err(OpError::BadRequest(
            "baseline fingerprint not resolved to machine text".into(),
        ));
    }
    if request.baseline.is_some() && request.kind != OpKind::Check {
        return Err(OpError::BadRequest(format!(
            "baseline is only meaningful for check, not {}",
            request.kind.name()
        )));
    }
    match request.kind {
        OpKind::Check => {
            let baseline = match &request.baseline {
                Some(text) => Some(
                    ced_fsm::kiss::parse(text)
                        .map_err(|e| OpError::BadRequest(format!("baseline machine: {e}")))?,
                ),
                None => None,
            };
            check_text_with_baseline(&fsm, baseline.as_ref(), request, budget, pool, store).map(
                |(payload, summary)| OpOutput {
                    payload,
                    delta: summary.map(|s| s.render_line()),
                },
            )
        }
        OpKind::Table => table_json(&fsm, request, budget, pool, store).map(OpOutput::plain),
        OpKind::Certify => certify_json(&fsm, request, budget, pool, store).map(OpOutput::plain),
        OpKind::Inject => inject_text(&fsm, request, budget, pool, store).map(OpOutput::plain),
    }
}

/// `ced check` as a value: Algorithm 1 at one bound, rendered exactly
/// as the CLI prints it (the CLI calls this and prints the result).
///
/// # Errors
///
/// As [`execute`].
pub fn check_text(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    check_text_with_baseline(fsm, None, request, budget, pool, store).map(|(text, _)| text)
}

/// [`check_text`] with an optional baseline machine seeding incremental
/// re-analysis. The payload is byte-identical to the baseline-free call
/// by construction: the baseline only adds a [`ced_core::pipeline::delta_seed`]
/// to the fragment build (cross-machine promotion of clean cones) and
/// computes the [`DeltaSummary`] — it never enters any fingerprint or
/// the rendered text.
///
/// # Errors
///
/// As [`execute`].
pub fn check_text_with_baseline(
    fsm: &Fsm,
    baseline: Option<&Fsm>,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<(String, Option<DeltaSummary>), OpError> {
    let lib = CellLibrary::new();
    let options = &request.options;
    let (encoded, circuit) =
        prepare_machine_stored(fsm, options, store).map_err(|e| OpError::Failed(e.to_string()))?;
    let input_model =
        build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
    let faults = fault_list(&circuit, options);
    let detect_options = DetectOptions {
        latency: request.latency,
        semantics: options.semantics,
        input_model,
        fault_model: options.fault_model,
        ..DetectOptions::default()
    };

    let mut delta = None;
    let mut summary = None;
    if let Some(base) = baseline {
        let (base_encoded, base_circuit) = prepare_machine_stored(base, options, store)
            .map_err(|e| OpError::Failed(e.to_string()))?;
        let seed = delta_seed(
            &base_encoded,
            &base_circuit,
            &circuit,
            &detect_options,
            options.input_granularity,
        );
        let base_faults = fault_list(&base_circuit, options);
        let base_keys: HashSet<u64> =
            cone_keys(base_circuit.netlist(), &base_faults, options.fault_model)
                .into_iter()
                .collect();
        let new_keys = cone_keys(circuit.netlist(), &faults, options.fault_model);
        summary = Some(DeltaSummary {
            delta: machine_delta(base, fsm),
            cones_total: new_keys.len(),
            cones_dirty: new_keys.iter().filter(|k| !base_keys.contains(k)).count(),
            changed_codes: seed.as_ref().map_or(0, |s| s.changed_codes.len()),
            seeded: seed.is_some(),
        });
        delta = seed;
    }

    let (table, dstats) = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &detect_options,
        &[request.latency],
        BuildControl {
            store,
            pool: Some(pool),
            delta,
            ..BuildControl::new(budget)
        },
    )
    .map_err(op_error_from_detect)?
    .pop()
    .expect("one latency requested");

    let mut out = String::new();
    let _ =
        writeln!(
        out,
        "fault model ({}): {} faults ({} untestable), {} activations, {} minimal erroneous cases",
        options.fault_model, dstats.faults, dstats.untestable_faults, dstats.activations,
        table.len()
    );
    let outcome = minimize_parity_functions_stored(&table, &options.ced, store);
    let _ = writeln!(
        out,
        "Algorithm 1 (p = {}): q = {} parity trees ({} LP solves, {} rounding attempts)",
        request.latency, outcome.q, outcome.lp_solves, outcome.rounding_attempts
    );
    if !outcome.degradation.is_empty() {
        let _ = writeln!(out, "solved by {} after degradation:", outcome.method);
        for event in &outcome.degradation {
            let _ = writeln!(out, "  {event}");
        }
    }
    for (i, &mask) in outcome.cover.masks.iter().enumerate() {
        let taps: Vec<String> = (0..circuit.total_bits())
            .filter(|j| (mask >> j) & 1 == 1)
            .map(|j| format!("b{}", j + 1))
            .collect();
        let _ = writeln!(out, "  tree {}: {}", i + 1, taps.join(" ⊕ "));
    }
    let ced = synthesize_ced(&circuit, &outcome.cover, request.latency, &options.minimize);
    let cost = ced.cost(&lib);
    let _ = writeln!(
        out,
        "checker: {} gates, {} hold FFs, area {:.1}",
        cost.gates, cost.flip_flops, cost.area
    );
    Ok((out, summary))
}

/// `ced table --out` as a value: the pipeline across the requested
/// bounds, rendered as the `ced-table-report/1` JSON document.
///
/// # Errors
///
/// As [`execute`].
pub fn table_json(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    let lib = CellLibrary::new();
    let report = run_circuit_controlled(
        fsm,
        &request.latencies,
        &request.options,
        &lib,
        PipelineControl {
            pool: Some(pool),
            store,
            ..PipelineControl::new(budget)
        },
    )?;
    Ok(report_to_json(&report).render())
}

/// `ced certify --out` as a value: the pipeline plus the independent
/// verifier chain, rendered as the `ced-cert-report/1` JSON document.
///
/// # Errors
///
/// As [`execute`].
pub fn certify_json(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    let lib = CellLibrary::new();
    let report = run_circuit_controlled(
        fsm,
        &request.latencies,
        &request.options,
        &lib,
        PipelineControl {
            pool: Some(pool),
            store,
            ..PipelineControl::new(budget)
        },
    )?;
    let cert = ced_cert::certify_report_stored(
        fsm,
        &report,
        &request.options,
        &ced_cert::CertifyOptions {
            seed: request.seed,
            ..ced_cert::CertifyOptions::default()
        },
        budget,
        pool,
        store,
    )
    .map_err(|e| match e {
        ced_cert::CertError::Interrupted(i) => OpError::Interrupted(i),
        other => OpError::Failed(other.to_string()),
    })?;
    Ok(ced_cert::report::cert_report_json(&[cert]).render())
}

/// `ced inject --campaign --out` as a value: cover synthesis under
/// hardware semantics, the full cross-validating campaign, rendered as
/// the campaign report text.
///
/// # Errors
///
/// As [`execute`].
pub fn inject_text(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    use ced_inject::{run_campaign_stored, CampaignError, CampaignOptions};

    let options = &request.options;
    let (_, circuit) =
        prepare_machine_stored(fsm, options, store).map_err(|e| OpError::Failed(e.to_string()))?;
    let faults = fault_list(&circuit, options);
    // The campaign's oracle is exact only under hardware semantics
    // with exhaustive inputs; the cover must be verified under the
    // same conditions or escapes would be expected, not disagreements.
    let (table, _) = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &DetectOptions {
            latency: request.latency,
            semantics: Semantics::FaultyTrajectory,
            input_model: InputModel::Exhaustive,
            fault_model: options.fault_model,
            ..DetectOptions::default()
        },
        &[request.latency],
        BuildControl {
            store,
            pool: Some(pool),
            ..BuildControl::new(budget)
        },
    )
    .map_err(op_error_from_detect)?
    .pop()
    .expect("one latency requested");
    let outcome = minimize_parity_functions(&table, &options.ced);
    let ced = synthesize_ced(&circuit, &outcome.cover, request.latency, &options.minimize);
    let report = run_campaign_stored(
        &circuit,
        &ced,
        &faults,
        &CampaignOptions {
            steps: request.steps,
            seed: request.seed ^ 0xCA3E,
            checker_faults: request.checker_faults,
            fault_model: options.fault_model,
            ..CampaignOptions::default()
        },
        budget,
        pool,
        store,
    )
    .map_err(|e| match e {
        CampaignError::Detect(d) => OpError::Failed(d.to_string()),
        CampaignError::Interrupted { interrupted, .. } => OpError::Interrupted(interrupted),
    })?;
    Ok(report.render())
}

/// Maps the tensor builder's error: budget interrupts stay typed, the
/// rest become analysis failures.
fn op_error_from_detect(e: ced_sim::detect::DetectError) -> OpError {
    match e {
        ced_sim::detect::DetectError::Interrupted { interrupted, .. } => {
            OpError::Interrupted(interrupted)
        }
        other => OpError::Failed(other.to_string()),
    }
}
