//! One-shot analysis operations shared by the CLI and the daemon.
//!
//! The serve differential guarantee — a served response payload is
//! byte-identical to the corresponding one-shot CLI report — is not
//! enforced by a test alone; it is enforced *by construction*: both
//! the `ced` subcommands and the daemon's executors call the functions
//! in this module, which take everything they need as parameters (the
//! machine, the pipeline options, a [`Budget`], a [`ParExec`], an
//! optional [`Store`]) and return the rendered payload as a value.
//! Nothing here reads process globals, prints, or exits: a request
//! scope is the only scope.
//!
//! Payload formats per operation:
//!
//! * [`OpKind::Check`] — the human text `ced check` prints on stdout;
//! * [`OpKind::Table`] — the `ced-table-report/1` JSON that `ced table
//!   --out` writes;
//! * [`OpKind::Certify`] — the `ced-cert-report/1` JSON that `ced
//!   certify --out` writes;
//! * [`OpKind::Inject`] — the campaign text that `ced inject
//!   --campaign --out` writes.

use ced_core::pipeline::{
    build_input_model, fault_list, prepare_machine_stored, run_circuit_controlled, PipelineControl,
    PipelineError, PipelineOptions,
};
use ced_core::report_to_json;
use ced_core::search::minimize_parity_functions;
use ced_core::synthesize_ced;
use ced_fsm::machine::Fsm;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::{Budget, Interrupted};
use ced_sim::detect::{BuildControl, DetectOptions, DetectabilityTable, InputModel, Semantics};
use ced_store::Store;
use std::fmt::Write as _;

/// Which analysis a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Algorithm 1 at one latency bound; payload is the `ced check`
    /// stdout text.
    Check,
    /// A Table-1 row across several bounds; payload is the JSON report.
    Table,
    /// Pipeline plus the independent verifier chain; payload is the
    /// certification JSON.
    Certify,
    /// The cross-validating fault-injection campaign; payload is the
    /// campaign report text.
    Inject,
}

impl OpKind {
    /// The wire name (also the CLI subcommand name).
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Check => "check",
            OpKind::Table => "table",
            OpKind::Certify => "certify",
            OpKind::Inject => "inject",
        }
    }
}

/// A fully-bound analysis request: the machine text plus every option
/// that affects the payload. Defaults mirror the CLI's defaults, so an
/// empty option set requests exactly what a bare CLI invocation runs.
#[derive(Debug, Clone)]
pub struct OpRequest {
    /// Which analysis to run.
    pub kind: OpKind,
    /// The machine, as KISS2 text (parsed per request; no filesystem).
    pub kiss2: String,
    /// Latency bound for `check`/`inject` (CLI `--latency`).
    pub latency: usize,
    /// Latency bounds for `table`/`certify` (CLI `--latencies`).
    pub latencies: Vec<usize>,
    /// Pipeline configuration (encoding, semantics, fault model, …).
    pub options: PipelineOptions,
    /// Rounding seed (CLI `--seed`); also folded into the inject
    /// campaign seed exactly as the CLI does.
    pub seed: u64,
    /// Cycles per injected fault (CLI `--steps`).
    pub steps: usize,
    /// Run the checker-netlist self-audit inside an inject campaign.
    pub checker_faults: bool,
}

impl OpRequest {
    /// A request with CLI-default options for `kind` over `kiss2`.
    pub fn new(kind: OpKind, kiss2: &str) -> OpRequest {
        OpRequest {
            kind,
            kiss2: kiss2.to_string(),
            latency: 1,
            latencies: vec![1, 2, 3],
            options: PipelineOptions::paper_defaults(),
            seed: 0,
            steps: 2000,
            checker_faults: true,
        }
    }
}

/// Why an operation produced no payload.
#[derive(Debug)]
pub enum OpError {
    /// The request itself is unusable (unparsable machine, bad bound).
    BadRequest(String),
    /// The request's budget ran out or its cancel token fired.
    Interrupted(Interrupted),
    /// The analysis failed for a reason that is not the client's fault.
    Failed(String),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::BadRequest(m) => write!(f, "bad request: {m}"),
            OpError::Interrupted(i) => write!(f, "{i}"),
            OpError::Failed(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for OpError {}

impl From<PipelineError> for OpError {
    fn from(e: PipelineError) -> OpError {
        match e {
            PipelineError::Interrupted(i) => OpError::Interrupted(i.interrupted),
            other => OpError::Failed(other.to_string()),
        }
    }
}

/// Executes one request against shared infrastructure and returns the
/// rendered payload.
///
/// # Errors
///
/// [`OpError::BadRequest`] for client mistakes, [`OpError::Interrupted`]
/// when `budget` trips (including a fired cancel token — the daemon
/// wires client disconnects into it), [`OpError::Failed`] otherwise.
pub fn execute(
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    let fsm = ced_fsm::kiss::parse(&request.kiss2)
        .map_err(|e| OpError::BadRequest(format!("machine: {e}")))?;
    if request.latency == 0 {
        return Err(OpError::BadRequest(
            "latency bound must be at least 1".into(),
        ));
    }
    if request.latencies.is_empty() || request.latencies.contains(&0) {
        return Err(OpError::BadRequest("latencies need positive bounds".into()));
    }
    match request.kind {
        OpKind::Check => check_text(&fsm, request, budget, pool, store),
        OpKind::Table => table_json(&fsm, request, budget, pool, store),
        OpKind::Certify => certify_json(&fsm, request, budget, pool, store),
        OpKind::Inject => inject_text(&fsm, request, budget, pool, store),
    }
}

/// `ced check` as a value: Algorithm 1 at one bound, rendered exactly
/// as the CLI prints it (the CLI calls this and prints the result).
///
/// # Errors
///
/// As [`execute`].
pub fn check_text(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    let lib = CellLibrary::new();
    let options = &request.options;
    let (encoded, circuit) =
        prepare_machine_stored(fsm, options, store).map_err(|e| OpError::Failed(e.to_string()))?;
    let input_model =
        build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
    let faults = fault_list(&circuit, options);
    let (table, dstats) = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &DetectOptions {
            latency: request.latency,
            semantics: options.semantics,
            input_model,
            fault_model: options.fault_model,
            ..DetectOptions::default()
        },
        &[request.latency],
        BuildControl {
            store,
            pool: Some(pool),
            ..BuildControl::new(budget)
        },
    )
    .map_err(op_error_from_detect)?
    .pop()
    .expect("one latency requested");

    let mut out = String::new();
    let _ =
        writeln!(
        out,
        "fault model ({}): {} faults ({} untestable), {} activations, {} minimal erroneous cases",
        options.fault_model, dstats.faults, dstats.untestable_faults, dstats.activations,
        table.len()
    );
    let outcome = minimize_parity_functions(&table, &options.ced);
    let _ = writeln!(
        out,
        "Algorithm 1 (p = {}): q = {} parity trees ({} LP solves, {} rounding attempts)",
        request.latency, outcome.q, outcome.lp_solves, outcome.rounding_attempts
    );
    if !outcome.degradation.is_empty() {
        let _ = writeln!(out, "solved by {} after degradation:", outcome.method);
        for event in &outcome.degradation {
            let _ = writeln!(out, "  {event}");
        }
    }
    for (i, &mask) in outcome.cover.masks.iter().enumerate() {
        let taps: Vec<String> = (0..circuit.total_bits())
            .filter(|j| (mask >> j) & 1 == 1)
            .map(|j| format!("b{}", j + 1))
            .collect();
        let _ = writeln!(out, "  tree {}: {}", i + 1, taps.join(" ⊕ "));
    }
    let ced = synthesize_ced(&circuit, &outcome.cover, request.latency, &options.minimize);
    let cost = ced.cost(&lib);
    let _ = writeln!(
        out,
        "checker: {} gates, {} hold FFs, area {:.1}",
        cost.gates, cost.flip_flops, cost.area
    );
    Ok(out)
}

/// `ced table --out` as a value: the pipeline across the requested
/// bounds, rendered as the `ced-table-report/1` JSON document.
///
/// # Errors
///
/// As [`execute`].
pub fn table_json(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    let lib = CellLibrary::new();
    let report = run_circuit_controlled(
        fsm,
        &request.latencies,
        &request.options,
        &lib,
        PipelineControl {
            pool: Some(pool),
            store,
            ..PipelineControl::new(budget)
        },
    )?;
    Ok(report_to_json(&report).render())
}

/// `ced certify --out` as a value: the pipeline plus the independent
/// verifier chain, rendered as the `ced-cert-report/1` JSON document.
///
/// # Errors
///
/// As [`execute`].
pub fn certify_json(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    let lib = CellLibrary::new();
    let report = run_circuit_controlled(
        fsm,
        &request.latencies,
        &request.options,
        &lib,
        PipelineControl {
            pool: Some(pool),
            store,
            ..PipelineControl::new(budget)
        },
    )?;
    let cert = ced_cert::certify_report_stored(
        fsm,
        &report,
        &request.options,
        &ced_cert::CertifyOptions {
            seed: request.seed,
            ..ced_cert::CertifyOptions::default()
        },
        budget,
        pool,
        store,
    )
    .map_err(|e| match e {
        ced_cert::CertError::Interrupted(i) => OpError::Interrupted(i),
        other => OpError::Failed(other.to_string()),
    })?;
    Ok(ced_cert::report::cert_report_json(&[cert]).render())
}

/// `ced inject --campaign --out` as a value: cover synthesis under
/// hardware semantics, the full cross-validating campaign, rendered as
/// the campaign report text.
///
/// # Errors
///
/// As [`execute`].
pub fn inject_text(
    fsm: &Fsm,
    request: &OpRequest,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<String, OpError> {
    use ced_inject::{run_campaign_stored, CampaignError, CampaignOptions};

    let options = &request.options;
    let (_, circuit) =
        prepare_machine_stored(fsm, options, store).map_err(|e| OpError::Failed(e.to_string()))?;
    let faults = fault_list(&circuit, options);
    // The campaign's oracle is exact only under hardware semantics
    // with exhaustive inputs; the cover must be verified under the
    // same conditions or escapes would be expected, not disagreements.
    let (table, _) = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &DetectOptions {
            latency: request.latency,
            semantics: Semantics::FaultyTrajectory,
            input_model: InputModel::Exhaustive,
            fault_model: options.fault_model,
            ..DetectOptions::default()
        },
        &[request.latency],
        BuildControl {
            store,
            pool: Some(pool),
            ..BuildControl::new(budget)
        },
    )
    .map_err(op_error_from_detect)?
    .pop()
    .expect("one latency requested");
    let outcome = minimize_parity_functions(&table, &options.ced);
    let ced = synthesize_ced(&circuit, &outcome.cover, request.latency, &options.minimize);
    let report = run_campaign_stored(
        &circuit,
        &ced,
        &faults,
        &CampaignOptions {
            steps: request.steps,
            seed: request.seed ^ 0xCA3E,
            checker_faults: request.checker_faults,
            fault_model: options.fault_model,
            ..CampaignOptions::default()
        },
        budget,
        pool,
        store,
    )
    .map_err(|e| match e {
        CampaignError::Detect(d) => OpError::Failed(d.to_string()),
        CampaignError::Interrupted { interrupted, .. } => OpError::Interrupted(interrupted),
    })?;
    Ok(report.render())
}

/// Maps the tensor builder's error: budget interrupts stay typed, the
/// rest become analysis failures.
fn op_error_from_detect(e: ced_sim::detect::DetectError) -> OpError {
    match e {
        ced_sim::detect::DetectError::Interrupted { interrupted, .. } => {
            OpError::Interrupted(interrupted)
        }
        other => OpError::Failed(other.to_string()),
    }
}
