//! The `ced-serve/1` wire protocol: line-delimited JSON over TCP.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry a client-chosen `id` string
//! that the matching response echoes, so a client may pipeline many
//! requests on one connection and match responses arriving in
//! completion order.
//!
//! The reader side is written for hostile input: request lines are
//! **bounded-read** (a line longer than the cap is answered with a
//! typed `line_too_long` error, never buffered unboundedly), a partial
//! line that stops making progress is answered with `read_timeout`
//! (never parks a reader thread forever), and any parse or shape
//! failure is a typed `bad_request` carrying the parser's diagnostic.
//! A malformed *line* is recoverable (the connection continues); a
//! line that cannot even be framed (oversized, trickle-abandoned)
//! closes the connection, because resynchronization cannot be trusted.

use crate::ops::{OpKind, OpRequest};
use ced_core::pipeline::InputGranularity;
use ced_fsm::encoding::EncodingStrategy;
use ced_runtime::{InterruptKind, Json};
use ced_sim::detect::Semantics;
use ced_sim::fault::FaultModel;
use std::io::Read;
use std::time::{Duration, Instant};

/// Wire value of a queued detached job's `state`.
pub const JOB_STATE_QUEUED: &str = "queued";
/// Wire value of a running detached job's `state`.
pub const JOB_STATE_RUNNING: &str = "running";
/// Wire value of a finished detached job's `state`.
pub const JOB_STATE_DONE: &str = "done";

/// One parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run an analysis synchronously; the response carries the payload.
    Op {
        /// Echoed response id.
        id: String,
        /// The bound analysis request.
        op: Box<OpRequest>,
        /// Per-request wall-clock deadline (milliseconds).
        deadline_ms: Option<u64>,
        /// Per-request work-tick cap.
        ticks: Option<u64>,
    },
    /// Enqueue an analysis as a detached job; the response carries a
    /// handle for `poll`/`fetch`. The job survives this connection.
    Submit {
        /// Echoed response id.
        id: String,
        /// The bound analysis request.
        op: Box<OpRequest>,
        /// Per-request wall-clock deadline (milliseconds).
        deadline_ms: Option<u64>,
        /// Per-request work-tick cap.
        ticks: Option<u64>,
    },
    /// Ask a detached job's state.
    Poll {
        /// Echoed response id.
        id: String,
        /// The handle `submit` returned.
        handle: String,
    },
    /// Retrieve (and consume) a finished detached job's response.
    Fetch {
        /// Echoed response id.
        id: String,
        /// The handle `submit` returned.
        handle: String,
    },
    /// Cancel a queued or running detached job.
    Cancel {
        /// Echoed response id.
        id: String,
        /// The handle `submit` returned.
        handle: String,
    },
    /// Daemon health: queue depths, counters, store stats, fleet view.
    Health {
        /// Echoed response id.
        id: String,
    },
    /// Stop the daemon cleanly.
    Shutdown {
        /// Echoed response id.
        id: String,
    },
    /// Deliberately panic inside the executor (only honored when the
    /// server was started with `debug_ops`; used by the isolation
    /// tests and the CI smoke leg).
    DebugPanic {
        /// Echoed response id.
        id: String,
    },
}

impl Request {
    /// The echoed id of any request variant.
    pub fn id(&self) -> &str {
        match self {
            Request::Op { id, .. }
            | Request::Submit { id, .. }
            | Request::Poll { id, .. }
            | Request::Fetch { id, .. }
            | Request::Cancel { id, .. }
            | Request::Health { id }
            | Request::Shutdown { id }
            | Request::DebugPanic { id } => id,
        }
    }
}

/// Typed error kinds a response can carry. The wire string is the
/// snake_case tag clients dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line or its fields are unusable.
    BadRequest,
    /// Admission control refused the request: the pending queue is
    /// full. Retry later; nothing was started.
    Overloaded,
    /// The request's cancel token fired (client disconnect, `cancel`).
    Cancelled,
    /// The request's wall-clock deadline passed mid-analysis.
    DeadlineExceeded,
    /// A work-tick or byte cap tripped mid-analysis.
    ResourceExhausted,
    /// The analysis failed or panicked; the daemon itself is fine.
    InternalError,
    /// No such job handle.
    NotFound,
    /// The job exists but has not finished; poll again.
    NotReady,
    /// The request line exceeded the daemon's line cap.
    LineTooLong,
    /// A partial request line stopped making progress.
    ReadTimeout,
    /// The daemon is shutting down.
    ShuttingDown,
}

impl ErrorKind {
    /// The wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ResourceExhausted => "resource_exhausted",
            ErrorKind::InternalError => "internal_error",
            ErrorKind::NotFound => "not_found",
            ErrorKind::NotReady => "not_ready",
            ErrorKind::LineTooLong => "line_too_long",
            ErrorKind::ReadTimeout => "read_timeout",
            ErrorKind::ShuttingDown => "shutting_down",
        }
    }

    /// Maps a budget interruption onto the wire kind.
    pub fn from_interrupt(kind: InterruptKind) -> ErrorKind {
        match kind {
            InterruptKind::Cancelled => ErrorKind::Cancelled,
            InterruptKind::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            InterruptKind::TickCapExceeded | InterruptKind::ByteCapExceeded => {
                ErrorKind::ResourceExhausted
            }
        }
    }
}

/// Renders a success response whose `payload` field holds the exact
/// one-shot CLI report bytes (as a JSON string).
pub fn ok_payload(id: &str, payload: &str) -> String {
    Json::Object(vec![
        ("id".into(), Json::str(id)),
        ("status".into(), Json::str("ok")),
        ("payload".into(), Json::str(payload)),
    ])
    .render()
}

/// Renders a finished op: [`ok_payload`] plus, when the op was a
/// baseline-seeded `analyze-delta`, a `delta` field carrying the
/// one-line summary. The summary is a sibling of the payload, never
/// part of it — payload bytes stay identical to a plain `check`.
pub fn ok_op(id: &str, out: &crate::ops::OpOutput) -> String {
    let mut fields = vec![
        ("id".to_string(), Json::str(id)),
        ("status".to_string(), Json::str("ok")),
        ("payload".to_string(), Json::str(&out.payload)),
    ];
    if let Some(delta) = &out.delta {
        fields.push(("delta".to_string(), Json::str(delta)));
    }
    Json::Object(fields).render()
}

/// Renders a success response carrying arbitrary extra fields (submit
/// handles, poll states, health documents).
pub fn ok_fields(id: &str, fields: Vec<(String, Json)>) -> String {
    let mut all = vec![
        ("id".to_string(), Json::str(id)),
        ("status".to_string(), Json::str("ok")),
    ];
    all.extend(fields);
    Json::Object(all).render()
}

/// Renders a typed error response.
pub fn error(id: &str, kind: ErrorKind, message: &str) -> String {
    Json::Object(vec![
        ("id".into(), Json::str(id)),
        ("status".into(), Json::str("error")),
        (
            "error".into(),
            Json::Object(vec![
                ("kind".into(), Json::str(kind.tag())),
                ("message".into(), Json::str(message)),
            ]),
        ),
    ])
    .render()
}

/// How one bounded read of a request line ended.
#[derive(Debug)]
pub enum ReadOutcome {
    /// One complete line (without the `\n`).
    Line(String),
    /// Clean end of stream with no pending partial line.
    Eof,
    /// End of stream (or a connection error) with a partial line
    /// pending — a mid-line disconnect.
    TruncatedEof,
    /// The line exceeded `max_line_bytes`.
    TooLong,
    /// A partial line stopped making progress for `line_timeout`.
    Timeout,
    /// The server's shutdown token fired while waiting.
    Shutdown,
}

/// A bounded, timeout-aware line reader over a blocking stream whose
/// read timeout is set to a short poll interval.
///
/// Guarantees the robustness tests pin down: at most `max_line_bytes`
/// of one line are ever buffered; a line that stops making progress
/// for `line_timeout` is abandoned; `is_shutdown` is consulted between
/// polls so a daemon shutdown never waits on a silent client.
pub struct LineReader<R> {
    stream: R,
    buf: Vec<u8>,
    pending: Vec<u8>,
    max_line_bytes: usize,
    line_timeout: Duration,
}

impl<R: Read> LineReader<R> {
    /// A reader enforcing `max_line_bytes` per line and `line_timeout`
    /// of progress-free waiting on a partial line.
    pub fn new(stream: R, max_line_bytes: usize, line_timeout: Duration) -> LineReader<R> {
        LineReader {
            stream,
            buf: vec![0; 8 * 1024],
            pending: Vec::new(),
            max_line_bytes,
            line_timeout,
        }
    }

    /// Reads the next line, honoring the caps. `is_shutdown` is polled
    /// between read attempts (pair it with a short socket read
    /// timeout).
    pub fn next_line(&mut self, is_shutdown: impl Fn() -> bool) -> ReadOutcome {
        let mut stalled_since: Option<Instant> = None;
        loop {
            // A complete line may already be buffered from a previous
            // read that straddled two requests.
            if let Some(pos) = self.pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.pending.drain(..=pos).collect();
                let line = &line[..line.len() - 1];
                let line = line.strip_suffix(b"\r").unwrap_or(line);
                return match String::from_utf8(line.to_vec()) {
                    Ok(s) => ReadOutcome::Line(s),
                    // Treat undecodable bytes as a (malformed) line:
                    // the caller answers bad_request and resyncs at
                    // the newline we just consumed.
                    Err(_) => ReadOutcome::Line(String::from_utf8_lossy(line).into_owned()),
                };
            }
            if self.pending.len() > self.max_line_bytes {
                return ReadOutcome::TooLong;
            }
            if is_shutdown() {
                return ReadOutcome::Shutdown;
            }
            if let Some(since) = stalled_since {
                if !self.pending.is_empty() && since.elapsed() >= self.line_timeout {
                    return ReadOutcome::Timeout;
                }
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => {
                    return if self.pending.is_empty() {
                        ReadOutcome::Eof
                    } else {
                        ReadOutcome::TruncatedEof
                    };
                }
                Ok(n) => {
                    self.pending.extend_from_slice(&self.buf[..n]);
                    stalled_since = None;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Socket read timeout: no progress this poll. Start
                    // (or continue) the stall clock only while a
                    // partial line is pending — an idle connection
                    // between requests may stay idle forever.
                    if stalled_since.is_none() {
                        stalled_since = Some(Instant::now());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    return if self.pending.is_empty() {
                        ReadOutcome::Eof
                    } else {
                        ReadOutcome::TruncatedEof
                    };
                }
            }
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// `(id, message)` — the id is whatever could be salvaged from the
/// line (empty when the line did not even parse), so the error
/// response still correlates when possible.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let doc = Json::parse(line).map_err(|e| (String::new(), format!("malformed JSON: {e}")))?;
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let fail = |msg: &str| Err((id.clone(), msg.to_string()));
    if doc.as_object().is_none() {
        return fail("request must be a JSON object");
    }
    let Some(cmd) = doc.get("cmd").and_then(Json::as_str) else {
        return fail("missing `cmd` string field");
    };
    match cmd {
        "check" | "table" | "certify" | "inject" | "analyze-delta" => {
            let (op, deadline_ms, ticks) = parse_op(cmd, &doc).map_err(|m| (id.clone(), m))?;
            Ok(Request::Op {
                id,
                op: Box::new(op),
                deadline_ms,
                ticks,
            })
        }
        "submit" => {
            let Some(job) = doc.get("job") else {
                return fail("submit needs a `job` object");
            };
            let Some(inner) = job.get("cmd").and_then(Json::as_str) else {
                return fail("submit job needs a `cmd` string field");
            };
            if !matches!(
                inner,
                "check" | "table" | "certify" | "inject" | "analyze-delta"
            ) {
                return fail(
                    "submit job `cmd` must be check, table, certify, inject or analyze-delta",
                );
            }
            let (op, deadline_ms, ticks) = parse_op(inner, job).map_err(|m| (id.clone(), m))?;
            Ok(Request::Submit {
                id,
                op: Box::new(op),
                deadline_ms,
                ticks,
            })
        }
        "poll" | "fetch" | "cancel" => {
            let Some(handle) = doc.get("handle").and_then(Json::as_str) else {
                return fail("missing `handle` string field");
            };
            let handle = handle.to_string();
            Ok(match cmd {
                "poll" => Request::Poll { id, handle },
                "fetch" => Request::Fetch { id, handle },
                _ => Request::Cancel { id, handle },
            })
        }
        "health" => Ok(Request::Health { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "debug-panic" => Ok(Request::DebugPanic { id }),
        other => fail(&format!("unknown cmd `{other}`")),
    }
}

/// Parses the analysis fields shared by direct and submitted ops. The
/// accepted fields and their defaults mirror the CLI flags one-to-one,
/// which is what makes the serve ≡ CLI differential meaningful.
fn parse_op(cmd: &str, doc: &Json) -> Result<(OpRequest, Option<u64>, Option<u64>), String> {
    // `analyze-delta` is `check` with a mandatory baseline: same
    // payload (byte-identical by construction), plus fragment-level
    // reuse seeded from the baseline machine.
    let kind = match cmd {
        "check" | "analyze-delta" => OpKind::Check,
        "table" => OpKind::Table,
        "certify" => OpKind::Certify,
        "inject" => OpKind::Inject,
        other => return Err(format!("unknown analysis `{other}`")),
    };
    let delta_op = cmd == "analyze-delta";
    let Some(kiss2) = doc.get("machine").and_then(Json::as_str) else {
        return Err("missing `machine` (KISS2 text) string field".to_string());
    };
    let mut op = OpRequest::new(kind, kiss2);

    let known = [
        "cmd",
        "id",
        "machine",
        "latency",
        "latencies",
        "encoding",
        "semantics",
        "exhaustive_inputs",
        "fault_model",
        "seed",
        "steps",
        "checker_faults",
        "deadline_ms",
        "ticks",
        "job",
        "baseline",
        "baseline_fp",
    ];
    for (key, _) in doc.as_object().into_iter().flatten() {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}`"));
        }
    }

    if let Some(v) = doc.get("latency") {
        op.latency = v.as_usize().ok_or("`latency` needs a positive integer")?;
        if op.latency == 0 {
            return Err("`latency` must be at least 1".to_string());
        }
    }
    if let Some(v) = doc.get("latencies") {
        let items = v.as_array().ok_or("`latencies` needs an array")?;
        op.latencies = items
            .iter()
            .map(|i| i.as_usize().filter(|&p| p > 0))
            .collect::<Option<Vec<usize>>>()
            .ok_or("`latencies` needs positive integers")?;
        if op.latencies.is_empty() {
            return Err("`latencies` must not be empty".to_string());
        }
    }
    if let Some(v) = doc.get("encoding") {
        op.options.encoding = match v.as_str() {
            Some("natural") => EncodingStrategy::Natural,
            Some("gray") => EncodingStrategy::Gray,
            Some("onehot") => EncodingStrategy::OneHot,
            Some("adjacency") => EncodingStrategy::Adjacency,
            _ => return Err("`encoding` must be natural|gray|onehot|adjacency".to_string()),
        };
    }
    if let Some(v) = doc.get("semantics") {
        op.options.semantics = match v.as_str() {
            Some("lockstep" | "paper") => Semantics::Lockstep,
            Some("hardware" | "faulty-trajectory") => Semantics::FaultyTrajectory,
            _ => return Err("`semantics` must be lockstep|hardware".to_string()),
        };
    }
    if let Some(v) = doc.get("exhaustive_inputs") {
        if v.as_bool().ok_or("`exhaustive_inputs` needs a boolean")? {
            op.options.input_granularity = InputGranularity::Exhaustive;
        }
    }
    if let Some(v) = doc.get("fault_model") {
        let text = v.as_str().ok_or("`fault_model` needs a string")?;
        op.options.fault_model =
            FaultModel::parse(text).map_err(|e| format!("`fault_model`: {e}"))?;
    }
    if let Some(v) = doc.get("seed") {
        op.seed = v.as_u64().ok_or("`seed` needs a non-negative integer")?;
        op.options.ced.seed = op.seed;
    }
    if let Some(v) = doc.get("steps") {
        op.steps = v.as_usize().ok_or("`steps` needs a positive integer")?;
        if op.steps == 0 {
            return Err("`steps` must be at least 1".to_string());
        }
    }
    if let Some(v) = doc.get("checker_faults") {
        op.checker_faults = v.as_bool().ok_or("`checker_faults` needs a boolean")?;
    }
    match (doc.get("baseline"), doc.get("baseline_fp")) {
        (None, None) => {
            if delta_op {
                return Err(
                    "analyze-delta needs `baseline` (KISS2 text) or `baseline_fp`".to_string(),
                );
            }
        }
        _ if !delta_op => {
            return Err("`baseline`/`baseline_fp` are only valid for analyze-delta".to_string());
        }
        (Some(_), Some(_)) => {
            return Err("give exactly one of `baseline` and `baseline_fp`".to_string());
        }
        (Some(v), None) => {
            let text = v.as_str().ok_or("`baseline` needs a string (KISS2 text)")?;
            op.baseline = Some(text.to_string());
        }
        (None, Some(v)) => {
            op.baseline_fp = Some(
                v.as_u64()
                    .ok_or("`baseline_fp` needs a non-negative integer")?,
            );
        }
    }
    let deadline_ms = match doc.get("deadline_ms") {
        Some(v) => Some(
            v.as_u64()
                .ok_or("`deadline_ms` needs a non-negative integer")?,
        ),
        None => None,
    };
    let ticks = match doc.get("ticks") {
        Some(v) => Some(v.as_u64().ok_or("`ticks` needs a non-negative integer")?),
        None => None,
    };
    Ok((op, deadline_ms, ticks))
}
