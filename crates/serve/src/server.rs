//! The daemon: TCP accept loop, bounded admission queue, executor
//! pool, detached-job registry.
//!
//! Threading model (std-only, no async runtime):
//!
//! * one **accept thread** polls a non-blocking listener;
//! * one **reader thread per connection** frames request lines (with
//!   the bounded [`LineReader`]), answers cheap control requests
//!   (`poll`/`fetch`/`cancel`/`health`/`shutdown`) inline, and pushes
//!   analysis requests through **admission control** — a bounded queue
//!   that answers `overloaded` instead of growing;
//! * a fixed set of **executor threads** drains the queue, each request
//!   wrapped in `catch_unwind` so a panicking analysis becomes a typed
//!   `internal_error` response while the daemon keeps serving.
//!
//! Cancellation is disconnect-driven: every connection owns a
//! [`CancelToken`] cloned into the [`Budget`] of each synchronous
//! request it admits, and the reader thread fires it the moment the
//! peer goes away (EOF, reset, mid-line disconnect). Detached jobs
//! (`submit`) get their own token instead — they are *meant* to
//! outlive the submitting connection — fired by an explicit `cancel`.

use crate::ops::{self, OpError, OpOutput, OpRequest};
use crate::proto::{
    self, ErrorKind, LineReader, ReadOutcome, Request, JOB_STATE_DONE, JOB_STATE_QUEUED,
    JOB_STATE_RUNNING,
};
use ced_par::ParExec;
use ced_runtime::{fnv1a64, Budget, CancelToken, Json};
use ced_store::Store;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};
use std::time::{Duration, Instant};

/// Thread name of the request executors; the forwarding panic hook
/// keeps their captured panics off stderr.
pub const EXEC_THREAD_NAME: &str = "ced-serve-exec";
/// Thread name of the shared analysis pool's workers (same silencing).
pub const POOL_THREAD_NAME: &str = "ced-serve-pool";

/// Socket read-timeout used as the poll interval for shutdown and
/// stall detection.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Daemon configuration. [`ServeOptions::default`] matches the
/// one-shot CLI's defaults wherever a knob overlaps (pool width 1), so
/// a default daemon and a default CLI produce identical payloads.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Width of the shared [`ParExec`] pool each request runs on.
    pub jobs: usize,
    /// Executor threads — how many requests run concurrently.
    pub workers: usize,
    /// Admission cap: queued-but-not-running requests beyond this are
    /// shed with a typed `overloaded` error.
    pub max_pending: usize,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// How long a *partial* request line may stall before the
    /// connection is answered `read_timeout` and dropped.
    pub line_timeout: Duration,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`. `None` means no default deadline.
    pub default_deadline: Option<Duration>,
    /// Most detached jobs retained (queued, running or finished).
    pub max_jobs: usize,
    /// Warm `ced-store` directory shared by every request; `None`
    /// serves storeless (every request cold).
    pub store_dir: Option<PathBuf>,
    /// Honor `debug-panic` requests (test/CI-only executor-isolation
    /// probe).
    pub debug_ops: bool,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            jobs: 1,
            workers: 2,
            max_pending: 16,
            max_line_bytes: 1 << 20,
            line_timeout: Duration::from_secs(10),
            default_deadline: None,
            max_jobs: 64,
            store_dir: None,
            debug_ops: false,
        }
    }
}

/// What an executor actually runs.
enum Work {
    /// An analysis request.
    Op(Box<OpRequest>),
    /// A deliberate panic (isolation probe; `debug_ops` only).
    Panic,
}

/// Where a finished request's response goes.
enum Reply {
    /// Write the response line back on the admitting connection.
    Conn(Arc<ConnWriter>, String),
    /// Park the outcome in the job registry under this handle.
    Detached(String),
}

/// One admitted unit of work.
struct Job {
    work: Work,
    cancel: CancelToken,
    deadline: Option<Duration>,
    ticks: Option<u64>,
    reply: Reply,
}

/// A detached job's lifecycle.
enum JobState {
    Queued,
    Running,
    Done(Result<OpOutput, (ErrorKind, String)>),
}

struct JobEntry {
    state: JobState,
    cancel: CancelToken,
}

/// Registry of detached jobs, capacity-bounded: when full, the oldest
/// *finished* job is evicted to make room; if every slot holds live
/// work, the submit is shed as `overloaded`.
#[derive(Default)]
struct JobRegistry {
    entries: HashMap<String, JobEntry>,
    order: VecDeque<String>,
}

/// Monotonic daemon counters (all totals since start).
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    panics: AtomicU64,
    bad_lines: AtomicU64,
}

/// Most recently analyzed machines retained for `baseline_fp` lookup.
const MACHINE_CACHE_CAP: usize = 32;

/// Recently analyzed machines, keyed by FNV-1a-64 of their KISS2
/// bytes. Every executed analysis deposits its machine here, so a
/// follow-up `analyze-delta` can name its baseline by fingerprint
/// instead of resending the text. Capacity-bounded (FIFO eviction); a
/// miss is a typed `not_found` — the client resends the baseline
/// inline, nothing is ever wrong, only slower.
#[derive(Default)]
struct MachineCache {
    by_fp: HashMap<u64, String>,
    order: VecDeque<u64>,
}

impl MachineCache {
    fn remember(&mut self, text: &str) {
        let fp = fnv1a64(text.as_bytes());
        if self.by_fp.insert(fp, text.to_string()).is_none() {
            self.order.push_back(fp);
            while self.order.len() > MACHINE_CACHE_CAP {
                if let Some(old) = self.order.pop_front() {
                    self.by_fp.remove(&old);
                }
            }
        }
    }

    fn get(&self, fp: u64) -> Option<String> {
        self.by_fp.get(&fp).cloned()
    }
}

/// State shared by every thread of one daemon.
struct Shared {
    options: ServeOptions,
    pool: ParExec,
    store: Option<Store>,
    shutdown: CancelToken,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    registry: Mutex<JobRegistry>,
    machines: Mutex<MachineCache>,
    next_handle: AtomicU64,
    counters: Counters,
    started: Instant,
}

/// Serialized write half of one connection. Executor threads and the
/// connection's own reader both respond through this, one full line at
/// a time.
struct ConnWriter {
    stream: Mutex<TcpStream>,
}

impl ConnWriter {
    /// Writes one response line; errors are swallowed (a vanished
    /// client is routine, and its cancel token is handled elsewhere).
    fn send(&self, line: &str) {
        if let Ok(mut stream) = self.stream.lock() {
            let _ = stream.write_all(line.as_bytes());
            let _ = stream.write_all(b"\n");
            let _ = stream.flush();
        }
    }
}

/// Installs (once, process-wide) a forwarding panic hook that keeps
/// captured executor/pool panics off stderr; every other thread's
/// panics still reach the previous hook. Same idiom as the suite
/// runner's hook — both can be installed in either order.
fn install_serve_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if matches!(
                std::thread::current().name(),
                Some(EXEC_THREAD_NAME) | Some(POOL_THREAD_NAME)
            ) {
                return;
            }
            prev(info);
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::stop`] (or send a `shutdown` request) and then
/// [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    shutdown: CancelToken,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, opens the store (when configured) and spawns the accept
    /// and executor threads. Returns once the daemon is accepting.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; a store that cannot open is
    /// reported as [`std::io::ErrorKind::InvalidData`].
    pub fn start(options: ServeOptions) -> std::io::Result<Server> {
        install_serve_panic_hook();
        let listener = TcpListener::bind(&options.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let store = match &options.store_dir {
            Some(dir) => Some(Store::open(dir).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
            })?),
            None => None,
        };
        let pool = ParExec::new(options.jobs).with_thread_name(POOL_THREAD_NAME);
        let shutdown = CancelToken::new();
        let shared = Arc::new(Shared {
            pool,
            store,
            shutdown: shutdown.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            registry: Mutex::new(JobRegistry::default()),
            machines: Mutex::new(MachineCache::default()),
            next_handle: AtomicU64::new(1),
            counters: Counters::default(),
            started: Instant::now(),
            options,
        });
        let mut executors = Vec::new();
        for _ in 0..shared.options.workers.max(1) {
            let shared = Arc::clone(&shared);
            executors.push(
                std::thread::Builder::new()
                    .name(EXEC_THREAD_NAME.to_string())
                    .spawn(move || executor_loop(&shared))
                    .expect("spawning executor thread"),
            );
        }
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ced-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, executors))
                .expect("spawning accept thread")
        };
        Ok(Server {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fires the daemon's shutdown token (same effect as a `shutdown`
    /// request).
    pub fn stop(&self) {
        self.shutdown.cancel();
    }

    /// Blocks until the daemon has fully stopped: accept loop exited,
    /// every connection reader and executor joined.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    executors: Vec<std::thread::JoinHandle<()>>,
) {
    let mut readers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutdown.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                let handle = std::thread::Builder::new()
                    .name("ced-serve-conn".to_string())
                    .spawn(move || connection_loop(stream, &shared))
                    .expect("spawning connection thread");
                readers.push(handle);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
        // Reap finished readers so a long-lived daemon does not
        // accumulate handles for short-lived connections.
        readers.retain(|h| !h.is_finished());
    }
    shared.queue_cv.notify_all();
    // Detached jobs outlive their submitting connection, so no reader
    // fires their tokens — shutdown must, or a long submitted job
    // would stall the daemon's exit.
    for entry in shared
        .registry
        .lock()
        .expect("registry lock")
        .entries
        .values()
    {
        entry.cancel.cancel();
    }
    for handle in readers {
        let _ = handle.join();
    }
    for handle in executors {
        let _ = handle.join();
    }
}

// ---------------------------------------------------------------------
// Executors
// ---------------------------------------------------------------------

fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.is_cancelled() {
                    return;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = q;
            }
        };
        if shared.shutdown.is_cancelled() {
            deliver(
                shared,
                job.reply,
                Err((ErrorKind::ShuttingDown, "daemon shutting down".to_string())),
            );
            continue;
        }
        run_job(shared, job);
    }
}

fn run_job(shared: &Arc<Shared>, mut job: Job) {
    if let Reply::Detached(handle) = &job.reply {
        let mut registry = shared.registry.lock().expect("registry lock");
        if let Some(entry) = registry.entries.get_mut(handle) {
            entry.state = JobState::Running;
        }
    }
    if let Work::Op(op) = &mut job.work {
        // Resolve a fingerprint-named baseline against the
        // recent-machine cache before the ops layer sees the request
        // (the ops layer only accepts inline baselines), and remember
        // this request's machine so later `analyze-delta` requests can
        // name it the same way.
        if let Some(fp) = op.baseline_fp {
            let resolved = shared.machines.lock().expect("machine cache lock").get(fp);
            match resolved {
                Some(text) => {
                    op.baseline = Some(text);
                    op.baseline_fp = None;
                }
                None => {
                    deliver(
                        shared,
                        job.reply,
                        Err((
                            ErrorKind::NotFound,
                            format!(
                                "baseline fingerprint {fp:#018x} is not in the recent-machine \
                                 cache; resend the baseline as inline KISS2 text"
                            ),
                        )),
                    );
                    return;
                }
            }
        }
        shared
            .machines
            .lock()
            .expect("machine cache lock")
            .remember(&op.kiss2);
    }
    if job.cancel.is_cancelled() {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        deliver(
            shared,
            job.reply,
            Err((
                ErrorKind::Cancelled,
                "cancelled before the analysis started".to_string(),
            )),
        );
        return;
    }
    let mut budget = Budget::new().with_cancel(job.cancel.clone());
    if let Some(deadline) = job.deadline.or(shared.options.default_deadline) {
        budget = budget.with_deadline(deadline);
    }
    if let Some(cap) = job.ticks {
        budget = budget.with_tick_cap(cap);
    }
    let outcome = match &job.work {
        Work::Op(op) => std::panic::catch_unwind(AssertUnwindSafe(|| {
            ops::execute(op, &budget, &shared.pool, shared.store.as_ref())
        })),
        Work::Panic => std::panic::catch_unwind(|| -> Result<OpOutput, OpError> {
            panic!("deliberate debug panic")
        }),
    };
    let result: Result<OpOutput, (ErrorKind, String)> = match outcome {
        Ok(Ok(output)) => {
            shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            Ok(output)
        }
        Ok(Err(OpError::BadRequest(m))) => Err((ErrorKind::BadRequest, m)),
        Ok(Err(OpError::Interrupted(i))) => {
            let kind = ErrorKind::from_interrupt(i.kind);
            if kind == ErrorKind::Cancelled {
                shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Err((kind, i.to_string()))
        }
        Ok(Err(OpError::Failed(m))) => Err((ErrorKind::InternalError, m)),
        Err(payload) => {
            shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            Err((
                ErrorKind::InternalError,
                format!("analysis panicked: {}", panic_message(payload.as_ref())),
            ))
        }
    };
    deliver(shared, job.reply, result);
}

/// Routes a finished request's outcome: back to the connection, or
/// into the job registry.
fn deliver(shared: &Arc<Shared>, reply: Reply, result: Result<OpOutput, (ErrorKind, String)>) {
    match reply {
        Reply::Conn(writer, id) => {
            let line = match &result {
                Ok(output) => proto::ok_op(&id, output),
                Err((kind, message)) => proto::error(&id, *kind, message),
            };
            writer.send(&line);
        }
        Reply::Detached(handle) => {
            let mut registry = shared.registry.lock().expect("registry lock");
            if let Some(entry) = registry.entries.get_mut(&handle) {
                entry.state = JobState::Done(result);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------

fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter {
            stream: Mutex::new(w),
        }),
        Err(_) => return,
    };
    // The connection's cancel token: cloned into every synchronous
    // request's budget, fired on any exit from the read loop. This is
    // the disconnect → cancellation edge.
    let conn_cancel = CancelToken::new();
    let mut reader = LineReader::new(
        stream,
        shared.options.max_line_bytes,
        shared.options.line_timeout,
    );
    loop {
        match reader.next_line(|| shared.shutdown.is_cancelled()) {
            ReadOutcome::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                match proto::parse_request(&line) {
                    Ok(request) => {
                        if !handle_request(shared, &writer, &conn_cancel, request) {
                            break;
                        }
                    }
                    Err((id, message)) => {
                        shared.counters.bad_lines.fetch_add(1, Ordering::Relaxed);
                        writer.send(&proto::error(&id, ErrorKind::BadRequest, &message));
                    }
                }
            }
            ReadOutcome::TooLong => {
                shared.counters.bad_lines.fetch_add(1, Ordering::Relaxed);
                writer.send(&proto::error(
                    "",
                    ErrorKind::LineTooLong,
                    &format!(
                        "request line exceeds {} bytes",
                        shared.options.max_line_bytes
                    ),
                ));
                break;
            }
            ReadOutcome::Timeout => {
                shared.counters.bad_lines.fetch_add(1, Ordering::Relaxed);
                writer.send(&proto::error(
                    "",
                    ErrorKind::ReadTimeout,
                    "partial request line stopped making progress",
                ));
                break;
            }
            ReadOutcome::Eof | ReadOutcome::TruncatedEof | ReadOutcome::Shutdown => break,
        }
    }
    conn_cancel.cancel();
}

/// Handles one parsed request on the reader thread. Returns `false`
/// when the connection should close (only after `shutdown`).
fn handle_request(
    shared: &Arc<Shared>,
    writer: &Arc<ConnWriter>,
    conn_cancel: &CancelToken,
    request: Request,
) -> bool {
    match request {
        Request::Op {
            id,
            op,
            deadline_ms,
            ticks,
        } => {
            let job = Job {
                work: Work::Op(op),
                cancel: conn_cancel.clone(),
                deadline: deadline_ms.map(Duration::from_millis),
                ticks,
                reply: Reply::Conn(Arc::clone(writer), id.clone()),
            };
            if let Err((kind, message)) = admit(shared, job) {
                writer.send(&proto::error(&id, kind, &message));
            }
        }
        Request::Submit {
            id,
            op,
            deadline_ms,
            ticks,
        } => {
            let cancel = CancelToken::new();
            let handle = match register_job(shared, &cancel) {
                Ok(handle) => handle,
                Err((kind, message)) => {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                    writer.send(&proto::error(&id, kind, &message));
                    return true;
                }
            };
            let job = Job {
                work: Work::Op(op),
                cancel,
                deadline: deadline_ms.map(Duration::from_millis),
                ticks,
                reply: Reply::Detached(handle.clone()),
            };
            if let Err((kind, message)) = admit(shared, job) {
                let mut registry = shared.registry.lock().expect("registry lock");
                registry.entries.remove(&handle);
                registry.order.retain(|h| h != &handle);
                writer.send(&proto::error(&id, kind, &message));
                return true;
            }
            writer.send(&proto::ok_fields(
                &id,
                vec![("handle".to_string(), Json::str(&handle))],
            ));
        }
        Request::Poll { id, handle } => {
            let registry = shared.registry.lock().expect("registry lock");
            match registry.entries.get(&handle) {
                None => writer.send(&proto::error(
                    &id,
                    ErrorKind::NotFound,
                    &format!("no job `{handle}`"),
                )),
                Some(entry) => {
                    let state = match &entry.state {
                        JobState::Queued => JOB_STATE_QUEUED,
                        JobState::Running => JOB_STATE_RUNNING,
                        JobState::Done(_) => JOB_STATE_DONE,
                    };
                    writer.send(&proto::ok_fields(
                        &id,
                        vec![
                            ("handle".to_string(), Json::str(&handle)),
                            ("state".to_string(), Json::str(state)),
                        ],
                    ));
                }
            }
        }
        Request::Fetch { id, handle } => {
            let mut registry = shared.registry.lock().expect("registry lock");
            match registry.entries.get(&handle) {
                None => writer.send(&proto::error(
                    &id,
                    ErrorKind::NotFound,
                    &format!("no job `{handle}`"),
                )),
                Some(entry) if !matches!(entry.state, JobState::Done(_)) => writer.send(
                    &proto::error(&id, ErrorKind::NotReady, "job has not finished; poll again"),
                ),
                Some(_) => {
                    let entry = registry.entries.remove(&handle).expect("checked above");
                    registry.order.retain(|h| h != &handle);
                    drop(registry);
                    let JobState::Done(result) = entry.state else {
                        unreachable!("matched Done above");
                    };
                    let line = match &result {
                        Ok(output) => proto::ok_op(&id, output),
                        Err((kind, message)) => proto::error(&id, *kind, message),
                    };
                    writer.send(&line);
                }
            }
        }
        Request::Cancel { id, handle } => {
            let registry = shared.registry.lock().expect("registry lock");
            match registry.entries.get(&handle) {
                None => writer.send(&proto::error(
                    &id,
                    ErrorKind::NotFound,
                    &format!("no job `{handle}`"),
                )),
                Some(entry) => {
                    entry.cancel.cancel();
                    writer.send(&proto::ok_fields(
                        &id,
                        vec![("handle".to_string(), Json::str(&handle))],
                    ));
                }
            }
        }
        Request::Health { id } => {
            let doc = health_doc(shared);
            writer.send(&proto::ok_fields(&id, vec![("health".to_string(), doc)]));
        }
        Request::Shutdown { id } => {
            writer.send(&proto::ok_fields(&id, Vec::new()));
            shared.shutdown.cancel();
            shared.queue_cv.notify_all();
            return false;
        }
        Request::DebugPanic { id } => {
            if !shared.options.debug_ops {
                writer.send(&proto::error(
                    &id,
                    ErrorKind::BadRequest,
                    "debug ops are disabled on this daemon",
                ));
                return true;
            }
            let job = Job {
                work: Work::Panic,
                cancel: conn_cancel.clone(),
                deadline: None,
                ticks: None,
                reply: Reply::Conn(Arc::clone(writer), id.clone()),
            };
            if let Err((kind, message)) = admit(shared, job) {
                writer.send(&proto::error(&id, kind, &message));
            }
        }
    }
    true
}

/// Admission control: rejects when shutting down or when the pending
/// queue is at capacity; otherwise enqueues and wakes an executor.
fn admit(shared: &Arc<Shared>, job: Job) -> Result<(), (ErrorKind, String)> {
    if shared.shutdown.is_cancelled() {
        return Err((ErrorKind::ShuttingDown, "daemon shutting down".to_string()));
    }
    let mut queue = shared.queue.lock().expect("queue lock");
    if queue.len() >= shared.options.max_pending {
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        return Err((
            ErrorKind::Overloaded,
            format!(
                "pending queue is full ({} requests); retry later",
                queue.len()
            ),
        ));
    }
    queue.push_back(job);
    drop(queue);
    shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
    shared.queue_cv.notify_one();
    Ok(())
}

/// Reserves a registry slot and handle for a detached job, evicting
/// the oldest *finished* job when at capacity.
fn register_job(shared: &Arc<Shared>, cancel: &CancelToken) -> Result<String, (ErrorKind, String)> {
    let mut registry = shared.registry.lock().expect("registry lock");
    if registry.entries.len() >= shared.options.max_jobs {
        let evict = registry
            .order
            .iter()
            .find(|h| {
                registry
                    .entries
                    .get(*h)
                    .is_some_and(|e| matches!(e.state, JobState::Done(_)))
            })
            .cloned();
        match evict {
            Some(handle) => {
                registry.entries.remove(&handle);
                registry.order.retain(|h| h != &handle);
            }
            None => {
                return Err((
                    ErrorKind::Overloaded,
                    format!(
                        "job registry is full ({} live jobs); fetch or cancel some",
                        registry.entries.len()
                    ),
                ));
            }
        }
    }
    let handle = format!("job-{}", shared.next_handle.fetch_add(1, Ordering::Relaxed));
    registry.entries.insert(
        handle.clone(),
        JobEntry {
            state: JobState::Queued,
            cancel: cancel.clone(),
        },
    );
    registry.order.push_back(handle.clone());
    Ok(handle)
}

/// The `health` document: daemon counters, queue/registry depth, and —
/// when a store is attached — the live store statistics and any fleet
/// campaign visible under the store directory.
fn health_doc(shared: &Arc<Shared>) -> Json {
    let queue_len = shared.queue.lock().expect("queue lock").len() as u64;
    let registry = shared.registry.lock().expect("registry lock");
    let jobs_live = registry.entries.len() as u64;
    drop(registry);
    let c = &shared.counters;
    let mut fields = vec![
        ("schema".to_string(), Json::str("ced-serve-health/1")),
        (
            "uptime_ms".to_string(),
            Json::UInt(shared.started.elapsed().as_millis() as u64),
        ),
        (
            "workers".to_string(),
            Json::UInt(shared.options.workers.max(1) as u64),
        ),
        (
            "pool_jobs".to_string(),
            Json::UInt(shared.pool.jobs() as u64),
        ),
        (
            "max_pending".to_string(),
            Json::UInt(shared.options.max_pending as u64),
        ),
        ("queue_depth".to_string(), Json::UInt(queue_len)),
        ("detached_jobs".to_string(), Json::UInt(jobs_live)),
        (
            "counters".to_string(),
            Json::Object(vec![
                (
                    "connections".to_string(),
                    Json::UInt(c.connections.load(Ordering::Relaxed)),
                ),
                (
                    "admitted".to_string(),
                    Json::UInt(c.admitted.load(Ordering::Relaxed)),
                ),
                (
                    "completed".to_string(),
                    Json::UInt(c.completed.load(Ordering::Relaxed)),
                ),
                (
                    "shed".to_string(),
                    Json::UInt(c.shed.load(Ordering::Relaxed)),
                ),
                (
                    "cancelled".to_string(),
                    Json::UInt(c.cancelled.load(Ordering::Relaxed)),
                ),
                (
                    "panics".to_string(),
                    Json::UInt(c.panics.load(Ordering::Relaxed)),
                ),
                (
                    "bad_lines".to_string(),
                    Json::UInt(c.bad_lines.load(Ordering::Relaxed)),
                ),
            ]),
        ),
    ];
    if let Some(store) = &shared.store {
        fields.push(("store".to_string(), store.stats_json()));
    }
    if let Some(dir) = &shared.options.store_dir {
        if let Ok(status) = ced_fleet::fleet_status(dir, Duration::from_secs(15)) {
            fields.push(("fleet".to_string(), status.to_json()));
        }
    }
    Json::Object(fields)
}
