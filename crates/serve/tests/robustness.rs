//! Protocol-robustness suite for the `ced serve` daemon.
//!
//! Every test drives a real daemon over real loopback TCP and checks
//! the contracts the daemon exists to keep: hostile or broken input
//! produces *typed* errors (never a panic, never a wedged thread,
//! never an unbounded buffer), overload is shed at admission instead
//! of queueing without bound, a client disconnect observably cancels
//! its in-flight work, and a panicking analysis is isolated to an
//! `internal_error` response while the daemon keeps serving.

use ced_runtime::Json;
use ced_serve::{Client, ServeOptions, Server};
use std::io::Write as _;
use std::time::{Duration, Instant};

/// The two-state toggle machine: every fast request uses this.
const TINY: &str = "\
.i 1
.o 1
.p 4
.s 2
.r s0
0 s0 s0 0
1 s0 s1 1
0 s1 s0 1
1 s1 s1 0
.e
";

/// A `n`-state counter whose exhaustive-input tensor takes seconds to
/// build (debug profile) while checking its budget constantly — the
/// canonical "slow but promptly cancellable" request.
fn counter_kiss2(n: usize) -> String {
    let mut out = format!(".i 1\n.o 1\n.p {}\n.s {n}\n.r s0\n", 2 * n);
    for i in 0..n {
        out.push_str(&format!("0 s{i} s{i} {}\n", i % 2));
        out.push_str(&format!("1 s{i} s{} {}\n", (i + 1) % n, (i >> 1) % 2));
    }
    out.push_str(".e\n");
    out
}

fn options() -> ServeOptions {
    ServeOptions {
        debug_ops: true,
        ..ServeOptions::default()
    }
}

fn start(opts: ServeOptions) -> Server {
    Server::start(opts).expect("daemon starts")
}

fn connect(server: &Server) -> Client {
    Client::connect(server.addr()).expect("loopback connect")
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn check_req(id: &str, machine: &str) -> Json {
    obj(vec![
        ("id", Json::str(id)),
        ("cmd", Json::str("check")),
        ("machine", Json::str(machine)),
    ])
}

/// The slow request: exhaustive table over four bounds on the counter.
fn slow_table_req(id: &str) -> Json {
    slow_table_req_sized(id, 120)
}

/// [`slow_table_req`] over an `n`-state counter, for tests that must
/// outlast a budget regardless of engine speed — a budget-aborted
/// request costs only the budget itself, so a much larger machine
/// keeps such tests both robust and fast.
fn slow_table_req_sized(id: &str, n: usize) -> Json {
    obj(vec![
        ("id", Json::str(id)),
        ("cmd", Json::str("table")),
        ("machine", Json::str(&counter_kiss2(n))),
        (
            "latencies",
            Json::Array(vec![
                Json::UInt(1),
                Json::UInt(2),
                Json::UInt(3),
                Json::UInt(4),
            ]),
        ),
        ("exhaustive_inputs", Json::Bool(true)),
    ])
}

fn status_of(resp: &Json) -> &str {
    resp.get("status")
        .and_then(Json::as_str)
        .expect("status field")
}

fn error_kind(resp: &Json) -> &str {
    resp.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("typed error expected, got {}", resp.render()))
}

fn health(client: &mut Client) -> Json {
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("h")),
            ("cmd", Json::str("health")),
        ]))
        .expect("health round trip");
    assert_eq!(status_of(&resp), "ok");
    resp.get("health").expect("health document").clone()
}

fn counter(health: &Json, name: &str) -> u64 {
    health
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {name} in {}", health.render()))
}

/// Polls the daemon's health until `pred` holds or the deadline passes.
fn wait_for(client: &mut Client, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let doc = health(client);
        if pred(&doc) {
            return doc;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last health: {}",
            doc.render()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown(server: Server, client: &mut Client) {
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("bye")),
            ("cmd", Json::str("shutdown")),
        ]))
        .expect("shutdown round trip");
    assert_eq!(status_of(&resp), "ok");
    server.wait();
}

#[test]
fn garbage_and_malformed_lines_get_typed_errors_and_the_connection_survives() {
    let server = start(options());
    let mut client = connect(&server);
    let bad_lines = [
        "this is not json",
        "[1,2,3]",
        "{\"id\":\"a\"",
        "{\"id\":\"a\",\"cmd\":\"frobnicate\"}",
        "{\"id\":\"a\",\"cmd\":\"check\"}",
        "{\"id\":\"a\",\"cmd\":\"check\",\"machine\":\"not kiss2 at all\",\"latency\":\"one\"}",
        "{\"id\":\"a\",\"cmd\":\"check\",\"machine\":\"x\",\"surprise\":1}",
        "{\"id\":\"a\",\"cmd\":\"poll\"}",
        "42",
        "\"just a string\"",
    ];
    for line in bad_lines {
        client.send_line(line).expect("send survives");
        let resp = Json::parse(&client.recv_line().expect("typed response")).expect("valid JSON");
        assert_eq!(status_of(&resp), "error", "for line {line}");
        assert_eq!(error_kind(&resp), "bad_request", "for line {line}");
    }
    // The connection is still usable for real work afterwards.
    let resp = client
        .request(&check_req("ok1", TINY))
        .expect("check after garbage");
    assert_eq!(status_of(&resp), "ok");
    assert!(resp
        .get("payload")
        .and_then(Json::as_str)
        .expect("payload")
        .contains("Algorithm 1"));
    shutdown(server, &mut client);
}

#[test]
fn a_machine_that_fails_to_parse_is_bad_request_not_internal_error() {
    let server = start(options());
    let mut client = connect(&server);
    let resp = client
        .request(&check_req("bad", "definitely not a kiss2 machine"))
        .expect("round trip");
    assert_eq!(status_of(&resp), "error");
    assert_eq!(error_kind(&resp), "bad_request");
    shutdown(server, &mut client);
}

#[test]
fn oversized_request_line_is_rejected_typed_then_the_connection_closes() {
    let server = start(ServeOptions {
        max_line_bytes: 1024,
        ..options()
    });
    let mut abuser = connect(&server);
    let huge = format!(
        "{{\"id\":\"big\",\"cmd\":\"check\",\"machine\":\"{}\"}}",
        "x".repeat(64 * 1024)
    );
    abuser.send_line(&huge).expect("send oversized line");
    let resp = Json::parse(&abuser.recv_line().expect("typed response")).expect("valid JSON");
    assert_eq!(error_kind(&resp), "line_too_long");
    // The daemon cannot resynchronize inside an abandoned line, so the
    // connection is closed...
    assert!(abuser.recv_line().is_err(), "connection should be closed");
    // ...but the daemon itself keeps serving new clients.
    let mut client = connect(&server);
    let resp = client
        .request(&check_req("after", TINY))
        .expect("fresh client works");
    assert_eq!(status_of(&resp), "ok");
    shutdown(server, &mut client);
}

#[test]
fn slow_trickle_partial_line_gets_read_timeout() {
    let server = start(ServeOptions {
        line_timeout: Duration::from_millis(300),
        ..options()
    });
    let mut trickler = connect(&server);
    let mut raw = trickler.stream();
    raw.write_all(b"{\"id\":\"tri").expect("partial write");
    raw.flush().expect("flush");
    // Never send the rest. The daemon must answer with a typed
    // read_timeout instead of parking a reader thread forever.
    let resp = Json::parse(&trickler.recv_line().expect("typed response")).expect("valid JSON");
    assert_eq!(error_kind(&resp), "read_timeout");
    let mut client = connect(&server);
    assert_eq!(
        status_of(&client.request(&check_req("after", TINY)).unwrap()),
        "ok"
    );
    shutdown(server, &mut client);
}

#[test]
fn mid_line_disconnect_leaves_the_daemon_serving() {
    let server = start(options());
    {
        let vanisher = connect(&server);
        let mut raw = vanisher.stream();
        raw.write_all(b"{\"id\":\"gone\",\"cmd\":\"chec")
            .expect("partial write");
        raw.flush().expect("flush");
    } // dropped mid-line
    let mut client = connect(&server);
    let resp = client
        .request(&check_req("after", TINY))
        .expect("daemon survives");
    assert_eq!(status_of(&resp), "ok");
    shutdown(server, &mut client);
}

#[test]
fn overload_is_shed_with_typed_errors_while_admitted_work_completes() {
    let server = start(ServeOptions {
        workers: 1,
        max_pending: 1,
        ..options()
    });
    // Occupy the single executor with a slow request.
    let mut slow = connect(&server);
    slow.send_line(&slow_table_req("slow").render())
        .expect("send slow");
    let mut probe = connect(&server);
    wait_for(&mut probe, "slow request to start running", |h| {
        counter(h, "admitted") == 1 && h.get("queue_depth").and_then(Json::as_u64) == Some(0)
    });
    // Fill the single pending slot, then flood: everything beyond the
    // slot must be shed immediately with a typed `overloaded` error.
    probe
        .send_line(&slow_table_req("fill").render())
        .expect("send filler");
    let mut flood = connect(&server);
    for i in 0..4 {
        flood
            .send_line(&check_req(&format!("flood{i}"), TINY).render())
            .expect("send flood");
    }
    for i in 0..4 {
        let resp = Json::parse(&flood.recv_line().expect("shed response")).expect("valid JSON");
        assert_eq!(status_of(&resp), "error", "flood request {i}");
        assert_eq!(error_kind(&resp), "overloaded", "flood request {i}");
    }
    // Shedding is accounted, and the daemon is still fully responsive
    // on its control plane while saturated.
    let mut aux = connect(&server);
    let doc = health(&mut aux);
    assert!(counter(&doc, "shed") >= 4, "health: {}", doc.render());
    // Dropping the saturating clients cancels their work; the daemon
    // returns to idle and keeps serving.
    drop(slow);
    drop(probe);
    wait_for(&mut aux, "saturating work to drain", |h| {
        h.get("queue_depth").and_then(Json::as_u64) == Some(0)
            && counter(h, "completed") + counter(h, "cancelled") >= 2
    });
    let resp = aux
        .request(&check_req("after", TINY))
        .expect("post-overload check");
    assert_eq!(status_of(&resp), "ok");
    shutdown(server, &mut aux);
}

#[test]
fn client_disconnect_observably_cancels_its_in_flight_request() {
    let server = start(ServeOptions {
        workers: 1,
        ..options()
    });
    let mut doomed = connect(&server);
    doomed
        .send_line(&slow_table_req("doomed").render())
        .expect("send slow");
    let mut probe = connect(&server);
    wait_for(&mut probe, "slow request to start running", |h| {
        counter(h, "admitted") == 1 && h.get("queue_depth").and_then(Json::as_u64) == Some(0)
    });
    let before = counter(&health(&mut probe), "cancelled");
    drop(doomed); // the disconnect is the cancellation
    let doc = wait_for(&mut probe, "disconnect-driven cancellation", |h| {
        counter(h, "cancelled") > before
    });
    assert_eq!(counter(&doc, "panics"), 0);
    // The executor freed by the cancellation serves new work.
    let resp = probe
        .request(&check_req("after", TINY))
        .expect("post-cancel check");
    assert_eq!(status_of(&resp), "ok");
    shutdown(server, &mut probe);
}

#[test]
fn panicking_analysis_is_isolated_to_a_typed_internal_error() {
    let server = start(options());
    let mut client = connect(&server);
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("boom")),
            ("cmd", Json::str("debug-panic")),
        ]))
        .expect("round trip");
    assert_eq!(status_of(&resp), "error");
    assert_eq!(error_kind(&resp), "internal_error");
    // Same daemon, same connection: still serving.
    let resp = client
        .request(&check_req("after", TINY))
        .expect("post-panic check");
    assert_eq!(status_of(&resp), "ok");
    assert_eq!(counter(&health(&mut client), "panics"), 1);
    shutdown(server, &mut client);
}

#[test]
fn debug_panic_is_refused_unless_enabled() {
    let server = start(ServeOptions {
        debug_ops: false,
        ..options()
    });
    let mut client = connect(&server);
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("boom")),
            ("cmd", Json::str("debug-panic")),
        ]))
        .expect("round trip");
    assert_eq!(error_kind(&resp), "bad_request");
    shutdown(server, &mut client);
}

#[test]
fn submitted_jobs_poll_fetch_and_cancel_as_typed_handles() {
    let server = start(ServeOptions {
        workers: 1,
        ..options()
    });
    let mut client = connect(&server);
    // Unknown handles are typed not_found.
    for cmd in ["poll", "fetch", "cancel"] {
        let resp = client
            .request(&obj(vec![
                ("id", Json::str("x")),
                ("cmd", Json::str(cmd)),
                ("handle", Json::str("job-9999")),
            ]))
            .expect("round trip");
        assert_eq!(error_kind(&resp), "not_found", "cmd {cmd}");
    }
    // Submit a slow detached job; it survives beyond this request.
    let doc = slow_table_req("ignored");
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("s1")),
            ("cmd", Json::str("submit")),
            ("job", doc),
        ]))
        .expect("submit");
    assert_eq!(status_of(&resp), "ok");
    let handle = resp
        .get("handle")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();
    // Not finished yet: fetch is typed not_ready, poll reports a live
    // state.
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("f1")),
            ("cmd", Json::str("fetch")),
            ("handle", Json::str(&handle)),
        ]))
        .expect("early fetch");
    assert_eq!(error_kind(&resp), "not_ready");
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("p1")),
            ("cmd", Json::str("poll")),
            ("handle", Json::str(&handle)),
        ]))
        .expect("poll");
    let state = resp.get("state").and_then(Json::as_str).expect("state");
    assert!(state == "queued" || state == "running", "state {state}");
    // Cancel it; the job converges to done-with-cancelled.
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("c1")),
            ("cmd", Json::str("cancel")),
            ("handle", Json::str(&handle)),
        ]))
        .expect("cancel");
    assert_eq!(status_of(&resp), "ok");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = client
            .request(&obj(vec![
                ("id", Json::str("p2")),
                ("cmd", Json::str("poll")),
                ("handle", Json::str(&handle)),
            ]))
            .expect("poll loop");
        if resp.get("state").and_then(Json::as_str) == Some("done") {
            break;
        }
        assert!(Instant::now() < deadline, "cancelled job never finished");
        std::thread::sleep(Duration::from_millis(20));
    }
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("f2")),
            ("cmd", Json::str("fetch")),
            ("handle", Json::str(&handle)),
        ]))
        .expect("final fetch");
    assert_eq!(error_kind(&resp), "cancelled");
    // Fetch consumes the handle.
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("f3")),
            ("cmd", Json::str("fetch")),
            ("handle", Json::str(&handle)),
        ]))
        .expect("fetch after consume");
    assert_eq!(error_kind(&resp), "not_found");
    shutdown(server, &mut client);
}

#[test]
fn per_request_deadline_and_tick_caps_are_typed() {
    let server = start(options());
    let mut client = connect(&server);
    // A counter large enough that the analysis outlasts a 50 ms
    // deadline under the release profile and the sparse engine; the
    // request still aborts at the deadline, so the test stays fast.
    let mut doc = slow_table_req_sized("dl", 480);
    if let Json::Object(fields) = &mut doc {
        fields.push(("deadline_ms".to_string(), Json::UInt(50)));
    }
    let resp = client.request(&doc).expect("deadline round trip");
    assert_eq!(error_kind(&resp), "deadline_exceeded");
    let mut doc = slow_table_req("tk");
    if let Json::Object(fields) = &mut doc {
        fields.push(("ticks".to_string(), Json::UInt(10)));
    }
    let resp = client.request(&doc).expect("ticks round trip");
    assert_eq!(error_kind(&resp), "resource_exhausted");
    // Neither exhausted request hurt the daemon.
    let resp = client
        .request(&check_req("after", TINY))
        .expect("post-exhaustion check");
    assert_eq!(status_of(&resp), "ok");
    shutdown(server, &mut client);
}

/// [`TINY`] with one output bit flipped (the s1 self-loop) — the
/// smallest output-only edit.
const TINY_EDITED: &str = "\
.i 1
.o 1
.p 4
.s 2
.r s0
0 s0 s0 0
1 s0 s1 1
0 s1 s0 1
1 s1 s1 1
.e
";

#[test]
fn analyze_delta_matches_plain_check_and_resolves_fingerprints() {
    let server = start(options());
    let mut client = connect(&server);

    // Reference: a plain check of the edited machine.
    let plain = client
        .request(&check_req("plain", TINY_EDITED))
        .expect("plain check");
    assert_eq!(status_of(&plain), "ok", "{}", plain.render());
    let reference = plain.get("payload").and_then(Json::as_str).unwrap();
    assert!(
        plain.get("delta").is_none(),
        "plain check must not carry a delta summary"
    );

    // analyze-delta with the baseline inline: identical payload.
    let inline = client
        .request(&obj(vec![
            ("id", Json::str("inline")),
            ("cmd", Json::str("analyze-delta")),
            ("machine", Json::str(TINY_EDITED)),
            ("baseline", Json::str(TINY)),
        ]))
        .expect("inline analyze-delta");
    assert_eq!(status_of(&inline), "ok", "{}", inline.render());
    assert_eq!(
        inline.get("payload").and_then(Json::as_str).unwrap(),
        reference,
        "analyze-delta payload must be byte-identical to plain check"
    );
    let summary = inline
        .get("delta")
        .and_then(Json::as_str)
        .expect("analyze-delta carries a delta summary field");
    assert!(
        summary.starts_with("delta: ") && summary.contains("cones:"),
        "unexpected summary shape: {summary}"
    );

    // A check of the baseline deposits it in the recent-machine cache;
    // analyze-delta may then name it by fingerprint.
    let base = client
        .request(&check_req("base", TINY))
        .expect("base check");
    assert_eq!(status_of(&base), "ok", "{}", base.render());
    let fp = ced_runtime::fnv1a64(TINY.as_bytes());
    let by_fp = client
        .request(&obj(vec![
            ("id", Json::str("by-fp")),
            ("cmd", Json::str("analyze-delta")),
            ("machine", Json::str(TINY_EDITED)),
            ("baseline_fp", Json::UInt(fp)),
        ]))
        .expect("fingerprint analyze-delta");
    assert_eq!(status_of(&by_fp), "ok", "{}", by_fp.render());
    assert_eq!(
        by_fp.get("payload").and_then(Json::as_str).unwrap(),
        reference,
        "fingerprint-named baseline must give the same payload"
    );

    // Unknown fingerprint: typed not_found, connection survives.
    let missing = client
        .request(&obj(vec![
            ("id", Json::str("missing")),
            ("cmd", Json::str("analyze-delta")),
            ("machine", Json::str(TINY_EDITED)),
            ("baseline_fp", Json::UInt(0xDEAD_BEEF)),
        ]))
        .expect("missing-fp response");
    assert_eq!(status_of(&missing), "error");
    assert_eq!(error_kind(&missing), "not_found");

    // Shape errors are typed bad_request: a baseline on plain check, a
    // baseline-free analyze-delta, both baseline spellings at once.
    for (what, doc) in [
        (
            "baseline on check",
            obj(vec![
                ("id", Json::str("e1")),
                ("cmd", Json::str("check")),
                ("machine", Json::str(TINY_EDITED)),
                ("baseline", Json::str(TINY)),
            ]),
        ),
        (
            "analyze-delta without baseline",
            obj(vec![
                ("id", Json::str("e2")),
                ("cmd", Json::str("analyze-delta")),
                ("machine", Json::str(TINY_EDITED)),
            ]),
        ),
        (
            "both baseline spellings",
            obj(vec![
                ("id", Json::str("e3")),
                ("cmd", Json::str("analyze-delta")),
                ("machine", Json::str(TINY_EDITED)),
                ("baseline", Json::str(TINY)),
                ("baseline_fp", Json::UInt(fp)),
            ]),
        ),
    ] {
        let resp = client.request(&doc).expect(what);
        assert_eq!(status_of(&resp), "error", "{what}: {}", resp.render());
        assert_eq!(error_kind(&resp), "bad_request", "{what}");
    }

    shutdown(server, &mut client);
}

#[test]
fn shutdown_request_stops_the_daemon_cleanly() {
    let server = start(options());
    let addr = server.addr();
    let mut client = connect(&server);
    shutdown(server, &mut client);
    // The listener is gone: new connections are refused (allow a
    // moment for the OS to tear the socket down).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if Client::connect(addr).is_err() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "listener still accepting after shutdown"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
