//! Per-fault structural cone fingerprints (DESIGN.md §16).
//!
//! A fault's detectability fragment — its erroneous cases, activation
//! count and testability — is a pure function of three things: the good
//! machine's transition tables, the enumeration options, and the
//! *faulty output functions* (response and next-state bits of the
//! faulted netlist). The first two are hashed into the shared fragment
//! context ([`crate::detect::fragment_context_bytes`]); this module
//! hashes the third.
//!
//! The cone key of a fault is a Merkle-style hash over exactly the
//! output slots its fault cone reaches: for each output slot in the
//! transitive fanout of the faulted net(s), the pair of (fault-free,
//! faulted) structural hashes of that slot's logic cone. Leaves encode
//! input-slot identity (which primary-input or state-register bit feeds
//! the cone), so hash equality implies the cones compute identical
//! functions of `(input, state)` — across *different* netlists, which
//! is what lets an edited machine reuse fragments from its baseline
//! whenever the edit does not reach a fault's cone.
//!
//! Soundness: if two (netlist, fault) pairs have equal cone keys then
//! (a) every reached output slot's fault-free function and faulted
//! function coincide between the two netlists, and (b) the *set* of
//! reached slots coincides; every slot outside the cone computes its
//! fault-free function under the fault by definition of reachability.
//! Equal keys therefore imply identical faulty transition tables up to
//! the good tables' values outside the cone — which the fragment
//! context (plus the delta footprint, for cross-context promotion)
//! pins. Collisions are the usual 64-bit FNV trust assumption shared
//! with every store key in the pipeline.

use crate::fault::{Fault, FaultModel};
use ced_logic::gate::GateKind;
use ced_logic::netlist::Netlist;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

#[inline]
fn mix(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Structural hash of every net's fault-free logic cone, in netlist
/// topological order. Leaves carry slot identity: `Input` nets hash
/// their input index (primary-input or state-bit position), constants
/// hash only their kind, and gates fold their fanins' hashes in fanin
/// order. Two nets with equal hashes compute the same function of the
/// netlist's input vector (modulo hash collision).
pub fn plain_hashes(netlist: &Netlist) -> Vec<u64> {
    let gates = netlist.gates();
    let mut plain = vec![0u64; gates.len()];
    for (i, g) in gates.iter().enumerate() {
        let mut h = mix(FNV_OFFSET, u64::from(g.kind.tag()));
        if g.kind == GateKind::Input {
            h = mix(h, i as u64);
        }
        for k in 0..g.kind.arity() {
            h = mix(h, plain[g.fanin[k].index()]);
        }
        plain[i] = h;
    }
    plain
}

/// The cone key of each fault in `faults` under `model`, in order.
///
/// For every fault the seed is expanded per the model (a
/// [`FaultModel::MultiBitCluster`] injects its whole spatial cluster;
/// every other model injects the seed alone), each injected net's hash
/// is replaced by a stuck-at marker, and hashes are recomputed along
/// the transitive-fanout corridor only. The key digests, over the
/// output slots whose hash changed, the triple `(slot index, fault-free
/// hash, faulted hash)` — the transitive fan-in of the faulted nets
/// plus the output/next-state logic they feed, and nothing else.
///
/// A fault reaching no output slot (structurally redundant) keys over
/// the empty slot set; all such faults share one key, and all of their
/// fragments are identically empty and untestable.
pub fn cone_keys(netlist: &Netlist, faults: &[Fault], model: FaultModel) -> Vec<u64> {
    let gates = netlist.gates();
    let n = gates.len();
    let plain = plain_hashes(netlist);
    let mut faulted = plain.clone();
    let mut dirty = vec![false; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut keys = Vec::with_capacity(faults.len());
    for &seed in faults {
        // Inject the expanded cluster as stuck-at leaves.
        let cluster = model.expand(seed, netlist);
        let mut first = n;
        for f in &cluster {
            let i = f.net.index();
            faulted[i] = mix(mix(FNV_OFFSET, u64::MAX), u64::from(f.stuck_at));
            dirty[i] = true;
            touched.push(i);
            first = first.min(i);
        }
        // Propagate along the fanout corridor (fanins precede their
        // gate in netlist order, so one forward pass suffices).
        for i in first.saturating_add(1)..n {
            if dirty[i] {
                continue;
            }
            let g = &gates[i];
            if (0..g.kind.arity()).any(|k| dirty[g.fanin[k].index()]) {
                let mut h = mix(FNV_OFFSET, u64::from(g.kind.tag()));
                for k in 0..g.kind.arity() {
                    h = mix(h, faulted[g.fanin[k].index()]);
                }
                faulted[i] = h;
                dirty[i] = true;
                touched.push(i);
            }
        }
        // Digest the reached output slots (slot order is the netlist's
        // output order: next-state bits then response bits).
        let mut key = FNV_OFFSET;
        for (slot, o) in netlist.outputs().iter().enumerate() {
            let i = o.index();
            if dirty[i] {
                key = mix(key, slot as u64);
                key = mix(key, plain[i]);
                key = mix(key, faulted[i]);
            }
        }
        keys.push(key);
        // Restore the scratch state for the next fault.
        for &i in &touched {
            faulted[i] = plain[i];
            dirty[i] = false;
        }
        touched.clear();
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_logic::netlist::{NetId, NetlistBuilder};

    fn two_cone_netlist() -> Netlist {
        // Two disjoint cones: out0 = a AND b, out1 = NOT c.
        let mut b = NetlistBuilder::new(3);
        let a = b.input(0);
        let x = b.input(1);
        let c = b.input(2);
        let g0 = b.and(a, x);
        let g1 = b.not(c);
        b.mark_output(g0);
        b.mark_output(g1);
        b.finish()
    }

    #[test]
    fn disjoint_cones_get_distinct_keys_and_ignore_each_other() {
        let n = two_cone_netlist();
        let faults = vec![
            Fault::new(NetId(0), true),  // input a: reaches out0 only
            Fault::new(NetId(2), true),  // input c: reaches out1 only
            Fault::new(NetId(0), false), // opposite polarity
        ];
        let keys = cone_keys(&n, &faults, FaultModel::PermanentStuckAt);
        assert_ne!(keys[0], keys[1], "different cones, different keys");
        // Both polarities of a stuck input differ (the marker encodes
        // the stuck value).
        assert_ne!(keys[0], keys[2]);
    }

    #[test]
    fn keys_stable_across_scratch_reuse() {
        let n = two_cone_netlist();
        let faults = vec![Fault::new(NetId(3), false), Fault::new(NetId(4), true)];
        let once = cone_keys(&n, &faults, FaultModel::PermanentStuckAt);
        // Reversed order must give the same per-fault keys (scratch
        // state fully restored between faults).
        let rev = vec![faults[1], faults[0]];
        let twice = cone_keys(&n, &rev, FaultModel::PermanentStuckAt);
        assert_eq!(once[0], twice[1]);
        assert_eq!(once[1], twice[0]);
    }

    #[test]
    fn edit_outside_cone_preserves_key() {
        // Same structure except out1's gate flips OR -> XOR (a real
        // structural edit — the builder folds degenerate rewrites like
        // NOR(c, c) back to NOT(c)): faults in cone 0 keep their key,
        // faults in cone 1 change.
        let build = |second_xor: bool| {
            let mut b = NetlistBuilder::new(3);
            let a = b.input(0);
            let x = b.input(1);
            let c = b.input(2);
            let g0 = b.and(a, x);
            let g1 = if second_xor { b.xor(c, x) } else { b.or(c, x) };
            b.mark_output(g0);
            b.mark_output(g1);
            b.finish()
        };
        let n1 = build(false);
        let n2 = build(true);
        let faults = vec![Fault::new(NetId(0), true), Fault::new(NetId(2), true)];
        let k1 = cone_keys(&n1, &faults, FaultModel::PermanentStuckAt);
        let k2 = cone_keys(&n2, &faults, FaultModel::PermanentStuckAt);
        assert_eq!(k1[0], k2[0], "untouched cone key must survive the edit");
        assert_ne!(k1[1], k2[1], "edited cone key must change");
    }

    #[test]
    fn multibit_cluster_widens_the_cone() {
        let n = two_cone_netlist();
        let seed = Fault::new(NetId(2), true);
        let single = cone_keys(&n, &[seed], FaultModel::PermanentStuckAt);
        let cluster = cone_keys(&n, &[seed], FaultModel::MultiBitCluster { radius: 2 });
        assert_ne!(single[0], cluster[0], "cluster reaches more slots");
    }

    #[test]
    fn unreached_faults_share_the_empty_key() {
        // An input net feeding no output at all.
        let mut b = NetlistBuilder::new(2);
        let a = b.input(0);
        let _dangling = b.input(1);
        b.mark_output(a);
        let n = b.finish();
        let faults = vec![Fault::new(NetId(1), false), Fault::new(NetId(1), true)];
        let keys = cone_keys(&n, &faults, FaultModel::PermanentStuckAt);
        assert_eq!(keys[0], keys[1], "no reached slots: polarity is moot");
    }
}
