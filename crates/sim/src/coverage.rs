//! End-to-end verification of the bounded-latency detection guarantee.
//!
//! [`DetectabilityTable`](crate::detect::DetectabilityTable) coverage is
//! an *analytical* statement. This module checks it *operationally*:
//! inject a fault into the synthesized machine, drive input sequences,
//! emulate the Fig. 3 CED hardware (parity compactor + predictor +
//! comparator), and confirm the comparator fires within `p` cycles of
//! the first error. The integration tests use this to validate the
//! whole pipeline — the paper's actual promise.

use crate::detect::Semantics;
use crate::fault::Fault;
use crate::tables::TransitionTables;
use ced_fsm::encoded::FsmCircuit;
use rand_like::SplitMix64;

/// Outcome of one fault-injection run. The run resolves at the *first*
/// error activation — exactly the scope of the paper's guarantee
/// ("detected within p clock cycles" of the first error; later errors
/// may start from states outside the enumerated activation set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimOutcome {
    /// The fault never caused an error over the driven sequence.
    NoErrorObserved,
    /// The first error was flagged within the latency bound.
    DetectedInTime {
        /// Observed detection latency in cycles (1 = same cycle as the
        /// activation).
        latency: usize,
    },
    /// The first error went unflagged for a full latency window.
    Missed {
        /// Cycle index (0-based) of the activation that escaped.
        at_cycle: usize,
    },
}

/// Drives `steps` cycles of the faulty machine with inputs from a
/// deterministic pseudo-random stream (`seed`), emulating the parity
/// CED checker, and reports whether every error was caught within
/// `latency` cycles.
///
/// The `semantics` argument selects the checker being emulated:
///
/// * [`Semantics::FaultyTrajectory`] — the Fig. 3 hardware: the parity
///   comparison at a cycle uses the good and faulty responses from the
///   *current (actual) state register* contents;
/// * [`Semantics::Lockstep`] — an idealized checker with a golden
///   reference: the comparison uses the good machine's own trajectory,
///   matching the paper's fault-simulation view of the detectability
///   table.
///
/// # Panics
///
/// Panics if `latency == 0`.
pub fn simulate_fault_detection(
    circuit: &FsmCircuit,
    fault: Fault,
    masks: &[u64],
    latency: usize,
    steps: usize,
    seed: u64,
    semantics: Semantics,
) -> SimOutcome {
    assert!(latency >= 1, "latency bound must be at least 1");
    let good = TransitionTables::good(circuit);
    let bad = TransitionTables::faulty(circuit, fault);
    let r = circuit.num_inputs();
    let input_mask = if r >= 64 { u64::MAX } else { (1u64 << r) - 1 };

    let mut rng = SplitMix64::new(seed);
    let mut state = circuit.reset_code(); // faulty-trajectory (actual) state
    let mut reference = circuit.reset_code(); // good companion (lockstep)
                                              // First-activation window: Some((activation_cycle, deadline)).
    let mut window: Option<(usize, usize)> = None;

    for cycle in 0..steps {
        let input = rng.next_u64() & input_mask;
        let d = match semantics {
            Semantics::FaultyTrajectory => good.response(state, input) ^ bad.response(state, input),
            Semantics::Lockstep => good.response(reference, input) ^ bad.response(state, input),
        };
        let flagged = masks.iter().any(|&m| (m & d).count_ones() & 1 == 1);

        if d != 0 && window.is_none() {
            window = Some((cycle, cycle + latency - 1));
        }
        if let Some((start, deadline)) = window {
            if flagged {
                return SimOutcome::DetectedInTime {
                    latency: cycle - start + 1,
                };
            }
            if cycle >= deadline {
                return SimOutcome::Missed { at_cycle: start };
            }
        }
        reference = good.next(reference, input);
        state = bad.next(state, input);
    }
    // Either no error ever activated, or the run ended inside an open
    // window (guarantee neither met nor violated yet — count as no
    // observation).
    SimOutcome::NoErrorObserved
}

/// Fraction of faults in `faults` whose first error is detected within
/// `latency` under the given masks across `steps`-cycle random runs.
/// Untestable faults (no error observed) are excluded from the
/// denominator.
pub fn measured_coverage(
    circuit: &FsmCircuit,
    faults: &[Fault],
    masks: &[u64],
    latency: usize,
    steps: usize,
    seed: u64,
    semantics: Semantics,
) -> f64 {
    let mut testable = 0usize;
    let mut detected = 0usize;
    for (i, &f) in faults.iter().enumerate() {
        match simulate_fault_detection(
            circuit,
            f,
            masks,
            latency,
            steps,
            seed ^ (i as u64),
            semantics,
        ) {
            SimOutcome::NoErrorObserved => {}
            SimOutcome::DetectedInTime { .. } => {
                testable += 1;
                detected += 1;
            }
            SimOutcome::Missed { .. } => {
                testable += 1;
            }
        }
    }
    if testable == 0 {
        1.0
    } else {
        detected as f64 / testable as f64
    }
}

/// Outcome of a transient-fault run (see
/// [`simulate_transient_fault_detection`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientOutcome {
    /// The fault window never excited an error.
    NoErrorObserved,
    /// The error was flagged while detection was still possible.
    Detected {
        /// Cycles from activation to the comparator firing.
        latency: usize,
    },
    /// The error occurred but the fault vanished before any step of the
    /// latency window exposed it — the escape §2 predicts for faults
    /// shorter-lived than the bound (e.g. SEUs with p > 1).
    Escaped,
}

/// Drives the machine with `fault` present only for `persistence`
/// consecutive cycles (starting at `onset`), under the hardware
/// (faulty-trajectory) semantics, and reports whether the first error
/// was caught before the window closed undetected.
///
/// The paper's §2 assumption is `persistence ≥ latency`; this simulator
/// quantifies what happens when it is violated: with `persistence <
/// latency`, errors activated near the end of the fault window can
/// escape a latency-`p` checker that relies on later steps.
///
/// # Panics
///
/// Panics if `latency == 0` or `persistence == 0`.
#[allow(clippy::too_many_arguments)] // experiment knobs; a struct would obscure the sweep call sites
pub fn simulate_transient_fault_detection(
    circuit: &FsmCircuit,
    fault: Fault,
    masks: &[u64],
    latency: usize,
    onset: usize,
    persistence: usize,
    total_cycles: usize,
    seed: u64,
) -> TransientOutcome {
    assert!(latency >= 1, "latency bound must be at least 1");
    assert!(persistence >= 1, "persistence must be at least 1");
    let good = TransitionTables::good(circuit);
    let bad = TransitionTables::faulty(circuit, fault);
    let r = circuit.num_inputs();
    let input_mask = if r >= 64 { u64::MAX } else { (1u64 << r) - 1 };

    let mut rng = SplitMix64::new(seed);
    let mut state = circuit.reset_code();
    let mut window: Option<usize> = None; // activation cycle

    for cycle in 0..total_cycles {
        let input = rng.next_u64() & input_mask;
        let fault_active = cycle >= onset && cycle < onset + persistence;
        let active_tables = if fault_active { &bad } else { &good };
        // Hardware semantics: compare good vs actual response from the
        // actual present state. Once the fault vanishes, the responses
        // agree (the corrupted *state* persists, but the checker cannot
        // see it — exactly the §2 escape mechanism).
        let d = good.response(state, input) ^ active_tables.response(state, input);
        let flagged = masks.iter().any(|&m| (m & d).count_ones() & 1 == 1);

        if d != 0 && window.is_none() {
            window = Some(cycle);
        }
        if let Some(start) = window {
            if flagged {
                return TransientOutcome::Detected {
                    latency: cycle - start + 1,
                };
            }
            if cycle >= start + latency - 1 {
                return TransientOutcome::Escaped; // window exhausted
            }
            if !fault_active {
                // The fault is gone: from now on the actual circuit is
                // the good one, so d ≡ 0 and the comparator can never
                // fire again — the corrupted state escapes silently.
                return TransientOutcome::Escaped;
            }
        }
        state = active_tables.next(state, input);
    }
    TransientOutcome::NoErrorObserved
}

/// Minimal deterministic PRNG (SplitMix64) so that `ced-sim` does not
/// depend on `rand` at runtime; simulation streams must be reproducible
/// across the workspace.
mod rand_like {
    /// SplitMix64 generator.
    #[derive(Debug, Clone)]
    pub struct SplitMix64 {
        state: u64,
    }

    impl SplitMix64 {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> SplitMix64 {
            SplitMix64 { state: seed }
        }

        /// Next 64-bit value. (Named `next_u64`, not `next`, to avoid
        /// confusion with `Iterator::next`.)
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub use rand_like::SplitMix64 as SimRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{DetectOptions, DetectabilityTable};
    use crate::fault::collapsed_faults;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn circuit() -> FsmCircuit {
        let fsm = suite::serial_adder();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn full_singleton_monitor_detects_everything_at_p1() {
        let c = circuit();
        let masks: Vec<u64> = (0..c.total_bits()).map(|b| 1u64 << b).collect();
        let faults = collapsed_faults(c.netlist());
        for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
            for (i, &f) in faults.iter().enumerate() {
                let out = simulate_fault_detection(&c, f, &masks, 1, 500, 42 ^ i as u64, semantics);
                assert!(
                    !matches!(out, SimOutcome::Missed { .. }),
                    "fault {f} missed with full monitoring ({semantics:?})"
                );
            }
        }
    }

    #[test]
    fn no_masks_means_missed_for_testable_faults() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let mut missed_any = false;
        for (i, &f) in faults.iter().enumerate() {
            if let SimOutcome::Missed { .. } = simulate_fault_detection(
                &c,
                f,
                &[],
                1,
                500,
                7 ^ i as u64,
                Semantics::FaultyTrajectory,
            ) {
                missed_any = true;
            }
        }
        assert!(missed_any, "no testable fault missed without monitors?");
    }

    #[test]
    fn coverage_metric_bounds() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let full: Vec<u64> = (0..c.total_bits()).map(|b| 1u64 << b).collect();
        let s = Semantics::FaultyTrajectory;
        assert_eq!(measured_coverage(&c, &faults, &full, 1, 300, 1, s), 1.0);
        let none = measured_coverage(&c, &faults, &[], 1, 300, 1, s);
        assert!(none < 1.0);
    }

    #[test]
    fn analytic_coverage_implies_operational_coverage() {
        // Masks that cover the detectability table must never miss in a
        // simulation with matching semantics — the central soundness
        // property.
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
            for p in 1..=2 {
                let (table, _) = DetectabilityTable::build(
                    &c,
                    &faults,
                    &DetectOptions {
                        latency: p,
                        semantics,
                        ..DetectOptions::default()
                    },
                )
                .unwrap();
                // Use singleton masks — always covering.
                let masks: Vec<u64> = (0..c.total_bits()).map(|b| 1u64 << b).collect();
                assert!(table.all_covered(&masks));
                for (i, &f) in faults.iter().enumerate() {
                    let out =
                        simulate_fault_detection(&c, f, &masks, p, 400, 99 ^ i as u64, semantics);
                    assert!(
                        !matches!(out, SimOutcome::Missed { .. }),
                        "p={p} ({semantics:?}): covered fault {f} missed operationally"
                    );
                }
            }
        }
    }

    #[test]
    fn semantics_agree_at_latency_one() {
        // The two step-difference definitions coincide at p = 1: the
        // detectability tables must be identical.
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let build = |semantics| {
            DetectabilityTable::build(
                &c,
                &faults,
                &DetectOptions {
                    latency: 1,
                    semantics,
                    ..DetectOptions::default()
                },
            )
            .unwrap()
            .0
        };
        assert_eq!(
            build(Semantics::Lockstep),
            build(Semantics::FaultyTrajectory)
        );
    }

    #[test]
    fn transient_long_persistence_behaves_like_permanent() {
        // With persistence covering the whole run, singleton monitors at
        // p = 1 must detect (or observe nothing), never escape.
        let c = circuit();
        let masks: Vec<u64> = (0..c.total_bits()).map(|b| 1u64 << b).collect();
        let faults = collapsed_faults(c.netlist());
        for (i, &f) in faults.iter().enumerate() {
            let out =
                simulate_transient_fault_detection(&c, f, &masks, 1, 0, 10_000, 600, 21 ^ i as u64);
            assert_ne!(
                out,
                TransientOutcome::Escaped,
                "{f}: escaped despite full persistence and p = 1"
            );
        }
    }

    #[test]
    fn transient_short_persistence_can_escape_latency_two() {
        // A checker relying on latency 2 (masks chosen to miss some
        // first-step diffs) can be escaped by 1-cycle faults — the §2
        // SEU caveat. We only require that escapes are *possible*, so
        // scan onsets until one shows, with an empty mask set (relies
        // entirely on later steps, which never come).
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let mut escaped = 0usize;
        for (i, &f) in faults.iter().enumerate() {
            for onset in 0..20 {
                if simulate_transient_fault_detection(&c, f, &[], 2, onset, 1, 200, 77 ^ i as u64)
                    == TransientOutcome::Escaped
                {
                    escaped += 1;
                    break;
                }
            }
        }
        assert!(escaped > 0, "no single-cycle fault ever escaped?");
    }

    #[test]
    fn transient_detection_latency_within_bound() {
        let c = circuit();
        let masks: Vec<u64> = (0..c.total_bits()).map(|b| 1u64 << b).collect();
        let f = collapsed_faults(c.netlist())[0];
        for onset in [0usize, 3, 9] {
            if let TransientOutcome::Detected { latency } =
                simulate_transient_fault_detection(&c, f, &masks, 2, onset, 50, 300, 5)
            {
                assert!((1..=2).contains(&latency));
            }
        }
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
