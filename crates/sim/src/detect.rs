//! Erroneous-case enumeration and the error-detectability table
//! (the paper's Fig. 2 / tensor `V`).
//!
//! # Semantics (DESIGN.md §5)
//!
//! The paper leaves one point underspecified, and the two readings
//! genuinely differ for latency `p ≥ 2`; both are implemented
//! ([`Semantics`]):
//!
//! * [`Semantics::Lockstep`] — **the paper's construction.** The
//!   difference at step `k` is `GM(A,c)ₖ ⊕ BM_f(A,c)ₖ`: the good and
//!   faulty machines run from the common start `c` on the same input
//!   path, each following its own trajectory — exactly what a standard
//!   fault simulator reports, and the literal reading of the paper's
//!   §3. Once the state diverges, differences keep manifesting, which
//!   is where most of the latency benefit in Table 1 comes from.
//! * [`Semantics::FaultyTrajectory`] — **what the Fig. 3 hardware
//!   observes.** The predictor is combinational logic fed by the input
//!   and the *actual* (`s`-bit, possibly corrupted) state register, so
//!   detection at step `k` compares good and faulty responses **from
//!   the same present state** along the faulty trajectory. This is the
//!   physically realizable condition and the one the end-to-end
//!   fault-injection checker ([`crate::coverage`]) can certify.
//!
//! At `p = 1` the two coincide. For `p ≥ 2` a lockstep-verified cover
//! may miss errors on the real hardware (the reproduction surfaces
//! this soundness gap; see EXPERIMENTS.md).
//!
//! For a fault `f`, an erroneous case starts at a good-reachable state
//! `c` and an input `a₁` whose faulty response differs from the good
//! one (`D₁ ≠ 0`; before the first error the trajectory is error-free,
//! hence good-reachable). The row records the per-step difference masks
//! `D₁..D_p` along every input path of length `p`. A branch terminates
//! early when the trajectory revisits a state (pair) already on the
//! path (paper §2's loop rule) — the remaining steps are recorded as
//! all-zero, forcing detection within the prefix. Identical rows are
//! merged (`F = ∪ EC`), both within and across faults.

use crate::fault::{Fault, FaultModel};
use crate::tables::TransitionTables;
use ced_fsm::encoded::FsmCircuit;
use ced_par::ParExec;
use ced_runtime::{
    fnv1a64, Budget, ByteReader, ByteWriter, CheckpointError, InterruptKind, Interrupted,
};
use ced_store::{CoverageMatrix, Store, TENSOR_COMP_STAGE, TENSOR_FRAG_STAGE};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// One erroneous case: the `n`-bit difference mask at each of the `p`
/// latency steps (`V(i, :, k)` as a bitmask per `k`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EcRow {
    /// `steps[k]` = mask of bits that detect this case at latency `k+1`.
    pub steps: Vec<u64>,
}

impl EcRow {
    /// True iff a parity tree over the bits of `mask` detects this case:
    /// some step has an odd number of discrepant bits inside the mask.
    #[inline]
    pub fn detected_by(&self, mask: u64) -> bool {
        self.steps.iter().any(|&d| (d & mask).count_ones() & 1 == 1)
    }

    /// The union of discrepant bits across all steps.
    pub fn any_step_union(&self) -> u64 {
        self.steps.iter().fold(0, |a, &d| a | d)
    }
}

/// The error-detectability table for one circuit, fault model and
/// latency bound: the paper's `V ∈ {0,1}^{m×n×p}` stored as deduplicated
/// rows of step masks.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectabilityTable {
    num_bits: usize,
    latency: usize,
    /// True when rows are canonical minimal step-sets (dominance
    /// reduced) rather than temporally ordered erroneous cases.
    reduced: bool,
    rows: Vec<EcRow>,
}

/// Accumulates enumerated rows, optionally maintaining the dominance-
/// reduced (minimal step-set) form online. Enumeration consults
/// [`Collector::prefix_dominated`] to prune whole branches whose
/// eventual rows are already implied.
struct Collector {
    latency: usize,
    reduce: bool,
    max_rows: usize,
    /// Canonical sets (reduce) or raw ordered rows (!reduce).
    sets: CoverageMatrix,
    emitted: usize,
    cleanup_at: usize,
    overflow: bool,
}

impl Collector {
    fn new(latency: usize, reduce: bool, max_rows: usize) -> Collector {
        Collector {
            latency,
            reduce,
            max_rows,
            sets: CoverageMatrix::new(),
            emitted: 0,
            cleanup_at: 4096,
            overflow: false,
        }
    }

    /// Branch pruning hook: a DFS prefix whose canonical set is already
    /// dominated can only produce dominated rows.
    fn prefix_dominated(&self, prefix: &[u64]) -> bool {
        self.reduce && self.sets.dominated(&CoverageMatrix::canonical(prefix))
    }

    /// Records one complete row (length = latency, zero-padded).
    fn insert(&mut self, row: &[u64]) {
        self.emitted += 1;
        if self.reduce {
            if !self.sets.insert_minimal(CoverageMatrix::canonical(row)) {
                return;
            }
            if self.sets.len() >= self.cleanup_at {
                self.sets.remove_supersets();
                self.cleanup_at = (self.sets.len() * 2).max(4096);
            }
        } else {
            self.sets.insert_raw(row.to_vec());
        }
        if self.sets.len() > self.max_rows {
            if self.reduce {
                self.sets.remove_supersets();
                self.cleanup_at = (self.sets.len() * 2).max(4096);
            }
            if self.sets.len() > self.max_rows {
                self.overflow = true;
            }
        }
    }

    fn overflowed(&self) -> bool {
        self.overflow
    }

    fn emitted(&self) -> usize {
        self.emitted
    }

    /// Drains the collector into its canonical kept rows — the payload
    /// of a per-fault tensor fragment. In reduce mode these are the
    /// fault's minimal step-sets; otherwise its deduplicated raw rows.
    /// Sorted, so fragment bytes are deterministic.
    fn into_fragment_rows(mut self) -> Vec<Vec<u64>> {
        if self.reduce {
            self.sets.remove_supersets();
        }
        self.sets.into_sorted_sets()
    }

    /// Replays a fragment's kept rows (already canonical/full-length)
    /// and its emitted count into this collector. Equivalent to having
    /// enumerated the fault inline: the per-fault collector already
    /// counted emissions and canonicalized, so only the cross-fault
    /// pruning and overflow bookkeeping happen here.
    fn absorb(&mut self, rows: &[Vec<u64>], emitted: usize) {
        self.emitted += emitted;
        for row in rows {
            if self.reduce {
                if !self.sets.insert_minimal(row.clone()) {
                    continue;
                }
                if self.sets.len() >= self.cleanup_at {
                    self.sets.remove_supersets();
                    self.cleanup_at = (self.sets.len() * 2).max(4096);
                }
            } else {
                self.sets.insert_raw(row.clone());
            }
            if self.sets.len() > self.max_rows {
                if self.reduce {
                    self.sets.remove_supersets();
                    self.cleanup_at = (self.sets.len() * 2).max(4096);
                }
                if self.sets.len() > self.max_rows {
                    self.overflow = true;
                }
            }
        }
    }

    /// Captures the collector at a clean fault boundary. Sets are
    /// sorted so the snapshot (and hence the checkpoint bytes) are
    /// independent of hash iteration order.
    fn snapshot(&self) -> CollectorState {
        debug_assert!(!self.overflow, "snapshot of an overflowed collector");
        CollectorState {
            sets: self.sets.sorted_sets(),
            emitted: self.emitted,
            cleanup_at: self.cleanup_at,
        }
    }

    /// Rebuilds a collector from a snapshot.
    fn restore(latency: usize, reduce: bool, max_rows: usize, state: &CollectorState) -> Collector {
        Collector {
            latency,
            reduce,
            max_rows,
            sets: CoverageMatrix::from_sets(state.sets.iter().cloned()),
            emitted: state.emitted,
            cleanup_at: state.cleanup_at,
            overflow: false,
        }
    }

    /// Final rows: cleaned up, canonical, sorted, zero-padded.
    fn finish(mut self) -> Vec<EcRow> {
        if self.reduce {
            self.sets.remove_supersets();
        }
        let latency = self.latency;
        let mut rows: Vec<EcRow> = self
            .sets
            .into_sorted_sets()
            .into_iter()
            .map(|mut steps| {
                steps.resize(latency, 0);
                EcRow { steps }
            })
            .collect();
        rows.sort_by(|a, b| a.steps.cmp(&b.steps));
        rows
    }
}

/// Aggregate statistics from table construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectStats {
    /// Faults simulated.
    pub faults: usize,
    /// Faults that never cause any error from a reachable state
    /// (functionally redundant — no detection obligation).
    pub untestable_faults: usize,
    /// Error activations (state × input pairs with `D₁ ≠ 0`), summed
    /// over faults.
    pub activations: usize,
    /// Rows emitted by enumeration before cross-fault deduplication.
    /// Counted per fault — the enumeration prunes each fault against
    /// its own rows only — so the count is independent of store warmth
    /// and fragment reuse.
    pub rows_raw: usize,
    /// Rows in the final table.
    pub rows: usize,
}

impl DetectStats {
    /// Serializes into a checkpoint writer.
    pub fn write(&self, w: &mut ByteWriter) {
        w.usize(self.faults);
        w.usize(self.untestable_faults);
        w.usize(self.activations);
        w.usize(self.rows_raw);
        w.usize(self.rows);
    }

    /// Deserializes from a checkpoint reader.
    pub fn read(r: &mut ByteReader<'_>) -> Result<DetectStats, CheckpointError> {
        Ok(DetectStats {
            faults: r.usize()?,
            untestable_faults: r.usize()?,
            activations: r.usize()?,
            rows_raw: r.usize()?,
            rows: r.usize()?,
        })
    }
}

/// Which step-difference definition to enumerate (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Semantics {
    /// The paper's fault-simulation view: good and faulty machines run
    /// in lockstep from the activation state, each on its own
    /// trajectory. Default, for Table-1 fidelity.
    #[default]
    Lockstep,
    /// The Fig. 3 hardware's view: differences are taken from the same
    /// (actual, faulty-trajectory) present state. Physically
    /// realizable; operationally certifiable.
    FaultyTrajectory,
}

/// Which inputs the erroneous-case enumeration explores at each state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum InputModel {
    /// Every input minterm (`2^r` per state). Exact, and required for
    /// the operational guarantee under arbitrary input streams, but
    /// infeasible for wide-input machines at `p ≥ 2`.
    #[default]
    Exhaustive,
    /// One representative input per STG transition cube of each state —
    /// the paper's granularity ("… for every transition in the FSM",
    /// §1) and what made the 2004 experiments tractable. An
    /// under-approximation of the exhaustive table.
    Restricted {
        /// `by_state[code]` = representative inputs of that state
        /// (empty entries use `fallback`).
        by_state: Vec<Vec<u64>>,
        /// Inputs used at codes with no symbolic state (e.g. invalid
        /// codes a faulty machine wanders into).
        fallback: Vec<u64>,
    },
}

impl InputModel {
    /// The inputs to explore from (good-trajectory) state `code`.
    ///
    /// Public so independent re-verifiers (the `ced-cert` crate's BFS
    /// product-machine check) can walk exactly the input universe the
    /// enumeration claimed to cover, without reimplementing the
    /// fallback rule.
    pub fn inputs_at(&self, code: u64, r: usize, scratch: &mut Vec<u64>) {
        scratch.clear();
        match self {
            InputModel::Exhaustive => scratch.extend(0..(1u64 << r)),
            InputModel::Restricted { by_state, fallback } => {
                let entry = by_state.get(code as usize).filter(|v| !v.is_empty());
                match entry {
                    Some(v) => scratch.extend_from_slice(v),
                    None => scratch.extend_from_slice(fallback),
                }
            }
        }
    }
}

/// Construction options.
#[derive(Debug, Clone)]
pub struct DetectOptions {
    /// The latency bound `p ≥ 1`.
    pub latency: usize,
    /// Hard cap on deduplicated rows; construction aborts beyond it.
    pub max_rows: usize,
    /// Step-difference semantics.
    pub semantics: Semantics,
    /// Input exploration granularity.
    pub input_model: InputModel,
    /// Apply dominance reduction *online* (default): the built table
    /// contains only minimal step-sets, and dominated enumeration
    /// branches are pruned — indispensable for large circuits, and
    /// exactly equivalent for every covering question. Disable to
    /// obtain the literal Fig. 2 table (all deduplicated erroneous
    /// cases, temporal step order preserved); only unreduced tables
    /// support [`DetectabilityTable::truncated`].
    pub reduce: bool,
    /// Temporal/spatial fault model the enumeration assumes. The
    /// default, [`FaultModel::PermanentStuckAt`], is byte-identical to
    /// the pre-model pipeline (tables, stats, fingerprints and store
    /// keys unchanged). Non-permanent models switch the faulty machine
    /// between faulty and fault-free transition tables per activation
    /// step ([`FaultModel::active_at`]), and
    /// [`FaultModel::MultiBitCluster`] injects the whole spatial
    /// cluster seeded at each listed fault.
    pub fault_model: FaultModel,
}

impl Default for DetectOptions {
    fn default() -> DetectOptions {
        DetectOptions {
            latency: 1,
            max_rows: 2_000_000,
            semantics: Semantics::default(),
            input_model: InputModel::default(),
            reduce: true,
            fault_model: FaultModel::default(),
        }
    }
}

/// Construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectError {
    /// More deduplicated rows than `max_rows`.
    TooManyRows {
        /// The configured cap that was exceeded.
        limit: usize,
    },
    /// Latency must be at least 1.
    ZeroLatency,
    /// The tensor volume `i·j·k` (`max_rows · bits · latency`) does not
    /// fit in `usize`: the enumeration would abort on allocation long
    /// before filling it, so it is rejected up front as a typed error.
    TensorTooLarge {
        /// The row cap `i` (`m ≤ max_rows`).
        rows: usize,
        /// Monitored bits `j` (`n`).
        bits: usize,
        /// The latency bound `k` (`p`).
        latency: usize,
    },
    /// The build's [`Budget`] was exhausted or its token cancelled.
    Interrupted {
        /// What tripped, and how far the build had got.
        interrupted: Interrupted,
        /// A clean fault-boundary checkpoint to resume from. `None`
        /// when the interrupt landed mid-enumeration (the collectors
        /// hold partial rows for the current fault, which cannot be
        /// rolled back without breaking `rows_raw` exactness).
        checkpoint: Option<Box<BuildCheckpoint>>,
    },
    /// A resume checkpoint was built from different inputs (circuit,
    /// fault list, options or latency bounds).
    CheckpointMismatch,
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::TooManyRows { limit } => {
                write!(f, "detectability table exceeds {limit} rows")
            }
            DetectError::ZeroLatency => write!(f, "latency bound must be at least 1"),
            DetectError::TensorTooLarge {
                rows,
                bits,
                latency,
            } => write!(
                f,
                "detectability tensor volume {rows}·{bits}·{latency} overflows \
                 the address space"
            ),
            DetectError::Interrupted {
                interrupted,
                checkpoint,
            } => {
                write!(f, "tensor construction {interrupted}")?;
                if let Some(c) = checkpoint {
                    write!(f, " (checkpoint at fault {})", c.next_fault())?;
                }
                Ok(())
            }
            DetectError::CheckpointMismatch => write!(
                f,
                "resume checkpoint does not match this circuit/fault list/options"
            ),
        }
    }
}

impl std::error::Error for DetectError {}

/// Saved state of one [`Collector`] at a clean fault boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CollectorState {
    /// Kept sets/rows, sorted for canonical serialization.
    sets: Vec<Vec<u64>>,
    emitted: usize,
    cleanup_at: usize,
}

/// Resumable state of an interrupted [`DetectabilityTable::build_many_controlled`]
/// run, captured at a fault boundary: the next fault index plus the
/// exact collector and statistics state for every latency bound.
/// Resuming replays the remaining faults as if never interrupted, so
/// the finished tables and stats are bit-identical to an uninterrupted
/// build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildCheckpoint {
    /// FNV fingerprint of (good tables, fault list, options,
    /// latencies); a resume against different inputs is rejected.
    fingerprint: u64,
    /// Index of the first fault not yet simulated.
    next_fault: usize,
    latencies: Vec<usize>,
    collectors: Vec<CollectorState>,
    stats: Vec<DetectStats>,
}

impl BuildCheckpoint {
    /// The input fingerprint this checkpoint binds to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Index of the first fault a resumed build will simulate.
    pub fn next_fault(&self) -> usize {
        self.next_fault
    }

    /// Serializes to the checkpoint payload format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.write(&mut w);
        w.finish()
    }

    /// Serializes into an existing writer (for embedding in larger
    /// checkpoints).
    pub fn write(&self, w: &mut ByteWriter) {
        w.u64(self.fingerprint);
        w.usize(self.next_fault);
        w.usize(self.latencies.len());
        for &p in &self.latencies {
            w.usize(p);
        }
        for c in &self.collectors {
            w.usize(c.sets.len());
            for s in &c.sets {
                w.u64_slice(s);
            }
            w.usize(c.emitted);
            w.usize(c.cleanup_at);
        }
        for s in &self.stats {
            s.write(w);
        }
    }

    /// Deserializes a payload produced by [`BuildCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<BuildCheckpoint, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let ckpt = Self::read(&mut r)?;
        r.expect_end()?;
        Ok(ckpt)
    }

    /// Deserializes from an existing reader.
    pub fn read(r: &mut ByteReader<'_>) -> Result<BuildCheckpoint, CheckpointError> {
        let fingerprint = r.u64()?;
        let next_fault = r.usize()?;
        let n_lat = r.usize()?;
        if n_lat > 4096 {
            return Err(CheckpointError::Corrupt("implausible latency count".into()));
        }
        let mut latencies = Vec::with_capacity(n_lat);
        for _ in 0..n_lat {
            latencies.push(r.usize()?);
        }
        let mut collectors = Vec::with_capacity(n_lat);
        for _ in 0..n_lat {
            let n_sets = r.usize()?;
            let mut sets = Vec::new();
            for _ in 0..n_sets {
                sets.push(r.u64_slice()?);
            }
            let emitted = r.usize()?;
            let cleanup_at = r.usize()?;
            collectors.push(CollectorState {
                sets,
                emitted,
                cleanup_at,
            });
        }
        let mut stats = Vec::with_capacity(n_lat);
        for _ in 0..n_lat {
            stats.push(DetectStats::read(r)?);
        }
        Ok(BuildCheckpoint {
            fingerprint,
            next_fault,
            latencies,
            collectors,
            stats,
        })
    }
}

/// Budget, resume state and checkpoint hooks for a controlled build.
pub struct BuildControl<'a> {
    /// The budget charged as faults are simulated (one tick per
    /// evaluation batch and per error activation).
    pub budget: &'a Budget,
    /// Resume from a previous run's checkpoint.
    pub resume: Option<BuildCheckpoint>,
    /// Invoke `on_checkpoint` every this many completed faults
    /// (0 = never).
    pub checkpoint_every: usize,
    /// Periodic checkpoint sink (e.g. write-to-disk).
    pub on_checkpoint: Option<&'a mut dyn FnMut(&BuildCheckpoint)>,
    /// Worker pool for the per-fault transition-table extraction
    /// (`None` or one job = the strictly serial path). Only the
    /// extraction parallelizes: the enumeration's dominance pruning is
    /// stateful across faults (`rows_raw` observes its order), so the
    /// enumeration always runs in fault order and the build's tables,
    /// stats and checkpoints are byte-identical at every job count.
    pub pool: Option<&'a ParExec>,
    /// Artifact store for the tensor stage, at two granularities:
    /// whole-table `(table, stats)` artifacts under [`TENSOR_STAGE`],
    /// and per-fault-cone fragments under
    /// [`ced_store::TENSOR_FRAG_STAGE`] with composition digests under
    /// [`ced_store::TENSOR_COMP_STAGE`]. Each requested latency is
    /// keyed independently, so a prior p-sweep serves any subset of
    /// its bounds; because the enumeration is deterministic, a hit —
    /// whole table or composed from fragments — is byte-identical to
    /// a rebuild.
    pub store: Option<&'a Store>,
    /// Baseline seed for cross-machine fragment promotion: lets a
    /// store-backed build of an *edited* machine reuse the unedited
    /// baseline's fragments for every fault whose cone (and delta
    /// footprint) the edit does not touch. Set by the pipeline's
    /// machine-diff front-end; `None` leaves builds unaffected.
    pub delta: Option<DeltaSeed>,
}

impl<'a> BuildControl<'a> {
    /// A control with the given budget and no resume/checkpoint hooks.
    pub fn new(budget: &'a Budget) -> BuildControl<'a> {
        BuildControl {
            budget,
            resume: None,
            checkpoint_every: 0,
            on_checkpoint: None,
            pool: None,
            store: None,
            delta: None,
        }
    }
}

/// Baseline seed for cross-machine fragment promotion (the
/// edit→re-diagnose loop; DESIGN.md §16). Produced by the pipeline's
/// machine-diff front-end after verifying the preconditions that make
/// promotion sound: identical interface dims and reset code, a
/// byte-identical input model, and next-state maps that agree at
/// *every* code. Under those, a baseline fragment transfers to the
/// edited machine whenever its cone key matches and its footprint
/// avoids every changed code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSeed {
    /// The baseline machine's [`fragment_context_bytes`].
    pub old_context: Vec<u8>,
    /// Codes whose good response row differs between the baseline and
    /// the edited machine, sorted ascending.
    pub changed_codes: Vec<u64>,
}

/// Store stage name for per-latency whole-table `(table, stats)`
/// tensor artifacts. Per-fault fragments and whole-table composition
/// digests live under [`ced_store::TENSOR_FRAG_STAGE`] and
/// [`ced_store::TENSOR_COMP_STAGE`].
pub const TENSOR_STAGE: &str = "tensor";

impl DetectabilityTable {
    /// Builds the table for `circuit` under `faults` with the given
    /// options.
    ///
    /// # Errors
    ///
    /// [`DetectError::ZeroLatency`] for `latency == 0`;
    /// [`DetectError::TooManyRows`] if the deduplicated row count
    /// exceeds the cap.
    pub fn build(
        circuit: &FsmCircuit,
        faults: &[Fault],
        options: &DetectOptions,
    ) -> Result<(DetectabilityTable, DetectStats), DetectError> {
        let mut results = Self::build_many(circuit, faults, options, &[options.latency])?;
        Ok(results.pop().expect("one latency requested"))
    }

    /// Builds tables for several latency bounds in one pass, sharing the
    /// expensive per-fault table extraction (the dominant cost on large
    /// circuits). Results are identical to separate [`Self::build`]
    /// calls with `options.latency` replaced by each bound.
    ///
    /// # Errors
    ///
    /// As [`Self::build`]; the row cap applies to each bound's table
    /// independently.
    pub fn build_many(
        circuit: &FsmCircuit,
        faults: &[Fault],
        options: &DetectOptions,
        latencies: &[usize],
    ) -> Result<Vec<(DetectabilityTable, DetectStats)>, DetectError> {
        let budget = Budget::unlimited();
        Self::build_many_controlled(
            circuit,
            faults,
            options,
            latencies,
            BuildControl::new(&budget),
        )
    }

    /// [`Self::build_many`] under a [`Budget`], with optional resume
    /// from and periodic emission of [`BuildCheckpoint`]s.
    ///
    /// The budget is checked at every fault boundary and once per
    /// activation state; one tick is charged per 64-pattern evaluation
    /// batch and per error activation, and the row storage estimate is
    /// charged as bytes. An interrupt at a fault boundary returns
    /// [`DetectError::Interrupted`] carrying a resumable checkpoint;
    /// an interrupt mid-fault (only cancellation and deadline checks
    /// land there) carries none — resume from the last periodic one.
    ///
    /// # Errors
    ///
    /// As [`Self::build_many`], plus [`DetectError::Interrupted`] and
    /// [`DetectError::CheckpointMismatch`] (resume checkpoint built
    /// from different inputs).
    pub fn build_many_controlled(
        circuit: &FsmCircuit,
        faults: &[Fault],
        options: &DetectOptions,
        latencies: &[usize],
        mut control: BuildControl<'_>,
    ) -> Result<Vec<(DetectabilityTable, DetectStats)>, DetectError> {
        if latencies.contains(&0) {
            return Err(DetectError::ZeroLatency);
        }
        let n = circuit.total_bits();
        // Checked i·j·k dims: a pathological latency bound (or row cap)
        // whose tensor volume overflows usize must fail as a typed
        // error, not abort inside an allocator call partway through the
        // enumeration (each row alone is `p` words).
        for &p in latencies {
            options
                .max_rows
                .max(1)
                .checked_mul(n.max(1))
                .and_then(|v| v.checked_mul(p))
                .and_then(|v| v.checked_mul(std::mem::size_of::<u64>()))
                .ok_or(DetectError::TensorTooLarge {
                    rows: options.max_rows,
                    bits: n,
                    latency: p,
                })?;
        }
        let good = TransitionTables::good(circuit);
        let base_bytes = fingerprint_base_bytes(&good, faults, options);
        let fingerprint = build_fingerprint_from_base(&base_bytes, latencies);
        let tensor_fps: Vec<u64> = latencies
            .iter()
            .map(|&p| tensor_fingerprint(&base_bytes, p))
            .collect();
        let delta = control.delta.take();

        // Tensor stage replay: each latency's (table, stats) pair is a
        // pure function of (good tables, faults, options-sans-latency,
        // p), so a prior build at any superset of bounds serves this
        // request. All requested bounds must hit — the enumeration
        // below computes every bound jointly in one pass over faults,
        // so a partial hit saves nothing. Delta-seeded builds skip the
        // whole-table probe and go fragments-first: promotion is what
        // publishes the edited machine's fragments, and the fragment
        // counters are the observable evidence of reuse.
        if delta.is_none() {
            if let Some(store) = control.store {
                let mut cached = Vec::with_capacity(latencies.len());
                for (&p, &fp) in latencies.iter().zip(&tensor_fps) {
                    let hit = store.get_typed(TENSOR_STAGE, fp, |bytes| {
                        let mut r = ByteReader::new(bytes);
                        let table = DetectabilityTable::read(&mut r)?;
                        let st = DetectStats::read(&mut r)?;
                        r.expect_end()?;
                        if table.latency != p
                            || table.num_bits != n
                            || table.reduced != options.reduce
                        {
                            return Err(CheckpointError::Corrupt(
                                "tensor artifact does not match the request".into(),
                            ));
                        }
                        Ok((table, st))
                    });
                    match hit {
                        Some(pair) => cached.push(pair),
                        None => {
                            cached.clear();
                            break;
                        }
                    }
                }
                if cached.len() == latencies.len() {
                    return Ok(cached);
                }
            }
        }

        // Per-fault fragment machinery, engaged whenever a store can
        // serve or receive fragments: the context bytes every fragment
        // key shares, each fault's cone key, and the optional
        // cross-machine promotion seed.
        let frag = control.store.map(|_| FragContext {
            context: fragment_context_bytes(&good, options),
            cone_keys: crate::cone::cone_keys(circuit.netlist(), faults, options.fault_model),
            delta,
        });

        match Self::enumerate_faults(
            circuit,
            faults,
            options,
            latencies,
            &good,
            fingerprint,
            &tensor_fps,
            frag.as_ref(),
            &mut control,
            true,
        )? {
            FragmentOutcome::Done(results) => Ok(results),
            FragmentOutcome::CompositionMismatch => {
                // Some stored artifact was corrupt in a way only the
                // whole-table digest could catch. Every implicated key
                // has been dropped (corruption degrades to a miss);
                // rebuild monolithically and re-publish.
                match Self::enumerate_faults(
                    circuit,
                    faults,
                    options,
                    latencies,
                    &good,
                    fingerprint,
                    &tensor_fps,
                    frag.as_ref(),
                    &mut control,
                    false,
                )? {
                    FragmentOutcome::Done(results) => Ok(results),
                    FragmentOutcome::CompositionMismatch => unreachable!(
                        "a build without fragment reads treats its own digest as authoritative"
                    ),
                }
            }
        }
    }

    /// One enumeration pass over the fault list: probes stored
    /// per-fault fragments (when `read_fragments` and a store is
    /// attached), enumerates the rest, absorbs everything in fault
    /// order, and verifies each composed table against its recorded
    /// digest. Returns [`FragmentOutcome::CompositionMismatch`] when a
    /// composed table disagrees with a recorded digest; the caller
    /// retries without fragment reads once the implicated keys are
    /// dropped.
    #[allow(clippy::too_many_arguments)]
    fn enumerate_faults(
        circuit: &FsmCircuit,
        faults: &[Fault],
        options: &DetectOptions,
        latencies: &[usize],
        good: &TransitionTables,
        fingerprint: u64,
        tensor_fps: &[u64],
        frag: Option<&FragContext>,
        control: &mut BuildControl<'_>,
        read_fragments: bool,
    ) -> Result<FragmentOutcome, DetectError> {
        let r = circuit.num_inputs();
        let n = circuit.total_bits();
        let np = latencies.len();
        let activation_states = good.reachable_codes();
        let mut stats: Vec<DetectStats> = latencies
            .iter()
            .map(|_| DetectStats {
                faults: faults.len(),
                ..DetectStats::default()
            })
            .collect();
        let mut collectors: Vec<Collector> = latencies
            .iter()
            .map(|&p| Collector::new(p, options.reduce, options.max_rows))
            .collect();
        let mut start_fault = 0usize;
        if let Some(ckpt) = control.resume.take() {
            if ckpt.fingerprint != fingerprint
                || ckpt.latencies != latencies
                || ckpt.collectors.len() != latencies.len()
                || ckpt.stats.len() != latencies.len()
                || ckpt.next_fault > faults.len()
            {
                return Err(DetectError::CheckpointMismatch);
            }
            start_fault = ckpt.next_fault;
            stats = ckpt.stats;
            collectors = latencies
                .iter()
                .zip(&ckpt.collectors)
                .map(|(&p, st)| Collector::restore(p, options.reduce, options.max_rows, st))
                .collect();
        }
        let budget = control.budget;
        let snapshot =
            |next_fault: usize, collectors: &[Collector], stats: &[DetectStats]| BuildCheckpoint {
                fingerprint,
                next_fault,
                latencies: latencies.to_vec(),
                collectors: collectors.iter().map(Collector::snapshot).collect(),
                stats: stats.to_vec(),
            };

        // Fragment probe, before the fault loop: decide which faults
        // can be served (entirely or per-bound) from stored fragments.
        // Resolving this up front keeps the extraction prefetch
        // aligned — the pool window must contain exactly the faults
        // that will be enumerated, in order — and is what lets a
        // delta-seeded warm build skip extraction for clean cones.
        let mut fragments: Vec<Vec<Option<TensorFragment>>> =
            faults.iter().map(|_| Vec::new()).collect();
        let mut needs_build = vec![true; faults.len()];
        let mut absorbed_keys: Vec<u64> = Vec::new();
        if read_fragments {
            if let (Some(store), Some(fc)) = (control.store, frag) {
                for fi in start_fault..faults.len() {
                    let cone_key = fc.cone_keys[fi];
                    let mut hits: Vec<Option<TensorFragment>> = Vec::with_capacity(np);
                    for &p in latencies {
                        let key = fragment_fingerprint(&fc.context, cone_key, p);
                        let mut hit = store.get_typed(TENSOR_FRAG_STAGE, key, |bytes| {
                            TensorFragment::from_bytes(bytes, p, options.reduce)
                        });
                        if hit.is_none() {
                            if let Some(seed) = &fc.delta {
                                hit =
                                    promote_fragment(store, seed, cone_key, p, options.reduce, key);
                            }
                        }
                        if hit.is_some() {
                            absorbed_keys.push(key);
                        }
                        hits.push(hit);
                    }
                    needs_build[fi] = hits.iter().any(Option::is_none);
                    fragments[fi] = hits;
                }
            }
        }

        // Parallel extraction prefetch: the per-fault transition-table
        // extraction is pure and dominates large builds, so the pool
        // extracts a bounded window of upcoming faults ahead of the
        // enumeration. The enumeration below must stay in fault order
        // — fragments absorb into the shared collectors at fault
        // boundaries and `rows_raw` observes that order — so it
        // consumes the prefetched tables strictly in order and every
        // output (tables, stats, checkpoints) is byte-identical to the
        // serial run. The window bounds memory to ~2·jobs tables.
        let pool = control.pool.filter(|p| p.jobs() > 1);
        let window = pool.map_or(1, |p| p.jobs() * 2);
        let mut prefetched: VecDeque<TransitionTables> = VecDeque::new();

        let mut inputs_scratch: Vec<u64> = Vec::new();
        let mut seen_starts: Vec<HashSet<(u64, u64, u64, u64)>> =
            latencies.iter().map(|_| HashSet::new()).collect();
        // Time-varying models need the phase-aware enumerators; the
        // time-invariant ones (permanent, multi-bit) keep the original
        // code path so the permanent default stays byte-identical.
        // Activation steps are 1-indexed and step 1 is active under
        // every model, so the first-step difference `d1` below is
        // always taken from the faulty tables.
        let timed = !options.fault_model.time_invariant();
        for (fi, &fault) in faults.iter().enumerate().skip(start_fault) {
            // Clean fault boundary: the collectors hold exactly the
            // rows of faults `0..fi`, so a checkpoint here resumes
            // bit-identically.
            if control.checkpoint_every > 0
                && fi > start_fault
                && fi % control.checkpoint_every == 0
            {
                if let Some(sink) = control.on_checkpoint.as_mut() {
                    sink(&snapshot(fi, &collectors, &stats));
                }
            }
            if let Err(mut interrupted) = budget.check("tensor:fault-boundary") {
                interrupted.resumable = true;
                return Err(DetectError::Interrupted {
                    interrupted,
                    checkpoint: Some(Box::new(snapshot(fi, &collectors, &stats))),
                });
            }
            let mut resolved = std::mem::take(&mut fragments[fi]);
            if resolved.is_empty() {
                resolved.resize_with(np, || None);
            }
            if needs_build[fi] {
                // Per-model extraction: a multi-bit cluster injects every
                // net the model expands the seed to; every other model
                // injects the seed alone (time variation lives in the
                // enumeration, not in the tables).
                let extract = |f: Fault| match options.fault_model {
                    FaultModel::MultiBitCluster { .. } => TransitionTables::faulty_set_budgeted(
                        circuit,
                        &options.fault_model.expand(f, circuit.netlist()),
                        budget,
                    ),
                    _ => TransitionTables::faulty_budgeted(circuit, f, budget),
                };
                let extracted = match prefetched.pop_front() {
                    Some(t) => Ok(t),
                    None => match pool {
                        Some(p) => {
                            // The window skips fragment-served faults so
                            // the FIFO stays aligned with consumption.
                            let upcoming: Vec<Fault> = (fi..faults.len())
                                .filter(|&j| needs_build[j])
                                .take(window)
                                .map(|j| faults[j])
                                .collect();
                            p.try_map(&upcoming, |_, &f| extract(f)).map(|tables| {
                                prefetched = tables.into();
                                prefetched.pop_front().expect("nonempty window")
                            })
                        }
                        None => extract(fault),
                    },
                };
                let bad = match extracted {
                    Ok(t) => t,
                    Err(mut interrupted) => {
                        // Extraction mutates nothing shared: still a clean
                        // boundary at fault `fi` (none of the window's
                        // faults has been enumerated yet).
                        interrupted.resumable = true;
                        return Err(DetectError::Interrupted {
                            interrupted,
                            checkpoint: Some(Box::new(snapshot(fi, &collectors, &stats))),
                        });
                    }
                };
                // Fresh per-fault collectors for the bounds no stored
                // fragment served: enumeration prunes each fault
                // against its own rows only, so a fragment (and hence
                // `rows_raw`) is independent of store warmth and of
                // every other fault.
                let mut local: Vec<Option<(Collector, CodeFootprint)>> = resolved
                    .iter()
                    .zip(latencies)
                    .map(|(hit, &p)| {
                        hit.is_none().then(|| {
                            (
                                Collector::new(p, options.reduce, options.max_rows),
                                CodeFootprint::new(),
                            )
                        })
                    })
                    .collect();
                let mut testable = false;
                let mut activations = 0usize;
                // Activations with identical (D₁, start, successor) enumerate
                // identical subtrees (the start matters for the loop rule) —
                // dedupe them per fault and latency bound.
                for set in seen_starts.iter_mut() {
                    set.clear();
                }

                for &c in &activation_states {
                    // Mid-fault safe point: prompt response to cancellation
                    // and deadlines only — the collectors already hold
                    // partial rows for this fault, so nothing resumable can
                    // be captured here. Quantity caps (ticks/bytes) wait
                    // for the next fault boundary, which yields a clean
                    // checkpoint instead.
                    if let Err(interrupted) = budget.check("tensor:enumerate") {
                        if matches!(
                            interrupted.kind,
                            InterruptKind::Cancelled | InterruptKind::DeadlineExceeded
                        ) {
                            return Err(DetectError::Interrupted {
                                interrupted,
                                checkpoint: None,
                            });
                        }
                    }
                    options.input_model.inputs_at(c, r, &mut inputs_scratch);
                    let inputs_here = inputs_scratch.clone();
                    for a1 in inputs_here {
                        let d1 = good.response(c, a1) ^ bad.response(c, a1);
                        if d1 == 0 {
                            continue;
                        }
                        testable = true;
                        activations += 1;
                        budget.charge(1);
                        for ((pi, &p), slot) in latencies.iter().enumerate().zip(local.iter_mut()) {
                            let Some((collector, footprint)) = slot.as_mut() else {
                                continue;
                            };
                            match options.semantics {
                                Semantics::FaultyTrajectory => {
                                    let s1 = bad.next(c, a1);
                                    if !seen_starts[pi].insert((d1, c, s1, 0)) {
                                        continue;
                                    }
                                    if timed {
                                        enumerate_paths_timed(
                                            good,
                                            &bad,
                                            options.fault_model,
                                            &options.input_model,
                                            r,
                                            p,
                                            c,
                                            d1,
                                            s1,
                                            collector,
                                        );
                                    } else {
                                        enumerate_paths(
                                            good,
                                            &bad,
                                            &options.input_model,
                                            r,
                                            p,
                                            c,
                                            d1,
                                            s1,
                                            collector,
                                        );
                                    }
                                }
                                Semantics::Lockstep => {
                                    let pair1 = (good.next(c, a1), bad.next(c, a1));
                                    if !seen_starts[pi].insert((d1, c, pair1.0, pair1.1)) {
                                        continue;
                                    }
                                    if timed {
                                        enumerate_lockstep_timed(
                                            good,
                                            &bad,
                                            options.fault_model,
                                            &options.input_model,
                                            r,
                                            p,
                                            (c, c),
                                            d1,
                                            pair1,
                                            collector,
                                            footprint,
                                        );
                                    } else {
                                        enumerate_lockstep(
                                            good,
                                            &bad,
                                            &options.input_model,
                                            r,
                                            p,
                                            (c, c),
                                            d1,
                                            pair1,
                                            collector,
                                            footprint,
                                        );
                                    }
                                }
                            }
                            if collector.overflowed() {
                                return Err(DetectError::TooManyRows {
                                    limit: options.max_rows,
                                });
                            }
                        }
                    }
                }
                // Package the freshly enumerated bounds as fragments —
                // the stored artifact (if any) and the absorb source
                // below are the same value by construction.
                for (pi, slot) in local.into_iter().enumerate() {
                    let Some((collector, footprint)) = slot else {
                        continue;
                    };
                    let emitted = collector.emitted();
                    let (codes, overflow) = footprint.into_sorted();
                    let fragment = TensorFragment {
                        testable,
                        activations,
                        emitted,
                        rows: collector.into_fragment_rows(),
                        footprint: codes,
                        footprint_overflow: overflow,
                    };
                    if let (Some(store), Some(fc)) = (control.store, frag) {
                        let key =
                            fragment_fingerprint(&fc.context, fc.cone_keys[fi], latencies[pi]);
                        store.put_artifact(TENSOR_FRAG_STAGE, key, &fragment.to_bytes());
                    }
                    resolved[pi] = Some(fragment);
                }
            }
            // Absorb in fault order — the identical path whether a
            // fragment was enumerated just now or served by the store,
            // so warm and cold builds walk byte-identical collector
            // states (the whole-table digest check below then proves
            // it against past monolithic runs).
            for (pi, fragment) in resolved.iter().enumerate() {
                let fragment = fragment.as_ref().expect("every bound resolved");
                stats[pi].activations += fragment.activations;
                if !fragment.testable {
                    stats[pi].untestable_faults += 1;
                }
                collectors[pi].absorb(&fragment.rows, fragment.emitted);
                if collectors[pi].overflowed() {
                    return Err(DetectError::TooManyRows {
                        limit: options.max_rows,
                    });
                }
            }
            // Row-storage estimate: kept sets × step words.
            let kept: usize = collectors
                .iter()
                .map(|c| c.sets.len() * c.latency.max(1) * std::mem::size_of::<u64>())
                .sum();
            if kept as u64 > budget.bytes() {
                budget.charge_bytes(kept as u64 - budget.bytes());
            }
        }

        let results: Vec<(DetectabilityTable, DetectStats)> = latencies
            .iter()
            .zip(collectors.into_iter().zip(stats))
            .map(|(&p, (collector, mut st))| {
                st.rows_raw = collector.emitted();
                let rows = collector.finish();
                st.rows = rows.len();
                (
                    DetectabilityTable {
                        num_bits: n,
                        latency: p,
                        reduced: options.reduce,
                        rows,
                    },
                    st,
                )
            })
            .collect();
        if let Some(store) = control.store {
            // Composition check and publication, two-phase: verify
            // every bound's digest before publishing anything — a
            // mismatching pass must not record digests derived from
            // artifacts it is about to declare corrupt.
            let mut publish: Vec<(Vec<u8>, u64, Option<u64>)> = Vec::with_capacity(np);
            let mut mismatch = false;
            for ((table, st), &fp) in results.iter().zip(tensor_fps) {
                let mut w = ByteWriter::new();
                table.write(&mut w);
                st.write(&mut w);
                let bytes = w.finish();
                let digest = fnv1a64(&bytes);
                let recorded = store.get_typed(TENSOR_COMP_STAGE, fp, |b| {
                    let mut rd = ByteReader::new(b);
                    let d = rd.u64()?;
                    rd.expect_end()?;
                    Ok(d)
                });
                match recorded {
                    Some(expected) if expected != digest => {
                        // The composed table disagrees with the digest
                        // a prior build recorded: one side is corrupt
                        // and there is no way to tell which. Drop the
                        // record; the caller drops the fragments.
                        store.note_corrupt(TENSOR_COMP_STAGE, fp);
                        mismatch = true;
                    }
                    Some(_) => publish.push((bytes, fp, None)),
                    None => publish.push((bytes, fp, Some(digest))),
                }
            }
            if mismatch {
                if read_fragments {
                    for &key in &absorbed_keys {
                        store.note_corrupt(TENSOR_FRAG_STAGE, key);
                    }
                    return Ok(FragmentOutcome::CompositionMismatch);
                }
                // No fragments were read, so this monolithic build is
                // authoritative and the stale digests are already
                // dropped; the next store-backed build re-records
                // cleanly. Results stand.
                return Ok(FragmentOutcome::Done(results));
            }
            for (bytes, fp, record) in publish {
                if let Some(digest) = record {
                    store.put_artifact(TENSOR_COMP_STAGE, fp, &digest.to_le_bytes());
                }
                store.put_artifact(TENSOR_STAGE, fp, &bytes);
            }
        }
        Ok(FragmentOutcome::Done(results))
    }

    /// Builds a table directly from rows (tests, ablations, custom error
    /// models prescribed as in §1 of the paper: "providing the
    /// error-free response and all erroneous responses … for every
    /// transition").
    ///
    /// # Panics
    ///
    /// Panics if any row's step count differs from `latency` or uses
    /// bits above `num_bits`.
    pub fn from_rows(num_bits: usize, latency: usize, rows: Vec<EcRow>) -> DetectabilityTable {
        assert!(num_bits <= 64, "at most 64 monitored bits");
        let mask = if num_bits == 64 {
            u64::MAX
        } else {
            (1u64 << num_bits) - 1
        };
        for row in &rows {
            assert_eq!(row.steps.len(), latency, "row latency mismatch");
            for &d in &row.steps {
                assert_eq!(d & !mask, 0, "row uses bits above {num_bits}");
            }
        }
        DetectabilityTable {
            num_bits,
            latency,
            reduced: false,
            rows,
        }
    }

    /// Serializes the table for checkpointing. The round trip through
    /// [`Self::from_bytes`] is bit-exact: rows, order, latency and the
    /// reduction flag all survive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.write(&mut w);
        w.finish()
    }

    /// Serializes into an existing writer (for embedding in larger
    /// checkpoints).
    pub fn write(&self, w: &mut ByteWriter) {
        w.usize(self.num_bits);
        w.usize(self.latency);
        w.bool(self.reduced);
        w.usize(self.rows.len());
        for row in &self.rows {
            w.u64_slice(&row.steps);
        }
    }

    /// Deserializes a table serialized by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`]
    /// on malformed payloads; no panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<DetectabilityTable, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let table = Self::read(&mut r)?;
        r.expect_end()?;
        Ok(table)
    }

    /// Deserializes from an existing reader.
    pub fn read(r: &mut ByteReader<'_>) -> Result<DetectabilityTable, CheckpointError> {
        let num_bits = r.usize()?;
        if num_bits > 64 {
            return Err(CheckpointError::Corrupt(
                "more than 64 monitored bits".into(),
            ));
        }
        let latency = r.usize()?;
        let reduced = r.bool()?;
        let n_rows = r.usize()?;
        let mut rows = Vec::new();
        for _ in 0..n_rows {
            let steps = r.u64_slice()?;
            if steps.len() != latency {
                return Err(CheckpointError::Corrupt("row latency mismatch".into()));
            }
            rows.push(EcRow { steps });
        }
        Ok(DetectabilityTable {
            num_bits,
            latency,
            reduced,
            rows,
        })
    }

    /// Number of monitored bits `n` (next-state + output).
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// The latency bound `p` this table was enumerated for.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// The deduplicated erroneous cases.
    pub fn rows(&self) -> &[EcRow] {
        &self.rows
    }

    /// Number of erroneous cases (`m`).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff there are no erroneous cases (nothing to detect).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// True when the rows are dominance-reduced minimal step-sets (see
    /// [`DetectOptions::reduce`]); the paper's literal Fig. 2 table is
    /// the unreduced form.
    pub fn is_reduced(&self) -> bool {
        self.reduced
    }

    /// The same table with rows ordered hardest-first (fewest detection
    /// opportunities, i.e. smallest total set-bit count across steps).
    /// Coverage semantics are order-independent; the ordering makes
    /// failed cover candidates fail fast in [`Self::first_uncovered`],
    /// which dominates the randomized-rounding inner loop on large
    /// tables.
    pub fn sorted_by_difficulty(&self) -> DetectabilityTable {
        let mut rows = self.rows.clone();
        rows.sort_by_key(|r| {
            (
                r.steps.iter().map(|d| d.count_ones()).sum::<u32>(),
                r.steps.clone(),
            )
        });
        DetectabilityTable {
            num_bits: self.num_bits,
            latency: self.latency,
            reduced: self.reduced,
            rows,
        }
    }

    /// `V(i, j, k)` accessor (row, bit, latency step; all 0-based).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn entry(&self, row: usize, bit: usize, step: usize) -> bool {
        assert!(bit < self.num_bits && step < self.latency);
        (self.rows[row].steps[step] >> bit) & 1 == 1
    }

    /// The rows detected by a single parity mask, as indices.
    pub fn rows_detected_by(&self, mask: u64) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.detected_by(mask))
            .map(|(i, _)| i)
            .collect()
    }

    /// The row indices NOT detected by any of the given parity masks.
    pub fn uncovered_rows(&self, masks: &[u64]) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| !masks.iter().any(|&m| r.detected_by(m)))
            .map(|(i, _)| i)
            .collect()
    }

    /// True iff every erroneous case is detected by some mask — the
    /// feasibility condition of the paper's Statement 2.
    pub fn all_covered(&self, masks: &[u64]) -> bool {
        self.first_uncovered(masks).is_none()
    }

    /// The index of the first row no mask detects, or `None` when fully
    /// covered. Early-exits, so failed candidate covers are cheap to
    /// reject.
    pub fn first_uncovered(&self, masks: &[u64]) -> Option<usize> {
        self.rows
            .iter()
            .position(|r| !masks.iter().any(|&m| r.detected_by(m)))
    }

    /// The same table truncated to a smaller latency bound, rows
    /// re-deduplicated. Truncating a length-`p` enumeration reproduces
    /// the length-`p'` enumeration exactly (paths and loop cuts are
    /// prefix-stable), so one expensive build at `p_max` serves every
    /// smaller bound.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is 0 or exceeds the table's latency.
    pub fn truncated(&self, latency: usize) -> DetectabilityTable {
        assert!(
            !self.reduced,
            "truncation requires an unreduced table: reduced rows lose \
             temporal step order, and dominance depends on the bound"
        );
        assert!(latency >= 1 && latency <= self.latency, "bad truncation");
        if latency == self.latency {
            return self.clone();
        }
        let mut set: HashSet<Vec<u64>> = HashSet::with_capacity(self.rows.len());
        for row in &self.rows {
            set.insert(row.steps[..latency].to_vec());
        }
        let mut rows: Vec<EcRow> = set.into_iter().map(|steps| EcRow { steps }).collect();
        rows.sort_by(|a, b| a.steps.cmp(&b.steps));
        DetectabilityTable {
            num_bits: self.num_bits,
            latency,
            reduced: false,
            rows,
        }
    }

    /// Merges two tables over the same interface and latency bound —
    /// e.g. a stuck-at table with a register-upset table
    /// ([`crate::models`]) to cover a combined fault model. Rows are
    /// deduplicated; if either side is dominance-reduced the result is
    /// re-reduced.
    ///
    /// # Panics
    ///
    /// Panics if the bit counts or latency bounds differ.
    pub fn merged(&self, other: &DetectabilityTable) -> DetectabilityTable {
        assert_eq!(self.num_bits, other.num_bits, "bit count mismatch");
        assert_eq!(self.latency, other.latency, "latency mismatch");
        let mut rows: Vec<EcRow> = self.rows.clone();
        rows.extend(other.rows.iter().cloned());
        rows.sort_by(|a, b| a.steps.cmp(&b.steps));
        rows.dedup();
        let merged = DetectabilityTable {
            num_bits: self.num_bits,
            latency: self.latency,
            reduced: false,
            rows,
        };
        if self.reduced || other.reduced {
            merged.dominance_reduced()
        } else {
            merged
        }
    }

    /// The dominance-reduced table the optimizer actually needs.
    ///
    /// Coverage of a row only depends on the *set* of nonzero step
    /// masks (a parity tree detects it iff it overlaps some step
    /// oddly), and a row whose step-set is a superset of another row's
    /// is implied by it: any cover of the subset row covers the
    /// superset row too. This keeps, per distinct minimal step-set, one
    /// canonical row (steps sorted, zero-padded) — typically orders of
    /// magnitude smaller than the raw table, with an identical set of
    /// feasible parity covers.
    pub fn dominance_reduced(&self) -> DetectabilityTable {
        // Canonical step-sets (sorted, distinct, nonzero), then the
        // shared supersets-removal pass.
        let mut matrix = CoverageMatrix::new();
        for row in &self.rows {
            let s = CoverageMatrix::canonical(&row.steps);
            if !s.is_empty() {
                matrix.insert_raw(s);
            }
        }
        matrix.remove_supersets();
        let mut kept_rows: Vec<EcRow> = matrix
            .into_sorted_sets()
            .into_iter()
            .map(|mut steps| {
                steps.resize(self.latency, 0);
                EcRow { steps }
            })
            .collect();
        kept_rows.sort_by(|a, b| a.steps.cmp(&b.steps));
        DetectabilityTable {
            num_bits: self.num_bits,
            latency: self.latency,
            reduced: true,
            rows: kept_rows,
        }
    }

    /// Renders the table in the style of the paper's Fig. 2 (rows =
    /// erroneous cases, super-columns = latency steps, columns = bits).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>6} |", "EC");
        for k in 0..self.latency {
            let _ = write!(
                out,
                " latency {:<width$} |",
                k + 1,
                width = self.num_bits.saturating_sub(8).max(1)
            );
        }
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(out, "{:>6} |", i + 1);
            for &d in &row.steps {
                out.push(' ');
                for b in (0..self.num_bits).rev() {
                    out.push(if (d >> b) & 1 == 1 { '1' } else { '.' });
                }
                out.push_str(" |");
            }
            out.push('\n');
        }
        out
    }
}

/// Version marker folded into every tensor-layer fingerprint. The
/// per-fault-cone split changed `rows_raw` semantics (counted per fault
/// instead of after cross-fault pruning), so pre-split artifacts and
/// checkpoints must miss rather than replay under the new counters —
/// bumping the marker is the PR6 invalidation convention.
const TENSOR_FORMAT_VERSION: &str = "tensor-frag-v1";

/// Everything a single fault's fragment depends on *except* the fault
/// itself and the latency bound: the good machine's full transition
/// tables and every enumeration option. This is the shared half of
/// both the fragment keys (fault cone + bound appended) and the
/// whole-table keys (fault list + bound appended).
fn write_fragment_context(w: &mut ByteWriter, good: &TransitionTables, options: &DetectOptions) {
    w.str(TENSOR_FORMAT_VERSION);
    w.usize(good.num_inputs());
    w.usize(good.state_bits());
    w.usize(good.num_outputs());
    w.u64(good.reset_code());
    for code in 0..(1u64 << good.state_bits()) {
        for input in 0..(1u64 << good.num_inputs()) {
            w.u64(good.response(code, input));
            w.u64(good.next(code, input));
        }
    }
    w.usize(options.max_rows);
    w.bool(options.reduce);
    w.u8(match options.semantics {
        Semantics::Lockstep => 0,
        Semantics::FaultyTrajectory => 1,
    });
    match &options.input_model {
        InputModel::Exhaustive => w.u8(0),
        InputModel::Restricted { by_state, fallback } => {
            w.u8(1);
            w.usize(by_state.len());
            for v in by_state {
                w.u64_slice(v);
            }
            w.u64_slice(fallback);
        }
    }
    // Fault-model key hygiene: non-permanent models get their own
    // store keys and checkpoint fingerprints. The permanent default
    // appends nothing so permanent and default-model artifacts share
    // keys and the permanent byte-identity guarantee holds.
    if options.fault_model != FaultModel::PermanentStuckAt {
        w.str("fault-model");
        options.fault_model.write(w);
    }
}

/// Canonical context bytes for the machine/options half of every
/// tensor-layer key. `core::pipeline`'s machine-diff front-end computes
/// this for the *baseline* machine to name the fragments an edited
/// machine may promote ([`DeltaSeed::old_context`]).
pub fn fragment_context_bytes(good: &TransitionTables, options: &DetectOptions) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_fragment_context(&mut w, good, options);
    w.finish()
}

/// Canonical bytes of everything a whole-table build depends on
/// *except* the latency bounds: the fragment context plus the fault
/// list. Checkpoint fingerprints append the full latency list
/// ([`build_fingerprint_from_base`]); store keys append a single bound
/// ([`tensor_fingerprint`]) so a p-sweep's artifacts serve any later
/// subset of its bounds.
fn fingerprint_base_bytes(
    good: &TransitionTables,
    faults: &[Fault],
    options: &DetectOptions,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_fragment_context(&mut w, good, options);
    w.usize(faults.len());
    for f in faults {
        w.usize(f.net.index());
        w.bool(f.stuck_at);
    }
    w.finish()
}

/// FNV fingerprint binding a [`BuildCheckpoint`] to its inputs.
/// Anything that could make a resumed build diverge from the original
/// run is folded in.
fn build_fingerprint_from_base(base: &[u8], latencies: &[usize]) -> u64 {
    let mut bytes = base.to_vec();
    bytes.extend_from_slice(&(latencies.len() as u64).to_le_bytes());
    for &p in latencies {
        bytes.extend_from_slice(&(p as u64).to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// Store key for one latency bound's `(table, stats)` artifact.
fn tensor_fingerprint(base: &[u8], latency: usize) -> u64 {
    let mut bytes = base.to_vec();
    bytes.extend_from_slice(b"tensor-latency");
    bytes.extend_from_slice(&(latency as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// Store key for one fault cone's fragment at one latency bound.
fn fragment_fingerprint(context: &[u8], cone_key: u64, latency: usize) -> u64 {
    let mut bytes = context.to_vec();
    bytes.extend_from_slice(b"tensor-frag");
    bytes.extend_from_slice(&cone_key.to_le_bytes());
    bytes.extend_from_slice(&(latency as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// Per-(fault cone, latency bound) store context carried through one
/// [`DetectabilityTable::build_many_controlled`] call.
struct FragContext {
    /// [`fragment_context_bytes`] of the machine under analysis.
    context: Vec<u8>,
    /// [`crate::cone::cone_keys`] of the fault list, in fault order.
    cone_keys: Vec<u64>,
    /// Present when this build was seeded by a machine diff: enables
    /// promoting the baseline's fragments across the context change.
    delta: Option<DeltaSeed>,
}

/// Outcome of one enumeration pass over the fault list.
enum FragmentOutcome {
    /// The per-bound `(table, stats)` pairs, in latency order.
    Done(Vec<(DetectabilityTable, DetectStats)>),
    /// A stored composition digest disagreed with the table composed
    /// from fragments. The poisoned artifacts have been dropped; the
    /// caller must re-run without fragment reads.
    CompositionMismatch,
}

/// Good-state codes whose transitions a fault's enumeration actually
/// compared across the two machines. Lockstep enumeration reads good
/// rows at *both* trajectories' states once they diverge; the cone key
/// pins only the faulted machine's structure, so cross-machine fragment
/// promotion must additionally check that the machines' good tables
/// agree at every recorded code ([`promote_fragment`]).
struct CodeFootprint {
    codes: HashSet<u64>,
    overflow: bool,
}

/// Footprints beyond this many distinct codes stop recording and mark
/// themselves overflowed — the fragment then refuses cross-context
/// promotion (correctness is unaffected; it just rebuilds).
const FOOTPRINT_CAP: usize = 4096;

impl CodeFootprint {
    fn new() -> CodeFootprint {
        CodeFootprint {
            codes: HashSet::new(),
            overflow: false,
        }
    }

    /// Records a divergent state pair. Non-divergent pairs contribute
    /// nothing to promotion validity: when `g == f` the step mask is
    /// `good(g) ^ bad(f)`, and the delta seed already requires the two
    /// machines' next maps (hence `bad`) and the cone (hence the
    /// faulted responses) to agree.
    #[inline]
    fn record(&mut self, g: u64, f: u64) {
        if g == f || self.overflow {
            return;
        }
        self.codes.insert(g);
        self.codes.insert(f);
        if self.codes.len() > FOOTPRINT_CAP {
            self.codes.clear();
            self.overflow = true;
        }
    }

    fn into_sorted(self) -> (Vec<u64>, bool) {
        let mut codes: Vec<u64> = self.codes.into_iter().collect();
        codes.sort_unstable();
        (codes, self.overflow)
    }
}

/// True iff two strictly ascending slices share no element.
fn disjoint_sorted(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// One fault's contribution to one latency bound's table: its canonical
/// rows, activation counters and the good-state footprint. Stored under
/// [`fragment_fingerprint`]; absorbing a stored fragment walks the
/// collectors through byte-identical states to re-enumerating it.
struct TensorFragment {
    /// False iff no reachable (state, input) produced a nonzero `D₁`.
    testable: bool,
    /// Activations counted for this fault at this bound.
    activations: usize,
    /// Rows the enumeration emitted (pre-dedup), for `rows_raw`.
    emitted: usize,
    /// Canonical rows: sorted minimal step-sets (reduce) or sorted raw
    /// step rows (!reduce) — [`Collector::into_fragment_rows`] output.
    rows: Vec<Vec<u64>>,
    /// Sorted good-state codes at divergent lockstep pairs; empty for
    /// [`Semantics::FaultyTrajectory`] (its enumeration reads the good
    /// tables only at states the cone key and delta seed already pin).
    footprint: Vec<u64>,
    /// True when the footprint overflowed [`FOOTPRINT_CAP`] and was
    /// discarded; such fragments never promote across contexts.
    footprint_overflow: bool,
}

impl TensorFragment {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.bool(self.testable);
        w.usize(self.activations);
        w.usize(self.emitted);
        w.u64_slice(&self.footprint);
        w.bool(self.footprint_overflow);
        w.usize(self.rows.len());
        for row in &self.rows {
            w.u64_slice(row);
        }
        w.finish()
    }

    /// Decodes and *validates* a stored fragment: malformed bytes must
    /// degrade to a store miss, never into a corrupted table.
    fn from_bytes(
        bytes: &[u8],
        latency: usize,
        reduce: bool,
    ) -> Result<TensorFragment, CheckpointError> {
        let corrupt = |msg: &str| CheckpointError::Corrupt(msg.to_string());
        let mut rd = ByteReader::new(bytes);
        let testable = rd.bool()?;
        let activations = rd.usize()?;
        let emitted = rd.usize()?;
        let footprint = rd.u64_slice()?;
        if !footprint.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("fragment footprint not strictly ascending"));
        }
        let footprint_overflow = rd.bool()?;
        let n_rows = rd.usize()?;
        if n_rows > emitted {
            return Err(corrupt("fragment keeps more rows than it emitted"));
        }
        let mut rows = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let row = rd.u64_slice()?;
            if reduce {
                // Canonical minimal step-sets: nonempty, strictly
                // ascending nonzero masks, at most `latency` of them.
                if row.is_empty() || row.len() > latency {
                    return Err(corrupt("fragment step-set length out of range"));
                }
                if row[0] == 0 || !row.windows(2).all(|w| w[0] < w[1]) {
                    return Err(corrupt("fragment step-set not canonical"));
                }
            } else if row.len() != latency {
                return Err(corrupt("fragment raw row length != latency"));
            }
            rows.push(row);
        }
        if !rows.windows(2).all(|w| w[0] < w[1]) {
            return Err(corrupt("fragment rows not strictly sorted"));
        }
        rd.expect_end()?;
        Ok(TensorFragment {
            testable,
            activations,
            emitted,
            rows,
            footprint,
            footprint_overflow,
        })
    }
}

/// Attempts to serve a fragment from the *baseline* machine's store
/// entries when a delta-seeded build misses under its own context.
///
/// Valid iff the old fragment's good-state footprint avoids every code
/// the edit changed: the cone key already pins the faulted structure,
/// the delta seed pins next maps / reset / dims / input model, so the
/// only way the old rows could differ from a fresh enumeration is a
/// changed good response at a recorded divergent state. A promoted
/// fragment is re-put under the new context's key so subsequent builds
/// hit directly.
fn promote_fragment(
    store: &Store,
    seed: &DeltaSeed,
    cone_key: u64,
    latency: usize,
    reduce: bool,
    new_key: u64,
) -> Option<TensorFragment> {
    let old_key = fragment_fingerprint(&seed.old_context, cone_key, latency);
    let frag = store.get_typed(TENSOR_FRAG_STAGE, old_key, |bytes| {
        TensorFragment::from_bytes(bytes, latency, reduce)
    })?;
    if frag.footprint_overflow || !disjoint_sorted(&frag.footprint, &seed.changed_codes) {
        return None;
    }
    store.put_artifact(TENSOR_FRAG_STAGE, new_key, &frag.to_bytes());
    Some(frag)
}

/// Depth-first enumeration of the faulty-trajectory suffixes
/// ([`Semantics::FaultyTrajectory`]).
///
/// Rows (length `p`, zero-padded after loop cuts) are pushed into the
/// collector; input symbols with identical (diff, next) effects at a
/// node are collapsed, and branches whose prefix is already dominated
/// are pruned.
#[allow(clippy::too_many_arguments)]
fn enumerate_paths(
    good: &TransitionTables,
    bad: &TransitionTables,
    input_model: &InputModel,
    r: usize,
    p: usize,
    start_state: u64,
    d1: u64,
    s1: u64,
    out: &mut Collector,
) {
    if out.prefix_dominated(&[d1]) {
        // Every row from this activation contains d1; all dominated.
        return;
    }
    // Fast path: latency 1, or immediate loop back to the start.
    if p == 1 || s1 == start_state {
        let mut row = vec![0u64; p];
        row[0] = d1;
        out.insert(&row);
        return;
    }
    let mut prefix = vec![0u64; p];
    prefix[0] = d1;
    let mut visited = vec![start_state, s1];
    extend(
        good,
        bad,
        input_model,
        r,
        p,
        1,
        s1,
        &mut prefix,
        &mut visited,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn extend(
    good: &TransitionTables,
    bad: &TransitionTables,
    input_model: &InputModel,
    r: usize,
    p: usize,
    depth: usize,
    state: u64,
    prefix: &mut Vec<u64>,
    visited: &mut Vec<u64>,
    out: &mut Collector,
) {
    let mut seen_effects: HashSet<(u64, u64)> = HashSet::new();
    // Inputs explored from the *faulty-trajectory* state's vantage: it
    // is the state the machine is actually in.
    let mut inputs = Vec::new();
    input_model.inputs_at(state, r, &mut inputs);
    for input in inputs {
        let d = good.response(state, input) ^ bad.response(state, input);
        let nx = bad.next(state, input);
        if !seen_effects.insert((d, nx)) {
            continue;
        }
        prefix[depth] = d;
        if out.prefix_dominated(&prefix[..=depth]) {
            prefix[depth] = 0;
            continue;
        }
        if depth + 1 == p || visited.contains(&nx) {
            // Complete, or loop cut: remaining steps stay zero.
            let mut row = prefix.clone();
            for slot in row.iter_mut().skip(depth + 1) {
                *slot = 0;
            }
            out.insert(&row);
        } else {
            visited.push(nx);
            extend(
                good,
                bad,
                input_model,
                r,
                p,
                depth + 1,
                nx,
                prefix,
                visited,
                out,
            );
            visited.pop();
        }
        prefix[depth] = 0;
    }
}

/// Depth-first enumeration of lockstep (good, faulty) pair suffixes
/// ([`Semantics::Lockstep`]): the difference at each step compares the
/// good machine's response from its own trajectory with the faulty
/// machine's from its own, as a fault simulator reports.
#[allow(clippy::too_many_arguments)]
fn enumerate_lockstep(
    good: &TransitionTables,
    bad: &TransitionTables,
    input_model: &InputModel,
    r: usize,
    p: usize,
    start_pair: (u64, u64),
    d1: u64,
    pair1: (u64, u64),
    out: &mut Collector,
    footprint: &mut CodeFootprint,
) {
    if out.prefix_dominated(&[d1]) {
        return;
    }
    if p == 1 || pair1 == start_pair {
        let mut row = vec![0u64; p];
        row[0] = d1;
        out.insert(&row);
        return;
    }
    let mut prefix = vec![0u64; p];
    prefix[0] = d1;
    let mut visited = vec![start_pair, pair1];
    extend_lockstep(
        good,
        bad,
        input_model,
        r,
        p,
        1,
        pair1,
        &mut prefix,
        &mut visited,
        out,
        footprint,
    );
}

#[allow(clippy::too_many_arguments)]
fn extend_lockstep(
    good: &TransitionTables,
    bad: &TransitionTables,
    input_model: &InputModel,
    r: usize,
    p: usize,
    depth: usize,
    pair: (u64, u64),
    prefix: &mut Vec<u64>,
    visited: &mut Vec<(u64, u64)>,
    out: &mut Collector,
    footprint: &mut CodeFootprint,
) {
    let (g, f) = pair;
    // Divergent pairs read the good tables at two distinct codes; the
    // footprint records both for cross-machine fragment promotion.
    footprint.record(g, f);
    let mut seen_effects: HashSet<(u64, (u64, u64))> = HashSet::new();
    // Inputs explored from the good-trajectory state's vantage: the
    // STG structure of the fault-free machine defines "transitions".
    let mut inputs = Vec::new();
    input_model.inputs_at(g, r, &mut inputs);
    for input in inputs {
        let d = good.response(g, input) ^ bad.response(f, input);
        let nx = (good.next(g, input), bad.next(f, input));
        if !seen_effects.insert((d, nx)) {
            continue;
        }
        prefix[depth] = d;
        if out.prefix_dominated(&prefix[..=depth]) {
            prefix[depth] = 0;
            continue;
        }
        if depth + 1 == p || visited.contains(&nx) {
            let mut row = prefix.clone();
            for slot in row.iter_mut().skip(depth + 1) {
                *slot = 0;
            }
            out.insert(&row);
        } else {
            visited.push(nx);
            extend_lockstep(
                good,
                bad,
                input_model,
                r,
                p,
                depth + 1,
                nx,
                prefix,
                visited,
                out,
                footprint,
            );
            visited.pop();
        }
        prefix[depth] = 0;
    }
}

/// Phase-aware variant of [`enumerate_paths`] for time-varying fault
/// models. At each 1-indexed step the faulty machine follows the
/// faulty tables iff the model is active there and the fault-free
/// tables otherwise (the single physical machine of
/// [`Semantics::FaultyTrajectory`] simply stops misbehaving when the
/// fault deasserts, so its difference is zero on inactive steps).
/// Loop cuts require the *fault-automaton phase* to repeat along with
/// the state — a state revisited at a different phase has a different
/// future.
#[allow(clippy::too_many_arguments)]
fn enumerate_paths_timed(
    good: &TransitionTables,
    bad: &TransitionTables,
    model: FaultModel,
    input_model: &InputModel,
    r: usize,
    p: usize,
    start_state: u64,
    d1: u64,
    s1: u64,
    out: &mut Collector,
) {
    if out.prefix_dominated(&[d1]) {
        return;
    }
    // The start-state loop cut only applies when the phase recurs too.
    if p == 1 || (s1 == start_state && model.phase_at(1) == model.phase_at(2)) {
        let mut row = vec![0u64; p];
        row[0] = d1;
        out.insert(&row);
        return;
    }
    let mut prefix = vec![0u64; p];
    prefix[0] = d1;
    let mut visited = vec![(start_state, model.phase_at(1)), (s1, model.phase_at(2))];
    extend_timed(
        good,
        bad,
        model,
        input_model,
        r,
        p,
        1,
        s1,
        &mut prefix,
        &mut visited,
        out,
    );
}

#[allow(clippy::too_many_arguments)]
fn extend_timed(
    good: &TransitionTables,
    bad: &TransitionTables,
    model: FaultModel,
    input_model: &InputModel,
    r: usize,
    p: usize,
    depth: usize,
    state: u64,
    prefix: &mut Vec<u64>,
    visited: &mut Vec<(u64, u64)>,
    out: &mut Collector,
) {
    // `depth` slots of `prefix` are filled; this call produces step
    // `depth + 1` (1-indexed).
    let step = depth + 1;
    if model.dead_after(step) {
        // A transient past its window never reasserts: on the shared
        // trajectory every remaining difference is zero, so the row is
        // exactly the prefix (its tail is already zero-filled).
        let row = prefix.clone();
        out.insert(&row);
        return;
    }
    let active = model.active_at(step);
    let mut seen_effects: HashSet<(u64, u64)> = HashSet::new();
    let mut inputs = Vec::new();
    input_model.inputs_at(state, r, &mut inputs);
    for input in inputs {
        let (resp, nx) = if active {
            (bad.response(state, input), bad.next(state, input))
        } else {
            (good.response(state, input), good.next(state, input))
        };
        let d = good.response(state, input) ^ resp;
        if !seen_effects.insert((d, nx)) {
            continue;
        }
        prefix[depth] = d;
        if out.prefix_dominated(&prefix[..=depth]) {
            prefix[depth] = 0;
            continue;
        }
        let next_phase = model.phase_at(step + 1);
        if depth + 1 == p || visited.contains(&(nx, next_phase)) {
            let mut row = prefix.clone();
            for slot in row.iter_mut().skip(depth + 1) {
                *slot = 0;
            }
            out.insert(&row);
        } else {
            visited.push((nx, next_phase));
            extend_timed(
                good,
                bad,
                model,
                input_model,
                r,
                p,
                depth + 1,
                nx,
                prefix,
                visited,
                out,
            );
            visited.pop();
        }
        prefix[depth] = 0;
    }
}

/// Phase-aware variant of [`enumerate_lockstep`] for time-varying
/// fault models. Unlike the shared-trajectory semantics, lockstep
/// divergence survives deassertion: once the faulty machine's state
/// differs from the good machine's, the pair keeps diverging under
/// fault-free dynamics until the trajectories reconverge.
#[allow(clippy::too_many_arguments)]
fn enumerate_lockstep_timed(
    good: &TransitionTables,
    bad: &TransitionTables,
    model: FaultModel,
    input_model: &InputModel,
    r: usize,
    p: usize,
    start_pair: (u64, u64),
    d1: u64,
    pair1: (u64, u64),
    out: &mut Collector,
    footprint: &mut CodeFootprint,
) {
    if out.prefix_dominated(&[d1]) {
        return;
    }
    if p == 1 || (pair1 == start_pair && model.phase_at(1) == model.phase_at(2)) {
        let mut row = vec![0u64; p];
        row[0] = d1;
        out.insert(&row);
        return;
    }
    let mut prefix = vec![0u64; p];
    prefix[0] = d1;
    let mut visited = vec![(start_pair, model.phase_at(1)), (pair1, model.phase_at(2))];
    extend_lockstep_timed(
        good,
        bad,
        model,
        input_model,
        r,
        p,
        1,
        pair1,
        &mut prefix,
        &mut visited,
        out,
        footprint,
    );
}

#[allow(clippy::too_many_arguments)]
fn extend_lockstep_timed(
    good: &TransitionTables,
    bad: &TransitionTables,
    model: FaultModel,
    input_model: &InputModel,
    r: usize,
    p: usize,
    depth: usize,
    pair: (u64, u64),
    prefix: &mut Vec<u64>,
    visited: &mut Vec<((u64, u64), u64)>,
    out: &mut Collector,
    footprint: &mut CodeFootprint,
) {
    let (g, f) = pair;
    // Recorded whether or not the fault is active at this step: an
    // inactive step reads the good tables at `f` directly.
    footprint.record(g, f);
    let step = depth + 1;
    if g == f && model.dead_after(step) {
        // Converged trajectories with the fault dead forever evolve
        // identically: the remaining differences are all zero.
        let row = prefix.clone();
        out.insert(&row);
        return;
    }
    let active = model.active_at(step);
    let mut seen_effects: HashSet<(u64, (u64, u64))> = HashSet::new();
    let mut inputs = Vec::new();
    input_model.inputs_at(g, r, &mut inputs);
    for input in inputs {
        let (fresp, fnext) = if active {
            (bad.response(f, input), bad.next(f, input))
        } else {
            (good.response(f, input), good.next(f, input))
        };
        let d = good.response(g, input) ^ fresp;
        let nx = (good.next(g, input), fnext);
        if !seen_effects.insert((d, nx)) {
            continue;
        }
        prefix[depth] = d;
        if out.prefix_dominated(&prefix[..=depth]) {
            prefix[depth] = 0;
            continue;
        }
        let next_phase = model.phase_at(step + 1);
        if depth + 1 == p || visited.contains(&(nx, next_phase)) {
            let mut row = prefix.clone();
            for slot in row.iter_mut().skip(depth + 1) {
                *slot = 0;
            }
            out.insert(&row);
        } else {
            visited.push((nx, next_phase));
            extend_lockstep_timed(
                good,
                bad,
                model,
                input_model,
                r,
                p,
                depth + 1,
                nx,
                prefix,
                visited,
                out,
                footprint,
            );
            visited.pop();
        }
        prefix[depth] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::collapsed_faults;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn circuit() -> FsmCircuit {
        let fsm = suite::sequence_detector();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    fn build(p: usize) -> (DetectabilityTable, DetectStats) {
        build_opt(p, true)
    }

    /// Unreduced build — the literal Fig. 2 table.
    fn build_raw(p: usize) -> (DetectabilityTable, DetectStats) {
        build_opt(p, false)
    }

    fn build_opt(p: usize, reduce: bool) -> (DetectabilityTable, DetectStats) {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: p,
                reduce,
                ..DetectOptions::default()
            },
        )
        .unwrap()
    }

    fn build_model(p: usize, semantics: Semantics, model: FaultModel) -> DetectabilityTable {
        build_model_opt(p, semantics, model, true)
    }

    fn build_model_opt(
        p: usize,
        semantics: Semantics,
        model: FaultModel,
        reduce: bool,
    ) -> DetectabilityTable {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: p,
                semantics,
                reduce,
                fault_model: model,
                ..DetectOptions::default()
            },
        )
        .unwrap()
        .0
    }

    #[test]
    fn degenerate_models_match_permanent_tensor_exactly() {
        // An SEU that never deasserts, an intermittent that fires every
        // step, and a zero-radius cluster are all the permanent model in
        // disguise; the timed enumerators must reproduce the original
        // tables bit for bit.
        for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
            for p in 1..=3 {
                let permanent = build_model(p, semantics, FaultModel::PermanentStuckAt);
                for model in [
                    FaultModel::TransientSeu {
                        duration: usize::MAX,
                    },
                    FaultModel::Intermittent { period: 1 },
                    FaultModel::MultiBitCluster { radius: 0 },
                ] {
                    let got = build_model(p, semantics, model);
                    assert_eq!(got, permanent, "p={p} {semantics:?} {model}");
                }
            }
        }
    }

    #[test]
    fn transient_dies_on_the_shared_trajectory() {
        // FaultyTrajectory semantics: once a duration-1 SEU deasserts,
        // good and faulty run the same machine from the same state, so
        // every difference after step 1 is zero.
        let table = build_model(
            3,
            Semantics::FaultyTrajectory,
            FaultModel::TransientSeu { duration: 1 },
        );
        assert!(!table.is_empty());
        for row in table.rows() {
            assert_ne!(row.steps[0], 0);
            assert_eq!(
                &row.steps[1..],
                &[0, 0],
                "difference must die with the fault"
            );
        }
    }

    #[test]
    fn transient_divergence_survives_deassert_under_lockstep() {
        // Lockstep semantics remember the corrupted state: some
        // duration-1 SEU activation keeps differing after the window.
        // Built unreduced — dominance reduction prefers the rows that
        // are hardest to detect, which are exactly the zero-suffix ones.
        let table = build_model_opt(
            3,
            Semantics::Lockstep,
            FaultModel::TransientSeu { duration: 1 },
            false,
        );
        assert!(
            table
                .rows()
                .iter()
                .any(|row| row.steps[1..].iter().any(|&d| d != 0)),
            "state-remembered divergence should outlive the activation window"
        );
    }

    #[test]
    fn transient_window_widens_detectability() {
        // A longer activation window can only add erroneous behaviour;
        // at the permanent limit the tensors coincide. Compare raw
        // (unreduced) first-step populations as a monotonicity proxy.
        let short = build_model_opt(
            2,
            Semantics::FaultyTrajectory,
            FaultModel::TransientSeu { duration: 1 },
            false,
        );
        let long = build_model_opt(
            2,
            Semantics::FaultyTrajectory,
            FaultModel::TransientSeu {
                duration: usize::MAX,
            },
            false,
        );
        for row in short.rows() {
            assert!(
                long.rows().iter().any(|l| l.steps[0] == row.steps[0]),
                "permanent tensor lost a first-step difference the SEU has"
            );
        }
    }

    #[test]
    fn fault_model_changes_fingerprint_only_when_not_permanent() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let good = TransitionTables::good(&c);
        let base = |model: FaultModel| {
            fingerprint_base_bytes(
                &good,
                &faults,
                &DetectOptions {
                    fault_model: model,
                    ..DetectOptions::default()
                },
            )
        };
        let permanent = base(FaultModel::PermanentStuckAt);
        assert_eq!(
            permanent,
            fingerprint_base_bytes(&good, &faults, &DetectOptions::default()),
            "permanent model must not perturb pre-model store keys"
        );
        let mut seen = vec![permanent.clone()];
        for model in [
            FaultModel::TransientSeu { duration: 4 },
            FaultModel::TransientSeu { duration: 5 },
            FaultModel::Intermittent { period: 2 },
            FaultModel::MultiBitCluster { radius: 1 },
        ] {
            let bytes = base(model);
            assert!(
                !seen.contains(&bytes),
                "{model} collides with another model"
            );
            seen.push(bytes);
        }
    }

    #[test]
    fn rows_have_nonzero_first_step() {
        let (table, stats) = build(2);
        assert!(stats.rows > 0);
        for row in table.rows() {
            assert_ne!(row.steps[0], 0, "activation step must differ");
            assert_eq!(row.steps.len(), 2);
        }
    }

    #[test]
    fn zero_latency_rejected() {
        let c = circuit();
        let err = DetectabilityTable::build(
            &c,
            &[],
            &DetectOptions {
                latency: 0,
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, DetectError::ZeroLatency);
    }

    #[test]
    fn singleton_masks_cover_everything() {
        // Each row has a nonzero first step, so the n singleton parity
        // functions always cover the table (the paper's q = n fallback).
        let (table, _) = build(3);
        let masks: Vec<u64> = (0..table.num_bits()).map(|b| 1u64 << b).collect();
        assert!(table.all_covered(&masks));
    }

    #[test]
    fn truncation_matches_direct_build_on_raw_tables() {
        let t3 = build_raw(3).0;
        let t1_direct = build_raw(1).0;
        let t2_direct = build_raw(2).0;
        assert_eq!(t3.truncated(1), t1_direct);
        assert_eq!(t3.truncated(2), t2_direct);
        assert_eq!(t3.truncated(3), t3);
    }

    #[test]
    fn reduced_build_matches_offline_reduction_of_raw_build() {
        for p in 1..=3 {
            let online = build(p).0;
            let offline = build_raw(p).0.dominance_reduced();
            assert_eq!(online, offline, "p={p}");
            assert!(online.is_reduced());
        }
    }

    #[test]
    #[should_panic(expected = "unreduced table")]
    fn truncating_reduced_table_panics() {
        let t = build(2).0;
        let _ = t.truncated(1);
    }

    #[test]
    fn more_latency_never_fewer_detection_options() {
        // Any mask covering the p=1 table also covers the p=2 table's
        // first steps; conversely coverage can only grow with p.
        let (t1, _) = build(1);
        let (t2, _) = build(2);
        // A mask covering all rows at p=1 must cover all rows at p=2
        // (every p=2 row's first step equals some p=1 row's step).
        let n = t1.num_bits();
        for mask in 1..(1u64 << n.min(10)) {
            if t1.all_covered(&[mask]) {
                assert!(t2.all_covered(&[mask]), "mask {mask:b} lost coverage");
            }
        }
    }

    #[test]
    fn detected_by_parity_semantics() {
        let row = EcRow {
            steps: vec![0b011, 0b111],
        };
        assert!(!row.detected_by(0b011)); // even overlap at step 1, odd? 2 bits → even; step 2: 2 bits → even
        assert!(row.detected_by(0b001)); // single bit at step 1
        assert!(row.detected_by(0b100)); // only step 2 has bit 2
        assert!(!row.detected_by(0b000));
        assert_eq!(row.any_step_union(), 0b111);
    }

    #[test]
    fn from_rows_validates() {
        let t = DetectabilityTable::from_rows(
            3,
            2,
            vec![EcRow {
                steps: vec![0b101, 0b010],
            }],
        );
        assert_eq!(t.len(), 1);
        assert!(t.entry(0, 0, 0));
        assert!(!t.entry(0, 1, 0));
        assert!(t.entry(0, 1, 1));
    }

    #[test]
    #[should_panic(expected = "row latency mismatch")]
    fn from_rows_rejects_bad_latency() {
        let _ = DetectabilityTable::from_rows(3, 2, vec![EcRow { steps: vec![1] }]);
    }

    #[test]
    fn render_contains_rows() {
        let (t, _) = build(1);
        let text = t.render();
        assert!(text.contains("latency 1"));
        assert!(text.lines().count() >= t.len());
    }

    #[test]
    fn stats_are_consistent() {
        let (t, stats) = build(2);
        assert_eq!(stats.rows, t.len());
        assert!(stats.rows_raw >= stats.rows);
        assert!(stats.activations > 0);
        assert!(stats.faults > stats.untestable_faults);
    }

    #[test]
    fn dominance_reduction_preserves_cover_semantics() {
        let (table, _) = build(3);
        let reduced = table.dominance_reduced();
        assert!(reduced.len() <= table.len());
        // Any mask set covers the reduced table iff it covers the full
        // table — checked over all masks and a few small mask pairs.
        let n = table.num_bits();
        for mask in 1..(1u64 << n.min(8)) {
            assert_eq!(
                table.all_covered(&[mask]),
                reduced.all_covered(&[mask]),
                "mask {mask:b} disagrees"
            );
        }
        for pair in [[0b01u64, 0b10], [0b11, 0b100], [0b101, 0b010]] {
            assert_eq!(table.all_covered(&pair), reduced.all_covered(&pair));
        }
    }

    #[test]
    fn dominance_reduction_drops_supersets() {
        let t = DetectabilityTable::from_rows(
            4,
            3,
            vec![
                EcRow {
                    steps: vec![0b0001, 0, 0],
                },
                EcRow {
                    steps: vec![0b0001, 0b0010, 0],
                }, // superset of {1}
                EcRow {
                    steps: vec![0b0010, 0b0001, 0b0100],
                }, // superset of {1}
                EcRow {
                    steps: vec![0b0100, 0b1000, 0],
                }, // minimal
            ],
        );
        let r = t.dominance_reduced();
        assert_eq!(r.len(), 2);
        // Step-sets are canonicalized (sorted, padded).
        assert!(r.rows().iter().any(|row| row.steps == vec![0b0001, 0, 0]));
        assert!(r
            .rows()
            .iter()
            .any(|row| row.steps == vec![0b0100, 0b1000, 0]));
    }

    #[test]
    fn dominance_reduction_is_order_insensitive() {
        let a = DetectabilityTable::from_rows(
            3,
            2,
            vec![EcRow {
                steps: vec![0b01, 0b10],
            }],
        );
        let b = DetectabilityTable::from_rows(
            3,
            2,
            vec![EcRow {
                steps: vec![0b10, 0b01],
            }],
        );
        assert_eq!(a.dominance_reduced(), b.dominance_reduced());
    }

    #[test]
    fn first_uncovered_early_exit() {
        let t = DetectabilityTable::from_rows(
            3,
            1,
            vec![EcRow { steps: vec![0b001] }, EcRow { steps: vec![0b010] }],
        );
        assert_eq!(t.first_uncovered(&[0b001]), Some(1));
        assert_eq!(t.first_uncovered(&[0b001, 0b010]), None);
    }

    #[test]
    fn build_many_matches_separate_builds() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions::default();
        let many = DetectabilityTable::build_many(&c, &faults, &opts, &[1, 2, 3]).unwrap();
        for (i, p) in [1usize, 2, 3].iter().enumerate() {
            let single = DetectabilityTable::build(
                &c,
                &faults,
                &DetectOptions {
                    latency: *p,
                    ..DetectOptions::default()
                },
            )
            .unwrap();
            assert_eq!(many[i].0, single.0, "table differs at p={p}");
            assert_eq!(many[i].1, single.1, "stats differ at p={p}");
        }
    }

    #[test]
    fn overflowing_tensor_volume_is_a_typed_error() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        // A latency bound so large that m·n·p overflows usize: must be
        // rejected before any enumeration or allocation is attempted.
        let err = DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: usize::MAX / 2,
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, DetectError::TensorTooLarge { latency, .. } if latency == usize::MAX / 2),
            "{err}"
        );
        assert!(err.to_string().contains("overflows"));
    }

    #[test]
    fn near_limit_tensor_volume_is_accepted() {
        // Dims whose product still fits must not trip the guard.
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let ok = DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: 2,
                max_rows: usize::MAX >> 8,
                ..DetectOptions::default()
            },
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn table_serialization_round_trips_bit_exactly() {
        for (reduce, p) in [(true, 1), (true, 3), (false, 2)] {
            let (table, _) = build_opt(p, reduce);
            let bytes = table.to_bytes();
            let back = DetectabilityTable::from_bytes(&bytes).unwrap();
            assert_eq!(back, table);
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn table_deserialization_rejects_garbage_without_panicking() {
        let (table, _) = build(2);
        let bytes = table.to_bytes();
        for cut in 0..bytes.len().min(64) {
            assert!(DetectabilityTable::from_bytes(&bytes[..cut]).is_err());
        }
        assert!(DetectabilityTable::from_bytes(&[0xFF; 40]).is_err());
    }

    #[test]
    fn tick_cap_interrupts_at_fault_boundary_with_checkpoint() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions {
            latency: 2,
            ..DetectOptions::default()
        };
        let budget = Budget::new().with_tick_cap(3);
        let err = DetectabilityTable::build_many_controlled(
            &c,
            &faults,
            &opts,
            &[1, 2],
            BuildControl::new(&budget),
        )
        .unwrap_err();
        match err {
            DetectError::Interrupted {
                interrupted,
                checkpoint,
            } => {
                assert!(interrupted.resumable);
                let ckpt = checkpoint.expect("boundary interrupt carries a checkpoint");
                assert!(ckpt.next_fault() < faults.len());
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn resumed_build_is_bit_identical_to_uninterrupted() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions {
            latency: 3,
            ..DetectOptions::default()
        };
        let latencies = [1usize, 3];
        let baseline = DetectabilityTable::build_many(&c, &faults, &opts, &latencies).unwrap();

        // Interrupt under a series of tick caps, resume with a fresh
        // unlimited budget, and require exact agreement every time.
        for cap in [1u64, 5, 20, 100] {
            let budget = Budget::new().with_tick_cap(cap);
            let ckpt = match DetectabilityTable::build_many_controlled(
                &c,
                &faults,
                &opts,
                &latencies,
                BuildControl::new(&budget),
            ) {
                Ok(results) => {
                    assert_eq!(results, baseline, "cap {cap} finished early?");
                    continue;
                }
                Err(DetectError::Interrupted {
                    checkpoint: Some(c),
                    ..
                }) => *c,
                Err(other) => panic!("cap {cap}: {other:?}"),
            };
            let fresh = Budget::unlimited();
            let mut control = BuildControl::new(&fresh);
            control.resume = Some(ckpt);
            let resumed =
                DetectabilityTable::build_many_controlled(&c, &faults, &opts, &latencies, control)
                    .unwrap();
            assert_eq!(resumed, baseline, "cap {cap} resume diverged");
        }
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_foreign_inputs() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions {
            latency: 2,
            ..DetectOptions::default()
        };
        let budget = Budget::new().with_tick_cap(10);
        let Err(DetectError::Interrupted {
            checkpoint: Some(ckpt),
            ..
        }) = DetectabilityTable::build_many_controlled(
            &c,
            &faults,
            &opts,
            &[2],
            BuildControl::new(&budget),
        )
        else {
            panic!("expected a checkpointed interrupt");
        };
        let bytes = ckpt.to_bytes();
        let back = BuildCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, *ckpt);

        // Same checkpoint, different fault list: typed mismatch.
        let fresh = Budget::unlimited();
        let mut control = BuildControl::new(&fresh);
        control.resume = Some(back);
        let err = DetectabilityTable::build_many_controlled(
            &c,
            &faults[..faults.len() - 1],
            &opts,
            &[2],
            control,
        )
        .unwrap_err();
        assert_eq!(err, DetectError::CheckpointMismatch);
    }

    #[test]
    fn cancellation_mid_build_is_typed_and_not_resumable() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions {
            latency: 2,
            ..DetectOptions::default()
        };
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let err = DetectabilityTable::build_many_controlled(
            &c,
            &faults,
            &opts,
            &[2],
            BuildControl::new(&budget),
        )
        .unwrap_err();
        match err {
            DetectError::Interrupted { interrupted, .. } => {
                assert_eq!(interrupted.kind, ced_runtime::InterruptKind::Cancelled);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn store_replay_is_byte_identical_and_serves_latency_subsets() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions {
            latency: 3,
            ..DetectOptions::default()
        };
        let baseline = DetectabilityTable::build_many(&c, &faults, &opts, &[1, 2, 3]).unwrap();
        let store = Store::in_memory();
        let budget = Budget::unlimited();
        let mut cold_control = BuildControl::new(&budget);
        cold_control.store = Some(&store);
        let cold =
            DetectabilityTable::build_many_controlled(&c, &faults, &opts, &[1, 2, 3], cold_control)
                .unwrap();
        assert_eq!(cold, baseline);
        // Warm: every latency hits; a subset of the swept bounds hits
        // too, without any enumeration.
        let mut warm_control = BuildControl::new(&budget);
        warm_control.store = Some(&store);
        let warm =
            DetectabilityTable::build_many_controlled(&c, &faults, &opts, &[1, 2, 3], warm_control)
                .unwrap();
        assert_eq!(warm, baseline);
        let mut subset_control = BuildControl::new(&budget);
        subset_control.store = Some(&store);
        let subset =
            DetectabilityTable::build_many_controlled(&c, &faults, &opts, &[2], subset_control)
                .unwrap();
        assert_eq!(subset[0], baseline[1]);
        let stats = store.stats();
        let (stage, counters) = &stats.stages[0];
        assert_eq!(stage, TENSOR_STAGE);
        assert_eq!(counters.puts, 3);
        assert_eq!(counters.hits, 4);
        // Byte identity of the artifacts themselves.
        for (pair_cold, pair_warm) in cold.iter().zip(&warm) {
            assert_eq!(pair_cold.0.to_bytes(), pair_warm.0.to_bytes());
            assert_eq!(pair_cold.1, pair_warm.1);
        }
    }

    #[test]
    fn periodic_checkpoints_are_emitted_and_resumable() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let opts = DetectOptions {
            latency: 2,
            ..DetectOptions::default()
        };
        let baseline = DetectabilityTable::build_many(&c, &faults, &opts, &[2]).unwrap();
        let budget = Budget::unlimited();
        let mut seen: Vec<BuildCheckpoint> = Vec::new();
        let mut sink = |c: &BuildCheckpoint| seen.push(c.clone());
        let control = BuildControl {
            budget: &budget,
            resume: None,
            checkpoint_every: 2,
            on_checkpoint: Some(&mut sink),
            pool: None,
            store: None,
            delta: None,
        };
        let full =
            DetectabilityTable::build_many_controlled(&c, &faults, &opts, &[2], control).unwrap();
        assert_eq!(full, baseline);
        assert!(!seen.is_empty(), "no periodic checkpoints emitted");
        // Resuming from any periodic checkpoint reproduces the build.
        let mid = seen[seen.len() / 2].clone();
        let fresh = Budget::unlimited();
        let mut control = BuildControl::new(&fresh);
        control.resume = Some(mid);
        let resumed =
            DetectabilityTable::build_many_controlled(&c, &faults, &opts, &[2], control).unwrap();
        assert_eq!(resumed, baseline);
    }

    #[test]
    fn row_cap_enforced() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let err = DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: 2,
                max_rows: 1,
                ..DetectOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, DetectError::TooManyRows { limit: 1 }));
    }
}
