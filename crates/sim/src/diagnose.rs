//! Post-detection fault diagnosis via syndrome dictionaries.
//!
//! Once the parity checker fires, the natural next question is *which*
//! fault — the classical companion problem to concurrent checking. The
//! checker's observable per cycle is the **syndrome**: the q-bit XOR of
//! predicted and actual parities, i.e. bit `l` = parity of
//! `masks[l] ∩ D` where `D` is the (hardware-semantics) discrepancy of
//! that transition. A [`FaultDictionary`] precomputes every fault's
//! syndrome for every (state, input) transition; diagnosis intersects
//! the candidate sets consistent with a run's observations.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::{suite, encoding, encoded::EncodedFsm};
//! use ced_logic::MinimizeOptions;
//! use ced_sim::diagnose::FaultDictionary;
//! use ced_sim::fault::collapsed_faults;
//!
//! let fsm = suite::serial_adder();
//! let enc = encoding::assign(&fsm, encoding::EncodingStrategy::Natural);
//! let circuit = EncodedFsm::new(fsm, enc)?.synthesize(&MinimizeOptions::default());
//! let faults = collapsed_faults(circuit.netlist());
//! let masks: Vec<u64> = (0..circuit.total_bits()).map(|b| 1 << b).collect();
//! let dict = FaultDictionary::build(&circuit, &faults, &masks);
//! assert_eq!(dict.num_faults(), faults.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::fault::Fault;
use crate::tables::TransitionTables;
use ced_fsm::encoded::FsmCircuit;

/// One observed checker cycle: the machine's (actual) present state,
/// the applied input, and the q-bit syndrome the comparator saw
/// (bit `l` = tree `l` mismatched). A zero syndrome is informative too:
/// it rules out faults that would have fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Present state code at the start of the cycle.
    pub state: u64,
    /// Input applied during the cycle.
    pub input: u64,
    /// Observed syndrome (bit per parity tree).
    pub syndrome: u64,
}

/// Precomputed syndrome tables for a fault list under a parity cover.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    num_inputs: usize,
    /// `tables[f][code << r | input]` = syndrome of fault `f`.
    tables: Vec<Vec<u64>>,
}

impl FaultDictionary {
    /// Builds the dictionary: one gate-accurate syndrome table per
    /// fault (the dominant cost is the per-fault table extraction, the
    /// same work the detectability analysis performs).
    pub fn build(circuit: &FsmCircuit, faults: &[Fault], masks: &[u64]) -> FaultDictionary {
        let good = TransitionTables::good(circuit);
        let r = circuit.num_inputs();
        let s = circuit.state_bits();
        let total = 1usize << (r + s);
        let mut tables = Vec::with_capacity(faults.len());
        for &fault in faults {
            let bad = TransitionTables::faulty(circuit, fault);
            let mut table = vec![0u64; total];
            for code in 0..(1u64 << s) {
                for input in 0..(1u64 << r) {
                    let d = good.response(code, input) ^ bad.response(code, input);
                    let mut syndrome = 0u64;
                    for (l, &m) in masks.iter().enumerate() {
                        if (m & d).count_ones() & 1 == 1 {
                            syndrome |= 1 << l;
                        }
                    }
                    table[((code << r) | input) as usize] = syndrome;
                }
            }
            tables.push(table);
        }
        FaultDictionary {
            num_inputs: r,
            tables,
        }
    }

    /// Number of faults in the dictionary.
    pub fn num_faults(&self) -> usize {
        self.tables.len()
    }

    /// The syndrome fault `f` produces on `(state, input)`.
    pub fn syndrome(&self, fault_index: usize, state: u64, input: u64) -> u64 {
        self.tables[fault_index][((state << self.num_inputs) | input) as usize]
    }

    /// Fault indices consistent with every observation (zero-syndrome
    /// cycles prune candidates that would have fired).
    pub fn diagnose(&self, observations: &[Observation]) -> Vec<usize> {
        (0..self.tables.len())
            .filter(|&f| {
                observations
                    .iter()
                    .all(|o| self.syndrome(f, o.state, o.input) == o.syndrome)
            })
            .collect()
    }

    /// Partitions the fault list into indistinguishability classes:
    /// faults with identical syndrome tables can never be told apart by
    /// this checker, no matter the run.
    pub fn equivalence_classes(&self) -> Vec<Vec<usize>> {
        let mut classes: Vec<(usize, Vec<usize>)> = Vec::new();
        for f in 0..self.tables.len() {
            match classes
                .iter_mut()
                .find(|(rep, _)| self.tables[*rep] == self.tables[f])
            {
                Some((_, members)) => members.push(f),
                None => classes.push((f, vec![f])),
            }
        }
        classes.into_iter().map(|(_, m)| m).collect()
    }

    /// Diagnostic resolution: the average candidate-set size when each
    /// fault is observed over its full syndrome table (lower = sharper
    /// diagnosis; 1.0 = perfect).
    pub fn resolution(&self) -> f64 {
        if self.tables.is_empty() {
            return 1.0;
        }
        let classes = self.equivalence_classes();
        let total: usize = classes.iter().map(|c| c.len() * c.len()).sum();
        total as f64 / self.tables.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::SimRng;
    use crate::fault::collapsed_faults;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn circuit() -> FsmCircuit {
        let fsm = suite::worked_example();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    fn singleton_masks(c: &FsmCircuit) -> Vec<u64> {
        (0..c.total_bits()).map(|b| 1 << b).collect()
    }

    /// Simulates `fault` for `steps` cycles, recording observations.
    fn observe(
        c: &FsmCircuit,
        fault: Fault,
        masks: &[u64],
        steps: usize,
        seed: u64,
    ) -> Vec<Observation> {
        let good = TransitionTables::good(c);
        let bad = TransitionTables::faulty(c, fault);
        let r = c.num_inputs();
        let mut rng = SimRng::new(seed);
        let mut state = c.reset_code();
        let mut out = Vec::new();
        for _ in 0..steps {
            let input = rng.next_u64() & ((1 << r) - 1);
            let d = good.response(state, input) ^ bad.response(state, input);
            let mut syndrome = 0u64;
            for (l, &m) in masks.iter().enumerate() {
                if (m & d).count_ones() & 1 == 1 {
                    syndrome |= 1 << l;
                }
            }
            out.push(Observation {
                state,
                input,
                syndrome,
            });
            state = bad.next(state, input);
        }
        out
    }

    #[test]
    fn true_fault_is_always_a_candidate() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let masks = singleton_masks(&c);
        let dict = FaultDictionary::build(&c, &faults, &masks);
        for (i, &f) in faults.iter().enumerate().take(15) {
            let obs = observe(&c, f, &masks, 60, 17 ^ i as u64);
            let candidates = dict.diagnose(&obs);
            assert!(candidates.contains(&i), "fault {f} excluded by its own run");
        }
    }

    #[test]
    fn observations_narrow_the_candidate_set() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let masks = singleton_masks(&c);
        let dict = FaultDictionary::build(&c, &faults, &masks);
        let f = faults[1];
        let short = dict.diagnose(&observe(&c, f, &masks, 3, 5));
        let long = dict.diagnose(&observe(&c, f, &masks, 120, 5));
        assert!(long.len() <= short.len());
        assert!(!long.is_empty());
    }

    #[test]
    fn equivalence_classes_partition_the_list() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let masks = singleton_masks(&c);
        let dict = FaultDictionary::build(&c, &faults, &masks);
        let classes = dict.equivalence_classes();
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, faults.len());
        assert!(dict.resolution() >= 1.0);
    }

    #[test]
    fn richer_compaction_sharpens_resolution() {
        // Full singleton monitoring distinguishes at least as well as a
        // single all-ones parity.
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let fine = FaultDictionary::build(&c, &faults, &singleton_masks(&c));
        let coarse = FaultDictionary::build(&c, &faults, &[(1 << c.total_bits()) - 1]);
        assert!(fine.resolution() <= coarse.resolution());
    }

    #[test]
    fn fault_free_run_diagnoses_nothing_testable() {
        // All-zero syndromes are consistent only with faults silent on
        // the visited transitions.
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let masks = singleton_masks(&c);
        let dict = FaultDictionary::build(&c, &faults, &masks);
        // Observations from the fault-free machine: zero syndromes.
        let good = TransitionTables::good(&c);
        let mut rng = SimRng::new(2);
        let mut state = c.reset_code();
        let mut obs = Vec::new();
        for _ in 0..200 {
            let input = rng.next_u64() & ((1 << c.num_inputs()) - 1);
            obs.push(Observation {
                state,
                input,
                syndrome: 0,
            });
            state = good.next(state, input);
        }
        let survivors = dict.diagnose(&obs);
        // Any survivor must be silent on every visited transition.
        for f in survivors {
            for o in &obs {
                assert_eq!(dict.syndrome(f, o.state, o.input), 0);
            }
        }
    }
}
