//! Sequential equivalence checking between synthesized machines.
//!
//! Two [`FsmCircuit`]s over the same input/output interface are
//! equivalent iff, from their reset states, every input sequence
//! produces the same output sequence. Checked exactly by breadth-first
//! search over the reachable product state space (both machines are
//! table-extracted first, so the check is gate-accurate). Used to
//! validate that re-encodings, minimization and export round-trips
//! preserve behaviour — and handy for users comparing their own
//! implementations.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::{suite, encoding, encoded::EncodedFsm};
//! use ced_logic::MinimizeOptions;
//! use ced_sim::equiv::check_equivalence;
//!
//! let fsm = suite::serial_adder();
//! let a = EncodedFsm::new(fsm.clone(), encoding::assign(&fsm, encoding::EncodingStrategy::Natural))?
//!     .synthesize(&MinimizeOptions::default());
//! let b = EncodedFsm::new(fsm.clone(), encoding::assign(&fsm, encoding::EncodingStrategy::Gray))?
//!     .synthesize(&MinimizeOptions::default());
//! assert!(check_equivalence(&a, &b).is_equivalent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::tables::TransitionTables;
use ced_fsm::encoded::FsmCircuit;
use std::collections::{HashSet, VecDeque};

/// Result of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// The machines agree on every reachable input sequence.
    Equivalent {
        /// Number of reachable product states explored.
        explored: usize,
    },
    /// A distinguishing input sequence was found.
    Inequivalent {
        /// Input sequence (one input per cycle) exposing the mismatch.
        counterexample: Vec<u64>,
        /// Output of the first machine on the last cycle.
        output_a: u64,
        /// Output of the second machine on the last cycle.
        output_b: u64,
    },
    /// The machines' interfaces differ (input/output bit counts).
    InterfaceMismatch,
}

impl EquivalenceResult {
    /// True iff the machines were proven equivalent.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent { .. })
    }
}

/// Exhaustively checks output equivalence of two synthesized machines
/// by product-machine BFS (shortest counterexample first).
pub fn check_equivalence(a: &FsmCircuit, b: &FsmCircuit) -> EquivalenceResult {
    if a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs() {
        return EquivalenceResult::InterfaceMismatch;
    }
    let r = a.num_inputs();
    let ta = TransitionTables::good(a);
    let tb = TransitionTables::good(b);

    // BFS over (state_a, state_b) with parent pointers for the trace.
    let start = (a.reset_code(), b.reset_code());
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    seen.insert(start);
    // (pair, parent index in `log`, input that led here)
    let mut log: Vec<((u64, u64), usize, u64)> = vec![(start, usize::MAX, 0)];
    let mut queue: VecDeque<usize> = VecDeque::new();
    queue.push_back(0);

    while let Some(idx) = queue.pop_front() {
        let ((sa, sb), _, _) = log[idx];
        for input in 0..(1u64 << r) {
            let oa = ta.output(sa, input);
            let ob = tb.output(sb, input);
            if oa != ob {
                // Reconstruct the path, then append the failing input.
                let mut path = vec![input];
                let mut cur = idx;
                while log[cur].1 != usize::MAX {
                    path.push(log[cur].2);
                    cur = log[cur].1;
                }
                path.reverse();
                return EquivalenceResult::Inequivalent {
                    counterexample: path,
                    output_a: oa,
                    output_b: ob,
                };
            }
            let next = (ta.next(sa, input), tb.next(sb, input));
            if seen.insert(next) {
                log.push((next, idx, input));
                queue.push_back(log.len() - 1);
            }
        }
    }
    EquivalenceResult::Equivalent {
        explored: seen.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::minimize::minimize_states;
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn synthesize(fsm: &ced_fsm::Fsm, strategy: EncodingStrategy) -> FsmCircuit {
        let mut fsm = fsm.clone();
        if fsm.check_complete().is_err() {
            fsm.complete_with_self_loops();
        }
        let enc = assign(&fsm, strategy);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn different_encodings_are_equivalent() {
        for fsm in [suite::sequence_detector(), suite::serial_adder()] {
            let a = synthesize(&fsm, EncodingStrategy::Natural);
            let b = synthesize(&fsm, EncodingStrategy::Gray);
            let c = synthesize(&fsm, EncodingStrategy::Adjacency);
            assert!(check_equivalence(&a, &b).is_equivalent(), "{}", fsm.name());
            assert!(check_equivalence(&a, &c).is_equivalent(), "{}", fsm.name());
        }
    }

    #[test]
    fn minimization_preserves_behaviour_gate_accurately() {
        let mut fsm = suite::traffic_light();
        fsm.complete_with_self_loops();
        let min = minimize_states(&fsm).unwrap();
        let a = synthesize(&fsm, EncodingStrategy::Natural);
        let b = synthesize(&min, EncodingStrategy::Natural);
        assert!(check_equivalence(&a, &b).is_equivalent());
    }

    #[test]
    fn different_machines_distinguished_with_shortest_trace() {
        let a = synthesize(&suite::sequence_detector(), EncodingStrategy::Natural);
        // A machine that never raises its output.
        let mut quiet = ced_fsm::Fsm::new("quiet", 1, 1);
        let s = quiet.add_state("s");
        quiet
            .add_transition("-".parse().unwrap(), s, s, vec![ced_fsm::OutputValue::Zero])
            .unwrap();
        let b = synthesize(&quiet, EncodingStrategy::Natural);
        match check_equivalence(&a, &b) {
            EquivalenceResult::Inequivalent {
                counterexample,
                output_a,
                output_b,
            } => {
                // Shortest distinguishing stream for 1011-detection is
                // the 4-symbol sequence itself.
                assert_eq!(counterexample, vec![1, 0, 1, 1]);
                assert_eq!(output_a, 1);
                assert_eq!(output_b, 0);
            }
            other => panic!("expected inequivalence, got {other:?}"),
        }
    }

    #[test]
    fn interface_mismatch_detected() {
        let a = synthesize(&suite::sequence_detector(), EncodingStrategy::Natural);
        let b = synthesize(&suite::serial_adder(), EncodingStrategy::Natural);
        assert_eq!(
            check_equivalence(&a, &b),
            EquivalenceResult::InterfaceMismatch
        );
    }

    #[test]
    fn self_equivalence_explores_reachable_pairs_only() {
        let a = synthesize(&suite::traffic_light(), EncodingStrategy::Natural);
        match check_equivalence(&a, &a) {
            EquivalenceResult::Equivalent { explored } => {
                // Diagonal pairs of the 3 reachable states.
                assert_eq!(explored, 3);
            }
            other => panic!("{other:?}"),
        }
    }
}
