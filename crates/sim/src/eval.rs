//! Bit-parallel fault simulation primitives.
//!
//! Evaluates a combinational netlist under an injected stuck-at fault,
//! 64 patterns per pass (parallel-pattern single-fault propagation).
//! The forced net keeps its stuck value regardless of its driver.

use crate::fault::Fault;
use ced_logic::gate::GateKind;
use ced_logic::netlist::Netlist;
use ced_runtime::{Budget, Interrupted};

/// Evaluates all nets with `fault` injected, 64 patterns at once,
/// reusing `values` as scratch (resized as needed).
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the netlist's input count.
pub fn eval_words_faulty_into(
    netlist: &Netlist,
    inputs: &[u64],
    fault: Fault,
    values: &mut Vec<u64>,
) {
    assert_eq!(inputs.len(), netlist.num_inputs(), "input arity mismatch");
    let gates = netlist.gates();
    values.clear();
    values.resize(gates.len(), 0);
    let forced = fault.forced_word();
    let fidx = fault.net.index();
    for (i, g) in gates.iter().enumerate() {
        let v = match g.kind {
            GateKind::Input => inputs[i],
            kind => {
                let a = values[g.fanin[0].index()];
                let b = values[g.fanin[1].index()];
                kind.eval(a, b)
            }
        };
        values[i] = if i == fidx { forced } else { v };
    }
}

/// [`eval_words_faulty_into`] under a [`Budget`]: charges one work
/// unit per pass and checks the budget *before* evaluating, so a
/// driver loop issuing many passes (fault campaigns, transition-table
/// sweeps) observes cancellation between passes without any check
/// inside the gate loop itself.
///
/// # Errors
///
/// The budget's interruption; `values` is untouched in that case.
///
/// # Panics
///
/// See [`eval_words_faulty_into`].
pub fn eval_words_faulty_budgeted_into(
    netlist: &Netlist,
    inputs: &[u64],
    fault: Fault,
    values: &mut Vec<u64>,
    budget: &Budget,
) -> Result<(), Interrupted> {
    budget.check("eval:faulty-pass")?;
    budget.charge(1);
    eval_words_faulty_into(netlist, inputs, fault, values);
    Ok(())
}

/// Evaluates all nets with every fault of `faults` injected at once,
/// 64 patterns per pass — the multi-bit generalization of
/// [`eval_words_faulty_into`] for spatially-clustered faults. Each
/// listed net is forced to its stuck value regardless of its driver;
/// with a single-element list the result is identical to the
/// single-fault evaluator.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the netlist's input count.
pub fn eval_words_multi_faulty_into(
    netlist: &Netlist,
    inputs: &[u64],
    faults: &[Fault],
    values: &mut Vec<u64>,
) {
    assert_eq!(inputs.len(), netlist.num_inputs(), "input arity mismatch");
    let gates = netlist.gates();
    values.clear();
    values.resize(gates.len(), 0);
    for (i, g) in gates.iter().enumerate() {
        let v = match g.kind {
            GateKind::Input => inputs[i],
            kind => {
                let a = values[g.fanin[0].index()];
                let b = values[g.fanin[1].index()];
                kind.eval(a, b)
            }
        };
        // Clusters are tiny (2·radius + 1 nets), so a linear scan beats
        // any per-gate lookup structure.
        values[i] = match faults.iter().find(|f| f.net.index() == i) {
            Some(f) => f.forced_word(),
            None => v,
        };
    }
}

/// Faulty primary-output words for 64 patterns.
pub fn eval_outputs_faulty(netlist: &Netlist, inputs: &[u64], fault: Fault) -> Vec<u64> {
    let mut values = Vec::new();
    eval_words_faulty_into(netlist, inputs, fault, &mut values);
    netlist
        .outputs()
        .iter()
        .map(|o| values[o.index()])
        .collect()
}

/// For 64 patterns at once, the word-mask of patterns on which the
/// faulty netlist's outputs differ from the fault-free ones — the
/// bit-parallel primitive behind fault-injection campaigns on the
/// checker hardware itself (a fault is behaviourally silent on a
/// pattern iff its bit is clear).
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the netlist's input count.
pub fn faulty_output_divergence(netlist: &Netlist, inputs: &[u64], fault: Fault) -> u64 {
    let good = netlist.eval_outputs_words(inputs);
    let bad = eval_outputs_faulty(netlist, inputs, fault);
    good.iter()
        .zip(&bad)
        .fold(0u64, |acc, (g, b)| acc | (g ^ b))
}

/// Single-pattern faulty evaluation (tests and examples).
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the netlist's input count.
pub fn eval_single_faulty(netlist: &Netlist, inputs: &[bool], fault: Fault) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| u64::from(b)).collect();
    eval_outputs_faulty(netlist, &words, fault)
        .into_iter()
        .map(|w| w & 1 == 1)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_logic::netlist::{NetId, NetlistBuilder};

    fn and_netlist() -> (Netlist, NetId, NetId, NetId) {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let f = b.and(x, y);
        b.mark_output(f);
        (b.finish(), x, y, f)
    }

    #[test]
    fn stuck_output_overrides_logic() {
        let (n, _, _, f) = and_netlist();
        let sa0 = Fault::new(f, false);
        let sa1 = Fault::new(f, true);
        assert_eq!(eval_single_faulty(&n, &[true, true], sa0), vec![false]);
        assert_eq!(eval_single_faulty(&n, &[false, false], sa1), vec![true]);
    }

    #[test]
    fn stuck_input_propagates() {
        let (n, x, _, _) = and_netlist();
        let sa1 = Fault::new(x, true);
        // x stuck at 1: output = y.
        assert_eq!(eval_single_faulty(&n, &[false, true], sa1), vec![true]);
        assert_eq!(eval_single_faulty(&n, &[false, false], sa1), vec![false]);
    }

    #[test]
    fn fault_free_patterns_unaffected_elsewhere() {
        let (n, _, y, f) = and_netlist();
        // Fault on y does not change behaviour when y already has the
        // stuck value.
        let sa0 = Fault::new(y, false);
        assert_eq!(eval_single_faulty(&n, &[true, false], sa0), vec![false]);
        // Downstream of the fault, the good and faulty values coincide
        // when the stuck value matches.
        let good = n.eval_single(&[true, false]);
        assert_eq!(
            eval_single_faulty(&n, &[true, false], Fault::new(f, false)),
            good
        );
    }

    #[test]
    fn divergence_word_marks_exactly_the_differing_patterns() {
        let (n, x, _, f) = and_netlist();
        // All four input patterns in one word: pattern m has x = bit 0
        // of m, y = bit 1 of m.
        let inputs = vec![0b1010, 0b1100];
        // x stuck-at-1: output becomes y, differing only where x=0, y=1
        // (pattern 2).
        assert_eq!(
            faulty_output_divergence(&n, &inputs, Fault::new(x, true)),
            0b0100
        );
        // Output stuck-at-0: differs only where the AND is 1 (pattern 3).
        assert_eq!(
            faulty_output_divergence(&n, &inputs, Fault::new(f, false)),
            0b1000
        );
    }

    #[test]
    fn multi_fault_injection_forces_every_listed_net() {
        let (n, x, y, f) = and_netlist();
        let mut values = Vec::new();
        // x sa1 and y sa1 together: output is 1 everywhere.
        eval_words_multi_faulty_into(
            &n,
            &[0b00, 0b00],
            &[Fault::new(x, true), Fault::new(y, true)],
            &mut values,
        );
        assert_eq!(values[f.index()] & 0b11, 0b11);
        // A singleton list matches the single-fault evaluator exactly.
        let mut single = Vec::new();
        eval_words_faulty_into(&n, &[0b10, 0b01], Fault::new(x, true), &mut single);
        eval_words_multi_faulty_into(&n, &[0b10, 0b01], &[Fault::new(x, true)], &mut values);
        assert_eq!(values, single);
    }

    #[test]
    fn word_parallel_matches_single_pattern() {
        let mut b = NetlistBuilder::new(3);
        let i: Vec<NetId> = (0..3).map(|k| b.input(k)).collect();
        let t = b.xor(i[0], i[1]);
        let g = b.or(t, i[2]);
        b.mark_output(g);
        b.mark_output(t);
        let n = b.finish();
        let fault = Fault::new(t, true);
        let mut inputs = vec![0u64; 3];
        for m in 0..8u64 {
            for v in 0..3 {
                if (m >> v) & 1 == 1 {
                    inputs[v] |= 1 << m;
                }
            }
        }
        let words = eval_outputs_faulty(&n, &inputs, fault);
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|v| (m >> v) & 1 == 1).collect();
            let single = eval_single_faulty(&n, &bits, fault);
            for (o, w) in words.iter().enumerate() {
                assert_eq!((w >> m) & 1 == 1, single[o], "pattern {m} output {o}");
            }
        }
    }
}
