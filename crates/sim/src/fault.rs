//! Fault models: the single stuck-at list plus its generalizations.
//!
//! The paper evaluates with stuck-at faults as the error source ("the
//! stuck-at fault model has been used as the source of errors") while
//! noting the method accepts any restricted error model. Faults are
//! placed on every primary input and every gate output of the mapped
//! next-state/output network, both polarities — the classic full
//! single-stuck-line list — with light structural collapsing for
//! inverter/buffer chains.
//!
//! Beyond the paper's permanent model, [`FaultModel`] describes *when*
//! and *how widely* a fault seeded on a net asserts: transient SEUs
//! with a bounded activation window, intermittent faults recurring
//! with a fixed period, and spatially-adjacent multi-bit clusters (the
//! SCFI attacker shape). Every layer of the pipeline — tensor
//! construction, injection campaigns, certification, campaign suites —
//! accepts a model and defaults to [`FaultModel::PermanentStuckAt`],
//! which is bit-for-bit the original behaviour.

use ced_logic::gate::GateKind;
use ced_logic::netlist::{NetId, Netlist};
use ced_runtime::{Budget, ByteReader, ByteWriter, CheckpointError, Interrupted};
use std::fmt;

/// A single stuck-at fault on one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The faulted net (primary input or gate output).
    pub net: NetId,
    /// Stuck value: `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_at: bool,
}

impl Fault {
    /// Convenience constructor.
    pub fn new(net: NetId, stuck_at: bool) -> Fault {
        Fault { net, stuck_at }
    }

    /// The forced word value of the faulted net.
    pub fn forced_word(self) -> u64 {
        if self.stuck_at {
            u64::MAX
        } else {
            0
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.net, u8::from(self.stuck_at))
    }
}

/// How a fault seeded on one net behaves over time and space.
///
/// Every analysis is parameterized by a model; the default,
/// [`FaultModel::PermanentStuckAt`], reproduces the paper's setup
/// bit-for-bit. Activation steps are 1-indexed: step 1 is the
/// activation cycle (the first cycle the fault asserts and produces a
/// response difference), matching the error-detectability tensor's
/// step axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// The paper's model: the stuck line asserts on every cycle.
    #[default]
    PermanentStuckAt,
    /// A single-event upset: the fault asserts for `duration` cycles
    /// starting at activation, then disappears. "Undetected" under this
    /// model splits into *escaped this activation* (the window closed
    /// silently) rather than the paper's permanent "undetectable";
    /// use `usize::MAX` for an unbounded window (≡ permanent).
    TransientSeu {
        /// Cycles the fault stays asserted (`≥ 1`).
        duration: usize,
    },
    /// A recurring fault: asserts on the activation cycle and then
    /// every `period`-th cycle after it (`period = 1` ≡ permanent).
    Intermittent {
        /// Cycles between assertions (`≥ 1`).
        period: usize,
    },
    /// An adversarial multi-bit glitch: every non-constant net whose
    /// index is within `radius` of the seeded net is stuck at the same
    /// polarity, permanently (`radius = 0` ≡ single stuck-at).
    MultiBitCluster {
        /// Net-index adjacency radius of the cluster.
        radius: usize,
    },
}

impl FaultModel {
    /// `true` for the default permanent single stuck-at model — the
    /// only model whose artifacts, fingerprints and reports must stay
    /// byte-identical to the pre-model pipeline.
    pub fn is_permanent(self) -> bool {
        self == FaultModel::PermanentStuckAt
    }

    /// `true` when the injected fault does not vary over time, so the
    /// time-invariant faulty transition tables describe every cycle.
    pub fn time_invariant(self) -> bool {
        matches!(
            self,
            FaultModel::PermanentStuckAt | FaultModel::MultiBitCluster { .. }
        )
    }

    /// Whether the fault asserts on 1-indexed `step` of its activation
    /// window. Step 1 is asserted under every model.
    pub fn active_at(self, step: usize) -> bool {
        debug_assert!(step >= 1, "activation steps are 1-indexed");
        match self {
            FaultModel::PermanentStuckAt | FaultModel::MultiBitCluster { .. } => true,
            FaultModel::TransientSeu { duration } => step <= duration,
            FaultModel::Intermittent { period } => (step - 1).is_multiple_of(period.max(1)),
        }
    }

    /// The fault-automaton phase at 1-indexed `step`: two occurrences
    /// of the same machine state at steps with equal phase behave
    /// identically forever after, which is what makes loop cuts in the
    /// path enumeration and node reuse in the certification BFS sound.
    pub fn phase_at(self, step: usize) -> u64 {
        debug_assert!(step >= 1, "activation steps are 1-indexed");
        match self {
            FaultModel::PermanentStuckAt | FaultModel::MultiBitCluster { .. } => 0,
            // Saturates one past the window: every post-window step is
            // equivalent (the fault never returns).
            FaultModel::TransientSeu { duration } => step.min(duration.saturating_add(1)) as u64,
            FaultModel::Intermittent { period } => ((step - 1) % period.max(1)) as u64,
        }
    }

    /// `true` when the fault is gone for good from `step` on (no later
    /// step can assert it). Never true for permanent, intermittent or
    /// cluster faults.
    pub fn dead_after(self, step: usize) -> bool {
        match self {
            FaultModel::TransientSeu { duration } => step > duration,
            _ => false,
        }
    }

    /// The set of nets a fault seeded at `seed` forces while asserted:
    /// the seed alone for single-net models, the spatial cluster for
    /// [`FaultModel::MultiBitCluster`] (seed polarity on every
    /// non-constant net within `radius`, ascending net order).
    pub fn expand(self, seed: Fault, netlist: &Netlist) -> Vec<Fault> {
        match self {
            FaultModel::MultiBitCluster { radius } => {
                let gates = netlist.gates();
                let center = seed.net.index();
                let lo = center.saturating_sub(radius);
                let hi = (center + radius).min(gates.len().saturating_sub(1));
                (lo..=hi)
                    .filter(|&i| !matches!(gates[i].kind, GateKind::Const0 | GateKind::Const1))
                    .map(|i| Fault::new(NetId(i as u32), seed.stuck_at))
                    .collect()
            }
            _ => vec![seed],
        }
    }

    /// Canonical textual label — also the CLI `--fault-model` syntax:
    /// `permanent`, `transient:D`, `intermittent:K`, `multibit:R`.
    pub fn label(self) -> String {
        match self {
            FaultModel::PermanentStuckAt => "permanent".into(),
            FaultModel::TransientSeu { duration } => format!("transient:{duration}"),
            FaultModel::Intermittent { period } => format!("intermittent:{period}"),
            FaultModel::MultiBitCluster { radius } => format!("multibit:{radius}"),
        }
    }

    /// Parses a [`FaultModel::label`]-shaped string.
    ///
    /// # Errors
    ///
    /// A usage message naming the accepted forms and bounds.
    pub fn parse(s: &str) -> Result<FaultModel, String> {
        let usage = || {
            format!(
                "unknown fault model `{s}` (expected permanent, transient:D, \
                 intermittent:K, or multibit:R)"
            )
        };
        if s == "permanent" {
            return Ok(FaultModel::PermanentStuckAt);
        }
        let (kind, arg) = s.split_once(':').ok_or_else(usage)?;
        let n: usize = arg.parse().map_err(|_| usage())?;
        match kind {
            "transient" => {
                if n == 0 {
                    return Err("transient duration must be at least 1 cycle".into());
                }
                Ok(FaultModel::TransientSeu { duration: n })
            }
            "intermittent" => {
                if n == 0 {
                    return Err("intermittent period must be at least 1 cycle".into());
                }
                Ok(FaultModel::Intermittent { period: n })
            }
            "multibit" => Ok(FaultModel::MultiBitCluster { radius: n }),
            _ => Err(usage()),
        }
    }

    /// Serializes the model (tag + parameter) for fingerprints and
    /// checkpoint payloads. Callers keying store artifacts must only
    /// append this for non-permanent models, so permanent keys stay
    /// byte-identical to the pre-model format.
    pub fn write(self, w: &mut ByteWriter) {
        let (tag, param) = match self {
            FaultModel::PermanentStuckAt => (0u8, 0usize),
            FaultModel::TransientSeu { duration } => (1, duration),
            FaultModel::Intermittent { period } => (2, period),
            FaultModel::MultiBitCluster { radius } => (3, radius),
        };
        w.u8(tag);
        w.usize(param);
    }

    /// Deserializes a payload written by [`FaultModel::write`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on an unknown tag or invalid parameter.
    pub fn read(r: &mut ByteReader<'_>) -> Result<FaultModel, CheckpointError> {
        let tag = r.u8()?;
        let param = r.usize()?;
        match (tag, param) {
            (0, _) => Ok(FaultModel::PermanentStuckAt),
            (1, d) if d >= 1 => Ok(FaultModel::TransientSeu { duration: d }),
            (2, k) if k >= 1 => Ok(FaultModel::Intermittent { period: k }),
            (3, radius) => Ok(FaultModel::MultiBitCluster { radius }),
            (t, p) => Err(CheckpointError::Corrupt(format!(
                "bad fault model tag {t} (param {p})"
            ))),
        }
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Enumerates the full uncollapsed fault list: stuck-at-0 and stuck-at-1
/// on every net (primary inputs and gate outputs; constants excluded —
/// a stuck constant is either redundant or equivalent to the opposite
/// constant gate's fault, which is not a physical line here).
pub fn all_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(netlist.gates().len() * 2);
    for (i, g) in netlist.gates().iter().enumerate() {
        if matches!(g.kind, GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        let net = NetId(i as u32);
        faults.push(Fault::new(net, false));
        faults.push(Fault::new(net, true));
    }
    faults
}

/// Structurally collapsed fault list: the representatives of
/// [`collapse_classes`], in the same order.
///
/// Rules applied (standard equivalence collapsing):
///
/// * a fault on the output of a `NOT` is equivalent to the opposite
///   fault on its fanin when the fanin feeds only this gate — the output
///   faults are dropped;
/// * a fault on the output of a `BUF` is equivalent to the same fault on
///   its single-fanout fanin — dropped likewise.
///
/// Deeper dominance collapsing is intentionally left out: the
/// detectability analysis deduplicates erroneous cases anyway, so
/// collapsing only saves simulation time.
pub fn collapsed_faults(netlist: &Netlist) -> Vec<Fault> {
    collapse_classes(netlist)
        .into_iter()
        .map(|(rep, _)| rep)
        .collect()
}

/// Structural equivalence collapsing with the classes kept: each entry
/// maps a representative fault to the full set of uncollapsed faults it
/// stands for (itself included, ascending net order).
///
/// The representative sequence is exactly [`collapsed_faults`]; the
/// class union is exactly [`all_faults`], with every class disjoint —
/// nothing is silently dropped, which matters to consumers that need
/// the uncollapsed universe back (spatial multi-bit cluster seeding,
/// per-fault accounting, diagnosis).
pub fn collapse_classes(netlist: &Netlist) -> Vec<(Fault, Vec<Fault>)> {
    let gates = netlist.gates();
    // Fanout counts.
    let mut fanout = vec![0usize; gates.len()];
    for g in gates {
        for k in 0..g.kind.arity() {
            fanout[g.fanin[k].index()] += 1;
        }
    }
    for o in netlist.outputs() {
        fanout[o.index()] += 1;
    }

    let collapsible = |i: usize| {
        let g = &gates[i];
        matches!(g.kind, GateKind::Not | GateKind::Buf)
            && fanout[g.fanin[0].index()] == 1
            && !matches!(
                gates[g.fanin[0].index()].kind,
                GateKind::Const0 | GateKind::Const1
            )
    };

    // Chase each collapsible gate to its non-collapsible root,
    // accumulating the polarity flips of the inverters on the way.
    // Fanins precede their gate in the netlist order, so one forward
    // pass resolves chains of any length.
    let mut root: Vec<(usize, bool)> = (0..gates.len()).map(|i| (i, false)).collect();
    for (i, g) in gates.iter().enumerate() {
        if collapsible(i) {
            let (r, flip) = root[g.fanin[0].index()];
            root[i] = (r, flip ^ matches!(g.kind, GateKind::Not));
        }
    }

    let mut members: Vec<[Vec<Fault>; 2]> = vec![[Vec::new(), Vec::new()]; gates.len()];
    for (i, g) in gates.iter().enumerate() {
        if matches!(g.kind, GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        let (r, flip) = root[i];
        for stuck_at in [false, true] {
            members[r][usize::from(stuck_at ^ flip)].push(Fault::new(NetId(i as u32), stuck_at));
        }
    }

    let mut classes = Vec::new();
    for (i, g) in gates.iter().enumerate() {
        if matches!(g.kind, GateKind::Const0 | GateKind::Const1) || collapsible(i) {
            continue;
        }
        let net = NetId(i as u32);
        for stuck_at in [false, true] {
            let mut class = std::mem::take(&mut members[i][usize::from(stuck_at)]);
            class.sort_unstable();
            classes.push((Fault::new(net, stuck_at), class));
        }
    }
    classes
}

/// Enumerates a fault list under a [`Budget`]: [`all_faults`] or
/// [`collapsed_faults`] with one work unit charged per gate and a
/// budget check per 1024 gates, so a pathological netlist cannot stall
/// the campaign set-up phase past its deadline.
///
/// # Errors
///
/// The budget's interruption (never resumable: the list is cheap to
/// re-enumerate).
pub fn fault_list_budgeted(
    netlist: &Netlist,
    collapse: bool,
    budget: &Budget,
) -> Result<Vec<Fault>, Interrupted> {
    let gates = netlist.gates().len();
    for start in (0..gates).step_by(1024) {
        budget.charge((gates - start).min(1024) as u64);
        budget.check("faults:enumerate")?;
    }
    Ok(if collapse {
        collapsed_faults(netlist)
    } else {
        all_faults(netlist)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_logic::netlist::NetlistBuilder;

    #[test]
    fn all_faults_counts_both_polarities() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let f = b.and(x, y);
        b.mark_output(f);
        let n = b.finish();
        let faults = all_faults(&n);
        // 2 inputs + 1 gate = 3 nets × 2 polarities.
        assert_eq!(faults.len(), 6);
    }

    #[test]
    fn constants_carry_no_faults() {
        let mut b = NetlistBuilder::new(1);
        let c = b.const1();
        b.mark_output(c);
        b.mark_output(b.input(0));
        let n = b.finish();
        let faults = all_faults(&n);
        // Only the primary input net is faultable.
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn inverter_chain_collapses() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let a = b.and(x, y);
        // NOT fed only by the AND: its output faults are equivalent to
        // the AND's (opposite polarity) and are dropped.
        let inv = b.not(a);
        b.mark_output(inv);
        let n = b.finish();
        let all = all_faults(&n);
        let collapsed = collapsed_faults(&n);
        assert_eq!(all.len(), 8);
        assert_eq!(collapsed.len(), 6);
    }

    #[test]
    fn inverter_with_shared_fanin_not_collapsed() {
        let mut b = NetlistBuilder::new(1);
        let x = b.input(0);
        let inv = b.not(x);
        b.mark_output(inv);
        b.mark_output(x); // x has fanout 2 (inv + output)
        let n = b.finish();
        let collapsed = collapsed_faults(&n);
        // Both x and inv keep their faults.
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn display_format() {
        let f = Fault::new(NetId(3), true);
        assert_eq!(f.to_string(), "n3/sa1");
        assert_eq!(f.forced_word(), u64::MAX);
        assert_eq!(Fault::new(NetId(3), false).forced_word(), 0);
    }

    fn chain_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let a = b.and(x, y);
        let inv = b.not(a); // collapsible onto the AND
        b.mark_output(inv);
        b.finish()
    }

    #[test]
    fn collapse_classes_partition_the_uncollapsed_list() {
        let n = chain_netlist();
        let classes = collapse_classes(&n);
        let reps: Vec<Fault> = classes.iter().map(|(r, _)| *r).collect();
        assert_eq!(reps, collapsed_faults(&n));
        let mut union: Vec<Fault> = classes.iter().flat_map(|(_, c)| c.clone()).collect();
        union.sort_unstable();
        let mut all = all_faults(&n);
        all.sort_unstable();
        assert_eq!(union, all, "classes must partition the full list");
        // Each class contains its own representative.
        for (rep, class) in &classes {
            assert!(class.contains(rep), "{rep} missing from its class");
        }
    }

    #[test]
    fn collapsed_inverter_lands_in_opposite_polarity_class() {
        let n = chain_netlist();
        let classes = collapse_classes(&n);
        // The AND drives only the NOT, so the NOT's sa0 is in the AND's
        // sa1 class and vice versa.
        let and_net = NetId(2);
        let inv_net = NetId(3);
        for stuck in [false, true] {
            let (_, class) = classes
                .iter()
                .find(|(r, _)| *r == Fault::new(and_net, stuck))
                .expect("AND is a representative");
            assert!(class.contains(&Fault::new(inv_net, !stuck)));
        }
    }

    #[test]
    fn fault_model_activation_schedules() {
        let perm = FaultModel::PermanentStuckAt;
        let seu = FaultModel::TransientSeu { duration: 2 };
        let inter = FaultModel::Intermittent { period: 3 };
        for step in 1..=8 {
            assert!(perm.active_at(step));
            assert_eq!(seu.active_at(step), step <= 2);
            assert_eq!(inter.active_at(step), (step - 1) % 3 == 0);
        }
        assert!(seu.dead_after(3) && !seu.dead_after(2));
        assert!(!inter.dead_after(100) && !perm.dead_after(100));
        // Phases repeat exactly when future behaviour repeats.
        assert_eq!(seu.phase_at(3), seu.phase_at(9));
        assert_ne!(seu.phase_at(1), seu.phase_at(2));
        assert_eq!(inter.phase_at(1), inter.phase_at(4));
        assert_eq!(perm.phase_at(1), perm.phase_at(7));
    }

    #[test]
    fn fault_model_parse_label_round_trip() {
        for label in ["permanent", "transient:4", "intermittent:3", "multibit:1"] {
            let m = FaultModel::parse(label).unwrap();
            assert_eq!(m.label(), label);
            let mut w = ced_runtime::ByteWriter::new();
            m.write(&mut w);
            let bytes = w.finish();
            let mut r = ced_runtime::ByteReader::new(&bytes);
            assert_eq!(FaultModel::read(&mut r).unwrap(), m);
        }
        assert!(FaultModel::parse("transient:0").is_err());
        assert!(FaultModel::parse("intermittent:0").is_err());
        assert!(FaultModel::parse("bogus").is_err());
        assert!(FaultModel::parse("transient").is_err());
    }

    #[test]
    fn multibit_cluster_expansion() {
        let n = chain_netlist();
        let seed = Fault::new(NetId(2), true);
        assert_eq!(
            FaultModel::PermanentStuckAt.expand(seed, &n),
            vec![seed],
            "single-net models expand to the seed alone"
        );
        assert_eq!(
            FaultModel::MultiBitCluster { radius: 0 }.expand(seed, &n),
            vec![seed]
        );
        let cluster = FaultModel::MultiBitCluster { radius: 1 }.expand(seed, &n);
        assert_eq!(
            cluster,
            vec![
                Fault::new(NetId(1), true),
                Fault::new(NetId(2), true),
                Fault::new(NetId(3), true)
            ]
        );
    }
}
