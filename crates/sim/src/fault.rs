//! The single stuck-at fault model.
//!
//! The paper evaluates with stuck-at faults as the error source ("the
//! stuck-at fault model has been used as the source of errors") while
//! noting the method accepts any restricted error model. Faults are
//! placed on every primary input and every gate output of the mapped
//! next-state/output network, both polarities — the classic full
//! single-stuck-line list — with light structural collapsing for
//! inverter/buffer chains.

use ced_logic::gate::GateKind;
use ced_logic::netlist::{NetId, Netlist};
use ced_runtime::{Budget, Interrupted};
use std::fmt;

/// A single stuck-at fault on one net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// The faulted net (primary input or gate output).
    pub net: NetId,
    /// Stuck value: `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_at: bool,
}

impl Fault {
    /// Convenience constructor.
    pub fn new(net: NetId, stuck_at: bool) -> Fault {
        Fault { net, stuck_at }
    }

    /// The forced word value of the faulted net.
    pub fn forced_word(self) -> u64 {
        if self.stuck_at {
            u64::MAX
        } else {
            0
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/sa{}", self.net, u8::from(self.stuck_at))
    }
}

/// Enumerates the full uncollapsed fault list: stuck-at-0 and stuck-at-1
/// on every net (primary inputs and gate outputs; constants excluded —
/// a stuck constant is either redundant or equivalent to the opposite
/// constant gate's fault, which is not a physical line here).
pub fn all_faults(netlist: &Netlist) -> Vec<Fault> {
    let mut faults = Vec::with_capacity(netlist.gates().len() * 2);
    for (i, g) in netlist.gates().iter().enumerate() {
        if matches!(g.kind, GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        let net = NetId(i as u32);
        faults.push(Fault::new(net, false));
        faults.push(Fault::new(net, true));
    }
    faults
}

/// Structurally collapsed fault list.
///
/// Rules applied (standard equivalence collapsing):
///
/// * a fault on the output of a `NOT` is equivalent to the opposite
///   fault on its fanin when the fanin feeds only this gate — the output
///   faults are dropped;
/// * a fault on the output of a `BUF` is equivalent to the same fault on
///   its single-fanout fanin — dropped likewise.
///
/// Deeper dominance collapsing is intentionally left out: the
/// detectability analysis deduplicates erroneous cases anyway, so
/// collapsing only saves simulation time.
pub fn collapsed_faults(netlist: &Netlist) -> Vec<Fault> {
    let gates = netlist.gates();
    // Fanout counts.
    let mut fanout = vec![0usize; gates.len()];
    for g in gates {
        for k in 0..g.kind.arity() {
            fanout[g.fanin[k].index()] += 1;
        }
    }
    for o in netlist.outputs() {
        fanout[o.index()] += 1;
    }

    let mut faults = Vec::new();
    for (i, g) in gates.iter().enumerate() {
        if matches!(g.kind, GateKind::Const0 | GateKind::Const1) {
            continue;
        }
        let collapsible = matches!(g.kind, GateKind::Not | GateKind::Buf)
            && fanout[g.fanin[0].index()] == 1
            && !matches!(
                gates[g.fanin[0].index()].kind,
                GateKind::Const0 | GateKind::Const1
            );
        if collapsible {
            continue;
        }
        let net = NetId(i as u32);
        faults.push(Fault::new(net, false));
        faults.push(Fault::new(net, true));
    }
    faults
}

/// Enumerates a fault list under a [`Budget`]: [`all_faults`] or
/// [`collapsed_faults`] with one work unit charged per gate and a
/// budget check per 1024 gates, so a pathological netlist cannot stall
/// the campaign set-up phase past its deadline.
///
/// # Errors
///
/// The budget's interruption (never resumable: the list is cheap to
/// re-enumerate).
pub fn fault_list_budgeted(
    netlist: &Netlist,
    collapse: bool,
    budget: &Budget,
) -> Result<Vec<Fault>, Interrupted> {
    let gates = netlist.gates().len();
    for start in (0..gates).step_by(1024) {
        budget.charge((gates - start).min(1024) as u64);
        budget.check("faults:enumerate")?;
    }
    Ok(if collapse {
        collapsed_faults(netlist)
    } else {
        all_faults(netlist)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_logic::netlist::NetlistBuilder;

    #[test]
    fn all_faults_counts_both_polarities() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let f = b.and(x, y);
        b.mark_output(f);
        let n = b.finish();
        let faults = all_faults(&n);
        // 2 inputs + 1 gate = 3 nets × 2 polarities.
        assert_eq!(faults.len(), 6);
    }

    #[test]
    fn constants_carry_no_faults() {
        let mut b = NetlistBuilder::new(1);
        let c = b.const1();
        b.mark_output(c);
        b.mark_output(b.input(0));
        let n = b.finish();
        let faults = all_faults(&n);
        // Only the primary input net is faultable.
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn inverter_chain_collapses() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let a = b.and(x, y);
        // NOT fed only by the AND: its output faults are equivalent to
        // the AND's (opposite polarity) and are dropped.
        let inv = b.not(a);
        b.mark_output(inv);
        let n = b.finish();
        let all = all_faults(&n);
        let collapsed = collapsed_faults(&n);
        assert_eq!(all.len(), 8);
        assert_eq!(collapsed.len(), 6);
    }

    #[test]
    fn inverter_with_shared_fanin_not_collapsed() {
        let mut b = NetlistBuilder::new(1);
        let x = b.input(0);
        let inv = b.not(x);
        b.mark_output(inv);
        b.mark_output(x); // x has fanout 2 (inv + output)
        let n = b.finish();
        let collapsed = collapsed_faults(&n);
        // Both x and inv keep their faults.
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn display_format() {
        let f = Fault::new(NetId(3), true);
        assert_eq!(f.to_string(), "n3/sa1");
        assert_eq!(f.forced_word(), u64::MAX);
        assert_eq!(Fault::new(NetId(3), false).forced_word(), 0);
    }
}
