//! # ced-sim — fault simulation and error-detectability analysis
//!
//! The "internally developed software employing fault simulation" of the
//! paper, rebuilt: 64-way bit-parallel gate simulation, the single
//! stuck-at fault model with structural collapsing, gate-accurate
//! transition tables, loop analysis for the maximum useful latency
//! (paper §2), erroneous-case enumeration into the error-detectability
//! table of Fig. 2, and an operational fault-injection checker for the
//! bounded-latency guarantee.
//!
//! ```
//! use ced_fsm::{suite, encoding, encoded::EncodedFsm};
//! use ced_logic::MinimizeOptions;
//! use ced_sim::fault::collapsed_faults;
//! use ced_sim::detect::{DetectabilityTable, DetectOptions};
//!
//! let fsm = suite::serial_adder();
//! let enc = encoding::assign(&fsm, encoding::EncodingStrategy::Natural);
//! let circuit = EncodedFsm::new(fsm, enc)?.synthesize(&MinimizeOptions::default());
//! let faults = collapsed_faults(circuit.netlist());
//! let (table, stats) = DetectabilityTable::build(
//!     &circuit,
//!     &faults,
//!     &DetectOptions { latency: 2, ..DetectOptions::default() },
//! )?;
//! assert!(table.len() > 0);
//! assert_eq!(stats.rows, table.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Indexed loops over bit positions are the clearest form for this
// bit-twiddling code; the iterator rewrites clippy suggests obscure it.
#![allow(clippy::needless_range_loop)]

pub mod cone;
pub mod coverage;
pub mod detect;
pub mod diagnose;
pub mod equiv;
pub mod eval;
pub mod fault;
pub mod loops;
pub mod models;
pub mod packed;
pub mod tables;

pub use detect::{DetectError, DetectOptions, DetectStats, DetectabilityTable, EcRow, Semantics};
pub use fault::{all_faults, collapse_classes, collapsed_faults, Fault, FaultModel};
pub use tables::TransitionTables;
