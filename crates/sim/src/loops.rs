//! Loop analysis on extracted transition tables.
//!
//! Paper §2: the benefit of increasing the latency bound saturates once
//! every enumeration path wraps a loop; the maximum latency of interest
//! is found "by finding the length of the shortest loop on each faulty
//! FSM and selecting the largest value". This module computes exactly
//! that on the gate-accurate [`TransitionTables`].

use crate::fault::Fault;
use crate::tables::TransitionTables;
use ced_fsm::encoded::FsmCircuit;
use std::collections::VecDeque;

/// Length of the shortest cycle through `start` in the machine's
/// transition graph, or `None` if no cycle returns to it.
pub fn shortest_loop_through(tables: &TransitionTables, start: u64) -> Option<usize> {
    let r = tables.num_inputs();
    // BFS over codes; distance = steps from `start`'s successors.
    let mut dist = vec![usize::MAX; 1 << tables.state_bits()];
    let mut queue = VecDeque::new();
    for input in 0..(1u64 << r) {
        let nx = tables.next(start, input);
        if nx == start {
            return Some(1);
        }
        if dist[nx as usize] == usize::MAX {
            dist[nx as usize] = 1;
            queue.push_back(nx);
        }
    }
    while let Some(c) = queue.pop_front() {
        for input in 0..(1u64 << r) {
            let nx = tables.next(c, input);
            if nx == start {
                return Some(dist[c as usize] + 1);
            }
            if dist[nx as usize] == usize::MAX {
                dist[nx as usize] = dist[c as usize] + 1;
                queue.push_back(nx);
            }
        }
    }
    None
}

/// The girth of the machine restricted to codes reachable from reset.
pub fn reachable_girth(tables: &TransitionTables) -> Option<usize> {
    tables
        .reachable_codes()
        .into_iter()
        .filter_map(|c| shortest_loop_through(tables, c))
        .min()
}

/// The longest shortest-loop over reachable states: beyond this latency
/// every path from any state has wrapped a loop.
pub fn loop_bound(tables: &TransitionTables) -> usize {
    tables
        .reachable_codes()
        .into_iter()
        .filter_map(|c| shortest_loop_through(tables, c))
        .max()
        .unwrap_or(1)
}

/// The paper's maximum useful latency: the largest, over the fault list,
/// of the faulty machine's loop bound (computed on states reachable in
/// the *good* machine, where errors activate, plus the faulty successor
/// cone implicitly explored by [`shortest_loop_through`]).
pub fn max_useful_latency(circuit: &FsmCircuit, faults: &[Fault]) -> usize {
    let mut best = 1usize;
    let good = TransitionTables::good(circuit);
    let activation_states = good.reachable_codes();
    for &f in faults {
        let bad = TransitionTables::faulty(circuit, f);
        let bound = activation_states
            .iter()
            .filter_map(|&c| shortest_loop_through(&bad, c))
            .max()
            .unwrap_or(1);
        best = best.max(bound);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn circuit() -> FsmCircuit {
        let fsm = suite::traffic_light();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn traffic_light_loops() {
        let c = circuit();
        let t = TransitionTables::good(&c);
        // Green self-loops on no-car.
        assert_eq!(shortest_loop_through(&t, c.reset_code()), Some(1));
        assert_eq!(reachable_girth(&t), Some(1));
        // The full G→Y→R→G cycle bounds the loop bound at ≥ 3 through Y.
        assert!(loop_bound(&t) >= 3);
    }

    #[test]
    fn shortest_loop_none_when_unreturnable() {
        // Sequence detector: state 'e' is re-enterable, so every state
        // loops; but probing an invalid, unreachable code still returns
        // some answer without panicking.
        let fsm = ced_fsm::suite::sequence_detector();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        let c = EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default());
        let t = TransitionTables::good(&c);
        for code in 0..(1u64 << c.state_bits()) {
            let _ = shortest_loop_through(&t, code);
        }
    }

    #[test]
    fn loop_bound_dominates_girth() {
        let c = circuit();
        let t = TransitionTables::good(&c);
        let girth = reachable_girth(&t).unwrap();
        assert!(loop_bound(&t) >= girth);
    }

    #[test]
    fn faulty_loops_can_differ_from_good() {
        let c = circuit();
        let faults = crate::fault::collapsed_faults(c.netlist());
        let good = TransitionTables::good(&c);
        let good_bound = loop_bound(&good);
        let mut any_difference = false;
        for &f in faults.iter().take(20) {
            let bad = TransitionTables::faulty(&c, f);
            if loop_bound(&bad) != good_bound {
                any_difference = true;
                break;
            }
        }
        // Not guaranteed in theory, but for the traffic light a stuck
        // line does change the loop structure; treat as regression probe.
        assert!(any_difference || good_bound >= 1);
    }

    #[test]
    fn max_useful_latency_at_least_one() {
        let c = circuit();
        let faults = crate::fault::collapsed_faults(c.netlist());
        let p_max = max_useful_latency(&c, &faults[..faults.len().min(10)]);
        assert!(p_max >= 1);
    }
}
