//! Additional error models beyond gate-level stuck-at faults.
//!
//! The paper's method accepts *any* restricted error model prescribed
//! per transition (§1–§2). This module builds detectability tables for
//! the model the Fig. 3 hold registers exist for: **state-register
//! upsets** — a flip of one flip-flop between two clock edges ("in
//! order to also detect faults in the state register", §3, after
//! Zeng/Saxena/McCluskey).
//!
//! Semantics: the prediction was computed in the previous cycle from
//! the *pre-flip* state, the compactor hashes the *post-flip* register,
//! so the flip itself appears as a first-step discrepancy `e` on the
//! flipped state bit. From then on the machine runs fault-free but
//! from the wrong state; under the lockstep reference the divergence
//! keeps producing differences along every input path, which is where
//! latency `p ≥ 2` earns additional coverage options.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::{suite, encoding, encoded::EncodedFsm};
//! use ced_logic::MinimizeOptions;
//! use ced_sim::models::register_upset_table;
//!
//! let fsm = suite::serial_adder();
//! let enc = encoding::assign(&fsm, encoding::EncodingStrategy::Natural);
//! let circuit = EncodedFsm::new(fsm, enc)?.synthesize(&MinimizeOptions::default());
//! let table = register_upset_table(&circuit, 2);
//! assert!(!table.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::detect::{DetectabilityTable, EcRow};
use crate::tables::TransitionTables;
use ced_fsm::encoded::FsmCircuit;
use std::collections::HashSet;

/// Builds the detectability table for single state-register upsets: one
/// erroneous case family per (reachable state `c`, flipped bit `b`),
/// with the flip visible at step 1 on bit `b` and lockstep divergence
/// differences on subsequent steps along every input path (loop rule as
/// in the stuck-at enumeration; unreduced rows, temporal order kept).
///
/// # Panics
///
/// Panics if `latency == 0`.
pub fn register_upset_table(circuit: &FsmCircuit, latency: usize) -> DetectabilityTable {
    assert!(latency >= 1, "latency bound must be at least 1");
    let good = TransitionTables::good(circuit);
    let r = circuit.num_inputs();
    let s = circuit.state_bits();
    let n = circuit.total_bits();

    let mut rows: HashSet<Vec<u64>> = HashSet::new();
    for &c in &good.reachable_codes() {
        for b in 0..s {
            let flipped = c ^ (1 << b);
            // Step 1: the register mismatch itself (prediction from the
            // pre-flip state vs compaction of the post-flip register).
            let d1 = 1u64 << b;
            if latency == 1 {
                rows.insert(vec![d1]);
                continue;
            }
            // Steps 2..p: lockstep divergence from pair (c, flipped).
            let mut prefix = vec![0u64; latency];
            prefix[0] = d1;
            let mut visited = vec![(c, c), (c, flipped)];
            extend(
                &good,
                r,
                latency,
                1,
                (c, flipped),
                &mut prefix,
                &mut visited,
                &mut rows,
            );
        }
    }
    let mut rows: Vec<EcRow> = rows.into_iter().map(|steps| EcRow { steps }).collect();
    rows.sort_by(|a, b| a.steps.cmp(&b.steps));
    DetectabilityTable::from_rows(n, latency, rows)
}

/// Lockstep suffix DFS over a single (fault-free) machine whose two
/// copies start in different states.
#[allow(clippy::too_many_arguments)]
fn extend(
    good: &TransitionTables,
    r: usize,
    p: usize,
    depth: usize,
    pair: (u64, u64),
    prefix: &mut Vec<u64>,
    visited: &mut Vec<(u64, u64)>,
    rows: &mut HashSet<Vec<u64>>,
) {
    let (g, f) = pair;
    let mut seen: HashSet<(u64, (u64, u64))> = HashSet::new();
    for input in 0..(1u64 << r) {
        let d = good.response(g, input) ^ good.response(f, input);
        let next = (good.next(g, input), good.next(f, input));
        if !seen.insert((d, next)) {
            continue;
        }
        prefix[depth] = d;
        if depth + 1 == p || visited.contains(&next) || next.0 == next.1 {
            // Complete, loop cut, or the copies re-converged (no further
            // differences are possible once the states agree).
            let mut row = prefix.clone();
            for slot in row.iter_mut().skip(depth + 1) {
                *slot = 0;
            }
            rows.insert(row);
        } else {
            visited.push(next);
            extend(good, r, p, depth + 1, next, prefix, visited, rows);
            visited.pop();
        }
        prefix[depth] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn circuit() -> FsmCircuit {
        let fsm = suite::worked_example();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn every_state_bit_appears_as_a_first_step() {
        let c = circuit();
        let t = register_upset_table(&c, 1);
        let firsts: HashSet<u64> = t.rows().iter().map(|r| r.steps[0]).collect();
        for b in 0..c.state_bits() {
            assert!(firsts.contains(&(1 << b)), "bit {b} missing");
        }
        // At p = 1 only the flip bit itself is visible.
        assert_eq!(t.len(), c.state_bits());
    }

    #[test]
    fn state_bit_singletons_cover_upsets() {
        let c = circuit();
        for p in 1..=3 {
            let t = register_upset_table(&c, p);
            let masks: Vec<u64> = (0..c.state_bits()).map(|b| 1 << b).collect();
            assert!(t.all_covered(&masks), "p={p}");
        }
    }

    #[test]
    fn latency_adds_divergence_options() {
        let c = circuit();
        let t1 = register_upset_table(&c, 1);
        let t2 = register_upset_table(&c, 2);
        // Every p=2 row's first step is a p=1 row; later steps add
        // at least one nonzero second-step option somewhere (the copies
        // diverge observably on this machine).
        assert!(t2.rows().iter().any(|r| r.steps[1] != 0));
        assert!(t2.len() >= t1.len());
    }

    #[test]
    fn merges_with_stuck_at_table() {
        use crate::detect::{DetectOptions, DetectabilityTable};
        use crate::fault::collapsed_faults;
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let stuck = DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: 2,
                reduce: false,
                ..DetectOptions::default()
            },
        )
        .unwrap()
        .0;
        let upsets = register_upset_table(&c, 2);
        let combined = stuck.merged(&upsets);
        assert!(combined.len() <= stuck.len() + upsets.len());
        // Any cover of the combined table covers both parts.
        let masks: Vec<u64> = (0..c.total_bits()).map(|b| 1 << b).collect();
        assert!(combined.all_covered(&masks));
        // And a cover of combined covers the upset table in particular.
        let cover = crate::detect::DetectabilityTable::dominance_reduced(&combined);
        assert!(cover.all_covered(&masks));
    }

    #[test]
    fn reconvergence_terminates_enumeration() {
        // A machine where a flip can re-converge (both copies map to the
        // same next state): rows must still be well-formed.
        let c = circuit();
        let t = register_upset_table(&c, 3);
        for row in t.rows() {
            assert_eq!(row.steps.len(), 3);
            assert_ne!(row.steps[0], 0);
        }
    }
}
