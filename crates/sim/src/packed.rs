//! Bit-packed, column-major view of a detectability table, plus the
//! case-kernel pairing that makes coverage checks cheap on large
//! machines (DESIGN.md §15).
//!
//! [`crate::detect::DetectabilityTable`] stores the tensor `V(i,j,k)`
//! row-major: one [`crate::detect::EcRow`] per erroneous case, one
//! step-mask word per latency step. That layout is right for
//! enumeration and serialization, but the cover search asks the
//! *transposed* question millions of times: "which rows does this
//! parity mask detect?" [`PackedTable`] answers it 64 rows at a time —
//! for each (difference bit `j`, step `k`) it keeps a bitvector over
//! rows, so the detection parity of a mask at one step is the XOR of
//! `popcount(mask)` row-words, the same 64-wide word idiom the fault
//! simulator uses for patterns.
//!
//! Exactness: every query here is integer arithmetic on exactly the
//! bits of the source rows, so results are equal — not approximately,
//! but as the same booleans and indices — to the row-major queries
//! ([`crate::detect::DetectabilityTable::first_uncovered`] and
//! friends). The differential test battery pins this.
//!
//! [`SparseTables`] adds the GF(2) case-kernel
//! ([`ced_store::reduce_cases`]): a subset of rows whose coverage
//! provably implies coverage of all rows. The kernel may be used
//! *only* for boolean success checks (is this cover complete?); row
//! enumeration, LP row feeding and greedy counting must stay on the
//! full table, because which rows those surface is byte-observable in
//! reports and search trajectories.

use crate::detect::DetectabilityTable;
use ced_store::{reduce_cases, CaseReduction, RowSet};

/// Column-major bit-packed tensor slices: for each (bit, step) a
/// bitvector over rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedTable {
    rows: usize,
    num_bits: usize,
    latency: usize,
    /// Words per column (`rows.div_ceil(64)`).
    words: usize,
    /// `bits[(j * latency + k) * words + w]`: bit `r` is set iff row
    /// `w*64 + r`'s step `k` has difference bit `j` set.
    bits: Vec<u64>,
}

impl PackedTable {
    /// Packs every row of `table`.
    pub fn from_table(table: &DetectabilityTable) -> PackedTable {
        Self::from_rows(table, None)
    }

    /// Packs the selected rows of `table` (all rows when `subset` is
    /// `None`), preserving the given row order: packed row `i` is
    /// `table.rows()[subset[i]]`.
    pub fn from_rows(table: &DetectabilityTable, subset: Option<&[usize]>) -> PackedTable {
        let num_bits = table.num_bits();
        let latency = table.latency();
        let all = table.rows();
        let rows = subset.map_or(all.len(), <[usize]>::len);
        let words = rows.div_ceil(64);
        let mut bits = vec![0u64; num_bits * latency * words];
        for i in 0..rows {
            let row = &all[subset.map_or(i, |s| s[i])];
            for (k, &d) in row.steps.iter().enumerate() {
                let mut rem = d;
                while rem != 0 {
                    let j = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    bits[(j * latency + k) * words + i / 64] |= 1u64 << (i % 64);
                }
            }
        }
        PackedTable {
            rows,
            num_bits,
            latency,
            words,
            bits,
        }
    }

    /// Number of packed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff no rows are packed.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Difference-vector width in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Latency bound (steps per row).
    pub fn latency(&self) -> usize {
        self.latency
    }

    #[inline]
    fn col(&self, j: usize, k: usize) -> &[u64] {
        let base = (j * self.latency + k) * self.words;
        &self.bits[base..base + self.words]
    }

    /// Mask of representable difference bits.
    #[inline]
    fn bit_mask(&self) -> u64 {
        if self.num_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.num_bits) - 1
        }
    }

    /// The word of rows `w*64..` covered by `masks`: bit `r` set iff
    /// some mask detects packed row `w*64 + r`.
    #[inline]
    fn covered_word(&self, masks: &[u64], w: usize) -> u64 {
        let mut cov = 0u64;
        for &mask in masks {
            let mask = mask & self.bit_mask();
            for k in 0..self.latency {
                let mut par = 0u64;
                let mut rem = mask;
                while rem != 0 {
                    let j = rem.trailing_zeros() as usize;
                    rem &= rem - 1;
                    par ^= self.col(j, k)[w];
                }
                cov |= par;
            }
        }
        cov
    }

    /// The full-coverage pattern for word `w` (partial last word).
    #[inline]
    fn full_word(&self, w: usize) -> u64 {
        let used = (self.rows - w * 64).min(64);
        if used == 64 {
            u64::MAX
        } else {
            (1u64 << used) - 1
        }
    }

    /// The set of rows some mask in `masks` detects.
    pub fn covered(&self, masks: &[u64]) -> RowSet {
        let words: Vec<u64> = (0..self.words)
            .map(|w| self.covered_word(masks, w))
            .collect();
        RowSet::from_words(words, self.rows)
    }

    /// True iff every row is detected by some mask — equal to
    /// [`DetectabilityTable::all_covered`] on the packed rows, with a
    /// word-level early exit on the first uncovered block.
    pub fn all_covered(&self, masks: &[u64]) -> bool {
        (0..self.words).all(|w| self.covered_word(masks, w) == self.full_word(w))
    }

    /// The lowest packed-row index no mask detects, if any — equal to
    /// [`DetectabilityTable::first_uncovered`] on the packed rows.
    pub fn first_uncovered(&self, masks: &[u64]) -> Option<usize> {
        for w in 0..self.words {
            let miss = !self.covered_word(masks, w) & self.full_word(w);
            if miss != 0 {
                return Some(w * 64 + miss.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Packed-row indices no mask detects, ascending — equal to
    /// [`DetectabilityTable::uncovered_rows`] on the packed rows.
    pub fn uncovered_rows(&self, masks: &[u64]) -> Vec<usize> {
        let mut out = Vec::new();
        for w in 0..self.words {
            let mut miss = !self.covered_word(masks, w) & self.full_word(w);
            while miss != 0 {
                out.push(w * 64 + miss.trailing_zeros() as usize);
                miss &= miss - 1;
            }
        }
        out
    }

    /// How many rows of `uncovered` the single mask detects — the
    /// greedy search's scoring query, 64 rows per word with an early
    /// exit on fully-covered blocks.
    pub fn covered_count(&self, mask: u64, uncovered: &RowSet) -> usize {
        debug_assert_eq!(uncovered.rows(), self.rows);
        let uw = uncovered.words();
        let mut count = 0usize;
        for w in 0..self.words {
            if uw[w] == 0 {
                continue;
            }
            count += (self.covered_word(&[mask], w) & uw[w]).count_ones() as usize;
        }
        count
    }
}

/// The sparse engine's working set for one reduced table: the full
/// packed tensor (row enumeration, greedy counts) plus the packed case
/// kernel (boolean cover checks) and the reduction that proves the
/// kernel sufficient.
#[derive(Debug, Clone)]
pub struct SparseTables {
    full: PackedTable,
    kernel: PackedTable,
    reduction: CaseReduction,
}

impl SparseTables {
    /// Packs `table` and computes its case kernel.
    pub fn build(table: &DetectabilityTable) -> SparseTables {
        let steps: Vec<&[u64]> = table.rows().iter().map(|r| r.steps.as_slice()).collect();
        let reduction = reduce_cases(&steps);
        let full = PackedTable::from_table(table);
        let kernel = PackedTable::from_rows(table, Some(reduction.kernel()));
        SparseTables {
            full,
            kernel,
            reduction,
        }
    }

    /// The packed view of every row, in table order.
    pub fn full(&self) -> &PackedTable {
        &self.full
    }

    /// The packed view of the kernel rows only.
    pub fn kernel(&self) -> &PackedTable {
        &self.kernel
    }

    /// The kernel membership and witness map.
    pub fn reduction(&self) -> &CaseReduction {
        &self.reduction
    }

    /// True iff `masks` cover every row of the source table, decided on
    /// the kernel alone: by the witness map, covering each kernel row
    /// covers every row it witnesses, and the kernel rows are a subset
    /// of the table — so the boolean is exactly
    /// [`DetectabilityTable::all_covered`].
    pub fn all_covered(&self, masks: &[u64]) -> bool {
        self.kernel.all_covered(masks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::EcRow;

    /// A deterministic pseudo-random table plus a mask stream.
    fn seeded_table(rows: usize, num_bits: usize, latency: usize, seed: u64) -> DetectabilityTable {
        let mut x = seed | 1;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        let mask = if num_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << num_bits) - 1
        };
        let rows: Vec<EcRow> = (0..rows)
            .map(|_| EcRow {
                steps: (0..latency).map(|_| next() & mask).collect(),
            })
            .filter(|r| r.steps.iter().any(|&d| d != 0))
            .collect();
        DetectabilityTable::from_rows(num_bits, latency, rows)
    }

    #[test]
    fn packed_queries_equal_row_major_queries() {
        for seed in 1..6u64 {
            let table = seeded_table(137, 9, 3, seed);
            let packed = PackedTable::from_table(&table);
            assert_eq!(packed.len(), table.len());
            let mut x = seed;
            for trial in 0..40 {
                let q = 1 + (trial % 3);
                let masks: Vec<u64> = (0..q)
                    .map(|i| {
                        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                        (x >> 30) & 0x1FF
                    })
                    .collect();
                assert_eq!(
                    packed.first_uncovered(&masks),
                    table.first_uncovered(&masks)
                );
                assert_eq!(packed.all_covered(&masks), table.all_covered(&masks));
                assert_eq!(packed.uncovered_rows(&masks), table.uncovered_rows(&masks));
                let covered = packed.covered(&masks);
                for (i, row) in table.rows().iter().enumerate() {
                    assert_eq!(
                        covered.contains(i),
                        masks.iter().any(|&m| row.detected_by(m))
                    );
                }
            }
        }
    }

    #[test]
    fn packed_covered_count_matches_filtered_iteration() {
        let table = seeded_table(90, 7, 2, 42);
        let packed = PackedTable::from_table(&table);
        let mut uncovered = RowSet::full(table.len());
        for i in (0..table.len()).step_by(3) {
            uncovered.remove(i);
        }
        for mask in 0..128u64 {
            let dense = uncovered
                .iter()
                .filter(|&i| table.rows()[i].detected_by(mask))
                .count();
            assert_eq!(packed.covered_count(mask, &uncovered), dense, "mask {mask}");
        }
    }

    #[test]
    fn kernel_check_equals_full_check() {
        for seed in 1..8u64 {
            let table = seeded_table(60, 6, 3, seed);
            let sparse = SparseTables::build(&table);
            assert!(sparse.kernel().len() <= sparse.full().len());
            let mut x = seed;
            for _ in 0..200 {
                x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let masks = [(x >> 20) & 0x3F, (x >> 40) & 0x3F];
                assert_eq!(
                    sparse.all_covered(&masks),
                    table.all_covered(&masks),
                    "seed {seed} masks {masks:?}"
                );
            }
        }
    }

    #[test]
    fn subset_packing_reindexes_rows() {
        let table = seeded_table(20, 5, 2, 7);
        let subset = [3usize, 9, 14];
        let packed = PackedTable::from_rows(&table, Some(&subset));
        assert_eq!(packed.len(), 3);
        for mask in 0..32u64 {
            let expect: Vec<usize> = subset
                .iter()
                .enumerate()
                .filter(|&(_, &orig)| !table.rows()[orig].detected_by(mask))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(packed.uncovered_rows(&[mask]), expect);
        }
    }
}
