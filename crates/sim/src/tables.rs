//! Transition-table extraction from synthesized FSM circuits.
//!
//! For fault simulation and path enumeration, the symbolic machine is
//! too slow and — more importantly — wrong: the physical behaviour on
//! don't-care inputs and invalid state codes is whatever the synthesized
//! netlist does. [`TransitionTables`] therefore tabulates the *netlist*
//! over every `(state code, input)` pair, including unused codes a
//! faulty machine may wander into, using 64-way bit-parallel evaluation.

use crate::eval::{eval_words_faulty_into, eval_words_multi_faulty_into};
use crate::fault::Fault;
use ced_fsm::encoded::FsmCircuit;
use ced_runtime::{Budget, Interrupted};
use std::collections::VecDeque;

/// What the extraction injects into the netlist.
#[derive(Clone, Copy)]
enum Injection<'a> {
    None,
    One(Fault),
    Many(&'a [Fault]),
}

/// Complete next-state/output tables of one machine (good or faulty).
///
/// Responses are `n`-bit masks with next-state bits in positions
/// `0..s` and primary outputs in `s..n`, matching the paper's
/// `b_1..b_s, b_{s+1}..b_n` ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionTables {
    state_bits: usize,
    num_inputs: usize,
    num_outputs: usize,
    /// `next[code << r | input]` = next state code.
    next: Vec<u32>,
    /// `response[code << r | input]` = n-bit response mask.
    response: Vec<u64>,
    reset_code: u64,
}

impl TransitionTables {
    /// Extracts the fault-free tables of a circuit.
    ///
    /// # Panics
    ///
    /// Panics if `r + s > 24` (table would exceed 16M entries) or
    /// `s + outputs > 64`.
    pub fn good(circuit: &FsmCircuit) -> TransitionTables {
        match Self::extract(circuit, Injection::None, None) {
            Ok(t) => t,
            Err(_) => unreachable!("extraction without a budget cannot be interrupted"),
        }
    }

    /// Extracts the tables of the circuit with `fault` injected.
    ///
    /// # Panics
    ///
    /// See [`TransitionTables::good`].
    pub fn faulty(circuit: &FsmCircuit, fault: Fault) -> TransitionTables {
        match Self::extract(circuit, Injection::One(fault), None) {
            Ok(t) => t,
            Err(_) => unreachable!("extraction without a budget cannot be interrupted"),
        }
    }

    /// [`TransitionTables::faulty`] under a [`Budget`]: charges one
    /// work unit per 64-pattern evaluation batch and checks the budget
    /// between batches, so a fired token or an exhausted cap stops the
    /// `2^(r+s)` sweep promptly instead of running it to completion.
    ///
    /// # Errors
    ///
    /// The budget's interruption; no partial tables are returned
    /// (extraction is cheap to redo relative to enumeration).
    ///
    /// # Panics
    ///
    /// See [`TransitionTables::good`].
    pub fn faulty_budgeted(
        circuit: &FsmCircuit,
        fault: Fault,
        budget: &Budget,
    ) -> Result<TransitionTables, Interrupted> {
        Self::extract(circuit, Injection::One(fault), Some(budget))
    }

    /// Extracts the tables with every fault of `faults` injected at
    /// once — the multi-bit cluster generalization of
    /// [`TransitionTables::faulty`]. A singleton slice is identical to
    /// the single-fault extraction.
    ///
    /// # Panics
    ///
    /// See [`TransitionTables::good`].
    pub fn faulty_set(circuit: &FsmCircuit, faults: &[Fault]) -> TransitionTables {
        match Self::extract(circuit, Injection::Many(faults), None) {
            Ok(t) => t,
            Err(_) => unreachable!("extraction without a budget cannot be interrupted"),
        }
    }

    /// [`TransitionTables::faulty_set`] under a [`Budget`]; same
    /// contract as [`TransitionTables::faulty_budgeted`].
    ///
    /// # Errors
    ///
    /// The budget's interruption; no partial tables are returned.
    ///
    /// # Panics
    ///
    /// See [`TransitionTables::good`].
    pub fn faulty_set_budgeted(
        circuit: &FsmCircuit,
        faults: &[Fault],
        budget: &Budget,
    ) -> Result<TransitionTables, Interrupted> {
        Self::extract(circuit, Injection::Many(faults), Some(budget))
    }

    fn extract(
        circuit: &FsmCircuit,
        fault: Injection<'_>,
        budget: Option<&Budget>,
    ) -> Result<TransitionTables, Interrupted> {
        let r = circuit.num_inputs();
        let s = circuit.state_bits();
        let o = circuit.num_outputs();
        assert!(
            r + s <= 24,
            "transition table too large: {} address bits",
            r + s
        );
        assert!(s + o <= 64, "response exceeds 64 bits");
        let netlist = circuit.netlist();
        let total = 1usize << (r + s);
        let mut next = vec![0u32; total];
        let mut response = vec![0u64; total];
        let mut in_words = vec![0u64; r + s];
        let mut values: Vec<u64> = Vec::new();

        let mut base = 0usize;
        while base < total {
            if let Some(b) = budget {
                b.tick(1, "tables:extract")?;
            }
            let batch = (total - base).min(64);
            // Pattern `base + t`: input bits = low r bits, state = high s.
            for (v, w) in in_words.iter_mut().enumerate() {
                let mut word = 0u64;
                for t in 0..batch {
                    let pat = (base + t) as u64;
                    if (pat >> v) & 1 == 1 {
                        word |= 1 << t;
                    }
                }
                *w = word;
            }
            match fault {
                Injection::One(f) => eval_words_faulty_into(netlist, &in_words, f, &mut values),
                Injection::Many(fs) => {
                    eval_words_multi_faulty_into(netlist, &in_words, fs, &mut values)
                }
                Injection::None => netlist.eval_words_into(&in_words, &mut values),
            }
            let outs = netlist.outputs();
            for t in 0..batch {
                let idx = base + t;
                let mut code = 0u32;
                let mut resp = 0u64;
                for (k, out_net) in outs.iter().enumerate() {
                    let bit = (values[out_net.index()] >> t) & 1;
                    if bit == 1 {
                        resp |= 1 << k;
                        if k < s {
                            code |= 1 << k;
                        }
                    }
                }
                next[idx] = code;
                response[idx] = resp;
            }
            base += batch;
        }

        Ok(TransitionTables {
            state_bits: s,
            num_inputs: r,
            num_outputs: o,
            next,
            response,
            reset_code: circuit.reset_code(),
        })
    }

    /// `r`: input bits.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// `s`: state bits.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// Primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// `n = s + o`: response width.
    pub fn response_bits(&self) -> usize {
        self.state_bits + self.num_outputs
    }

    /// The reset state code.
    pub fn reset_code(&self) -> u64 {
        self.reset_code
    }

    #[inline]
    fn index(&self, code: u64, input: u64) -> usize {
        debug_assert!(code < (1u64 << self.state_bits));
        debug_assert!(input < (1u64 << self.num_inputs));
        ((code << self.num_inputs) | input) as usize
    }

    /// Next state code from `code` on `input`.
    #[inline]
    pub fn next(&self, code: u64, input: u64) -> u64 {
        self.next[self.index(code, input)] as u64
    }

    /// The full `n`-bit response mask (next-state bits low, outputs high).
    #[inline]
    pub fn response(&self, code: u64, input: u64) -> u64 {
        self.response[self.index(code, input)]
    }

    /// Primary-output bits of the response.
    #[inline]
    pub fn output(&self, code: u64, input: u64) -> u64 {
        self.response(code, input) >> self.state_bits
    }

    /// State codes reachable from reset, as a bitmask-indexed vector.
    pub fn reachable_codes(&self) -> Vec<u64> {
        let mut seen = vec![false; 1 << self.state_bits];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        seen[self.reset_code as usize] = true;
        queue.push_back(self.reset_code);
        while let Some(c) = queue.pop_front() {
            order.push(c);
            for input in 0..(1u64 << self.num_inputs) {
                let nx = self.next(c, input);
                if !seen[nx as usize] {
                    seen[nx as usize] = true;
                    queue.push_back(nx);
                }
            }
        }
        order
    }

    /// Per-transition difference masks against another machine over the
    /// same interface: `diff[code<<r | input] = response ⊕ other`.
    ///
    /// # Panics
    ///
    /// Panics if the interfaces differ.
    pub fn diff(&self, other: &TransitionTables) -> Vec<u64> {
        assert_eq!(self.num_inputs, other.num_inputs, "interface mismatch");
        assert_eq!(self.state_bits, other.state_bits, "interface mismatch");
        assert_eq!(self.num_outputs, other.num_outputs, "interface mismatch");
        self.response
            .iter()
            .zip(&other.response)
            .map(|(a, b)| a ^ b)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn circuit() -> FsmCircuit {
        let fsm = suite::sequence_detector();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn tables_match_stepwise_evaluation() {
        let c = circuit();
        let t = TransitionTables::good(&c);
        for code in 0..(1u64 << c.state_bits()) {
            for input in 0..(1u64 << c.num_inputs()) {
                let (next, out) = c.step(code, input);
                assert_eq!(t.next(code, input), next, "next({code},{input})");
                assert_eq!(t.output(code, input), out, "out({code},{input})");
                let resp = t.response(code, input);
                assert_eq!(resp & ((1 << c.state_bits()) - 1), next);
                assert_eq!(resp >> c.state_bits(), out);
            }
        }
    }

    #[test]
    fn reachable_codes_start_at_reset() {
        let c = circuit();
        let t = TransitionTables::good(&c);
        let reach = t.reachable_codes();
        assert_eq!(reach[0], c.reset_code());
        // The 4-state detector uses 4 of 4 codes; all should be reachable.
        assert_eq!(reach.len(), 4);
    }

    #[test]
    fn faulty_tables_differ_somewhere() {
        let c = circuit();
        let good = TransitionTables::good(&c);
        let faults = crate::fault::all_faults(c.netlist());
        // At least one fault must change some transition (the circuit is
        // not fully redundant).
        let mut any_diff = false;
        for f in faults {
            let bad = TransitionTables::faulty(&c, f);
            let diff = good.diff(&bad);
            if diff.iter().any(|&d| d != 0) {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn diff_is_zero_against_self() {
        let c = circuit();
        let good = TransitionTables::good(&c);
        assert!(good.diff(&good).iter().all(|&d| d == 0));
    }

    #[test]
    fn singleton_fault_set_matches_single_fault_tables() {
        let c = circuit();
        for f in crate::fault::all_faults(c.netlist()) {
            assert_eq!(
                TransitionTables::faulty_set(&c, &[f]),
                TransitionTables::faulty(&c, f),
                "{f}"
            );
        }
    }

    #[test]
    fn stuck_output_fault_shows_in_output_bits() {
        let c = circuit();
        let good = TransitionTables::good(&c);
        // Fault the net driving the primary output (last netlist output).
        let out_net = *c.netlist().outputs().last().unwrap();
        let bad = TransitionTables::faulty(&c, Fault::new(out_net, true));
        let s = c.state_bits();
        let mut saw_output_diff = false;
        for code in 0..(1u64 << s) {
            for input in 0..(1u64 << c.num_inputs()) {
                let d = good.response(code, input) ^ bad.response(code, input);
                if d >> s != 0 {
                    saw_output_diff = true;
                }
            }
        }
        assert!(saw_output_diff, "sa1 on output net never visible");
    }
}
