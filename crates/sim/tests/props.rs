//! Property-based tests for the fault-simulation layer: table
//! extraction fidelity, detectability invariants, dominance-reduction
//! equivalence, the analytic/operational soundness link, and the
//! survivability layer (checkpoint serialization fidelity).

use ced_fsm::encoded::EncodedFsm;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_logic::MinimizeOptions;
use ced_sim::coverage::{simulate_fault_detection, SimOutcome};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};
use ced_sim::fault::{all_faults, collapsed_faults, FaultModel};
use ced_sim::tables::TransitionTables;
use proptest::prelude::*;

fn small_circuit_strategy() -> impl Strategy<Value = ced_fsm::FsmCircuit> {
    (1usize..=2, 2usize..=6, 1usize..=3, any::<u64>()).prop_map(
        |(inputs, states, outputs, seed)| {
            let fsm = generate(&GeneratorConfig {
                name: "sim-prop".into(),
                num_inputs: inputs,
                num_states: states,
                num_outputs: outputs,
                cubes_per_state: 3,
                self_loop_bias: 0.3,
                output_dc_prob: 0.1,
                output_pool: 2,
                seed,
            });
            let enc = assign(&fsm, EncodingStrategy::Natural);
            EncodedFsm::new(fsm, enc)
                .expect("well-formed")
                .synthesize(&MinimizeOptions::default())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tables_match_circuit_stepping(circuit in small_circuit_strategy()) {
        let t = TransitionTables::good(&circuit);
        for code in 0..(1u64 << circuit.state_bits()) {
            for input in 0..(1u64 << circuit.num_inputs()) {
                let (next, out) = circuit.step(code, input);
                prop_assert_eq!(t.next(code, input), next);
                prop_assert_eq!(t.output(code, input), out);
            }
        }
    }

    #[test]
    fn collapsed_faults_are_subset_of_all(circuit in small_circuit_strategy()) {
        let all = all_faults(circuit.netlist());
        let collapsed = collapsed_faults(circuit.netlist());
        prop_assert!(collapsed.len() <= all.len());
        for f in &collapsed {
            prop_assert!(all.contains(f));
        }
    }

    #[test]
    fn detectability_rows_have_nonzero_activation(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let (table, stats) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, ..DetectOptions::default() },
        ).expect("fits");
        prop_assert_eq!(stats.rows, table.len());
        for row in table.rows() {
            prop_assert!(row.any_step_union() != 0, "all-zero row");
            prop_assert_eq!(row.steps.len(), p);
        }
        // Singleton masks always cover.
        let singles: Vec<u64> = (0..table.num_bits()).map(|b| 1 << b).collect();
        prop_assert!(table.all_covered(&singles));
    }

    #[test]
    fn online_reduction_equals_offline(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let online = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, reduce: true, ..DetectOptions::default() },
        ).expect("fits").0;
        let offline = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, reduce: false, ..DetectOptions::default() },
        ).expect("fits").0.dominance_reduced();
        prop_assert_eq!(online, offline);
    }

    #[test]
    fn reduction_preserves_coverage_for_random_masks(
        circuit in small_circuit_strategy(),
        masks in proptest::collection::vec(1u64..64, 1..4),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let raw = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 2, reduce: false, ..DetectOptions::default() },
        ).expect("fits").0;
        let reduced = raw.dominance_reduced();
        let n = raw.num_bits();
        let clip = if n >= 64 { u64::MAX } else { (1 << n) - 1 };
        let masks: Vec<u64> = masks.iter().map(|m| m & clip).filter(|&m| m != 0).collect();
        prop_assert_eq!(raw.all_covered(&masks), reduced.all_covered(&masks));
    }

    #[test]
    fn semantics_coincide_at_latency_one(circuit in small_circuit_strategy()) {
        let faults = collapsed_faults(circuit.netlist());
        let a = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 1, semantics: Semantics::Lockstep, ..DetectOptions::default() },
        ).expect("fits").0;
        let b = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 1, semantics: Semantics::FaultyTrajectory, ..DetectOptions::default() },
        ).expect("fits").0;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn register_upsets_always_covered_by_state_singletons(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        let table = ced_sim::models::register_upset_table(&circuit, p);
        let masks: Vec<u64> = (0..circuit.state_bits()).map(|b| 1 << b).collect();
        prop_assert!(table.all_covered(&masks));
        for row in table.rows() {
            prop_assert!(row.steps[0].count_ones() == 1, "flip step must be a single bit");
            prop_assert!(row.steps[0] < (1 << circuit.state_bits()));
        }
    }

    #[test]
    fn merged_tables_cover_both_parts(
        circuit in small_circuit_strategy(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let stuck = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 2, reduce: false, ..DetectOptions::default() },
        ).expect("fits").0;
        let upsets = ced_sim::models::register_upset_table(&circuit, 2);
        let merged = stuck.merged(&upsets);
        // A random-ish family of masks: coverage of merged implies
        // coverage of each part.
        for masks in [vec![0b01u64, 0b10], vec![(1 << circuit.total_bits()) - 1], vec![0b11]] {
            if merged.all_covered(&masks) {
                prop_assert!(stuck.all_covered(&masks));
                prop_assert!(upsets.all_covered(&masks));
            }
        }
    }

    #[test]
    fn diagnosis_never_excludes_the_true_fault(
        circuit in small_circuit_strategy(),
        seed in any::<u64>(),
    ) {
        use ced_sim::diagnose::{FaultDictionary, Observation};
        use ced_sim::coverage::SimRng;
        let faults = collapsed_faults(circuit.netlist());
        let masks: Vec<u64> = (0..circuit.total_bits()).map(|b| 1 << b).collect();
        let dict = FaultDictionary::build(&circuit, &faults, &masks);
        let good = TransitionTables::good(&circuit);
        for (i, &f) in faults.iter().enumerate().take(6) {
            let bad = TransitionTables::faulty(&circuit, f);
            let mut rng = SimRng::new(seed ^ i as u64);
            let mut state = circuit.reset_code();
            let mut obs = Vec::new();
            for _ in 0..40 {
                let input = rng.next_u64() & ((1 << circuit.num_inputs()) - 1);
                let d = good.response(state, input) ^ bad.response(state, input);
                let mut syndrome = 0u64;
                for (l, &m) in masks.iter().enumerate() {
                    if (m & d).count_ones() & 1 == 1 {
                        syndrome |= 1 << l;
                    }
                }
                obs.push(Observation { state, input, syndrome });
                state = bad.next(state, input);
            }
            prop_assert!(dict.diagnose(&obs).contains(&i));
        }
    }

    #[test]
    fn build_checkpoints_round_trip_bit_exactly(
        circuit in small_circuit_strategy(),
        p in 1usize..=2,
    ) {
        use ced_runtime::{decode_checkpoint, encode_checkpoint, Budget};
        use ced_sim::detect::{BuildCheckpoint, BuildControl};

        // Capture every fault-boundary checkpoint of a real build.
        let faults = collapsed_faults(circuit.netlist());
        let budget = Budget::unlimited();
        let mut captured: Vec<BuildCheckpoint> = Vec::new();
        let mut sink = |c: &BuildCheckpoint| captured.push(c.clone());
        let mut control = BuildControl::new(&budget);
        control.checkpoint_every = 1;
        control.on_checkpoint = Some(&mut sink);
        DetectabilityTable::build_many_controlled(
            &circuit,
            &faults,
            &DetectOptions { latency: p, ..DetectOptions::default() },
            &[p],
            control,
        ).expect("fits");
        prop_assert!(!captured.is_empty(), "a build over ≥1 fault must checkpoint");

        const KIND: u16 = 7;
        for ckpt in &captured {
            // Payload round trip is bit-exact in both directions.
            let payload = ckpt.to_bytes();
            let back = BuildCheckpoint::from_bytes(&payload).expect("payload decodes");
            prop_assert_eq!(&back, ckpt);
            prop_assert_eq!(back.to_bytes(), payload.clone());
            // And so is the trip through the on-disk envelope.
            let container = encode_checkpoint(KIND, &payload);
            prop_assert_eq!(decode_checkpoint(&container, KIND).expect("envelope"), payload);
        }

        // A build resumed from a serialized mid-run checkpoint yields
        // a table identical to the uninterrupted build.
        let options = DetectOptions { latency: p, ..DetectOptions::default() };
        let clean = DetectabilityTable::build_many(&circuit, &faults, &options, &[p])
            .expect("fits");
        let mid = BuildCheckpoint::from_bytes(&captured[captured.len() / 2].to_bytes())
            .expect("payload decodes");
        let mut control = BuildControl::new(&budget);
        control.resume = Some(mid);
        let resumed = DetectabilityTable::build_many_controlled(
            &circuit,
            &faults,
            &options,
            &[p],
            control,
        ).expect("resume fits");
        prop_assert_eq!(resumed, clean);
    }

    #[test]
    fn corrupting_any_checkpoint_byte_is_detected(
        circuit in small_circuit_strategy(),
        offset_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        use ced_runtime::{decode_checkpoint, encode_checkpoint, Budget, CheckpointError};
        use ced_sim::detect::{BuildCheckpoint, BuildControl};

        let faults = collapsed_faults(circuit.netlist());
        let budget = Budget::unlimited();
        let mut captured: Option<BuildCheckpoint> = None;
        let mut sink = |c: &BuildCheckpoint| captured = Some(c.clone());
        let mut control = BuildControl::new(&budget);
        control.checkpoint_every = 1;
        control.on_checkpoint = Some(&mut sink);
        DetectabilityTable::build_many_controlled(
            &circuit,
            &faults,
            &DetectOptions::default(),
            &[1],
            control,
        ).expect("fits");
        let payload = captured.expect("checkpoint captured").to_bytes();

        const KIND: u16 = 7;
        let clean = encode_checkpoint(KIND, &payload);
        let offset = offset_seed % clean.len();
        let mut corrupt = clean.clone();
        corrupt[offset] ^= flip;

        // No single-byte corruption may ever decode successfully.
        let err = decode_checkpoint(&corrupt, KIND)
            .expect_err("corrupted envelope must be rejected");
        // A flipped *payload* byte is specifically a checksum mismatch
        // (header corruption may trip an earlier, equally-typed check).
        if offset >= 16 && offset < 16 + payload.len() {
            prop_assert!(
                matches!(err, CheckpointError::ChecksumMismatch { .. }),
                "payload corruption at {} produced {:?}", offset, err
            );
        }
    }

    #[test]
    fn pooled_build_matches_serial_at_every_job_count(
        circuit in small_circuit_strategy(),
        p in 1usize..=2,
        jobs in 2usize..=4,
    ) {
        use ced_par::ParExec;
        use ced_runtime::Budget;
        use ced_sim::detect::BuildControl;

        let faults = collapsed_faults(circuit.netlist());
        let options = DetectOptions { latency: p, ..DetectOptions::default() };
        let serial = DetectabilityTable::build_many(&circuit, &faults, &options, &[p])
            .expect("fits");
        let budget = Budget::unlimited();
        let pool = ParExec::new(jobs);
        let pooled = DetectabilityTable::build_many_controlled(
            &circuit,
            &faults,
            &options,
            &[p],
            BuildControl { pool: Some(&pool), ..BuildControl::new(&budget) },
        ).expect("fits");
        prop_assert_eq!(&serial, &pooled);
        // Bitwise, not just structurally: the serialized tensors agree.
        for ((ts, _), (tp, _)) in serial.iter().zip(&pooled) {
            prop_assert_eq!(ts.to_bytes(), tp.to_bytes());
        }
    }

    #[test]
    fn build_errors_surface_identically_under_the_pool(
        circuit in small_circuit_strategy(),
        jobs in 2usize..=4,
    ) {
        use ced_par::ParExec;
        use ced_runtime::Budget;
        use ced_sim::detect::BuildControl;

        let faults = collapsed_faults(circuit.netlist());
        let budget = Budget::unlimited();
        let pool = ParExec::new(jobs);
        // A row cap of 1 and an overflowing tensor volume: both error
        // paths must produce the same typed error at the same point no
        // matter which prefetch worker was in flight when it tripped.
        for options in [
            DetectOptions { latency: 1, max_rows: 1, ..DetectOptions::default() },
            DetectOptions { latency: 2, max_rows: usize::MAX / 2, ..DetectOptions::default() },
        ] {
            let serial = DetectabilityTable::build_many(&circuit, &faults, &options, &[options.latency]);
            let pooled = DetectabilityTable::build_many_controlled(
                &circuit,
                &faults,
                &options,
                &[options.latency],
                BuildControl { pool: Some(&pool), ..BuildControl::new(&budget) },
            );
            match (&serial, &pooled) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
                _ => prop_assert!(false, "serial {serial:?} vs pooled {pooled:?}"),
            }
        }
    }

    #[test]
    fn degenerate_fault_models_collapse_to_permanent(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        // A never-deasserting SEU, an every-step intermittent and a
        // zero-radius cluster are the permanent model in disguise: the
        // timed/multi-net enumerators must reproduce the permanent
        // tensor bit for bit on arbitrary machines, both semantics.
        let faults = collapsed_faults(circuit.netlist());
        for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
            let base = DetectOptions {
                latency: p,
                semantics,
                ..DetectOptions::default()
            };
            let permanent = DetectabilityTable::build(&circuit, &faults, &base)
                .expect("fits").0;
            for model in [
                FaultModel::TransientSeu { duration: usize::MAX },
                FaultModel::Intermittent { period: 1 },
                FaultModel::MultiBitCluster { radius: 0 },
            ] {
                let got = DetectabilityTable::build(
                    &circuit,
                    &faults,
                    &DetectOptions { fault_model: model, ..base.clone() },
                ).expect("fits").0;
                prop_assert_eq!(&got, &permanent, "p={} {:?} {}", p, semantics, model);
                prop_assert_eq!(got.to_bytes(), permanent.to_bytes());
            }
        }
    }

    #[test]
    fn timed_models_at_latency_one_match_permanent(
        circuit in small_circuit_strategy(),
        duration in 1usize..=3,
        period in 2usize..=4,
    ) {
        // Step 1 is active under every model, so a latency-1 tensor
        // cannot see a fault deassert: all models coincide there.
        let faults = collapsed_faults(circuit.netlist());
        for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
            let base = DetectOptions {
                latency: 1,
                semantics,
                ..DetectOptions::default()
            };
            let permanent = DetectabilityTable::build(&circuit, &faults, &base)
                .expect("fits").0;
            for model in [
                FaultModel::TransientSeu { duration },
                FaultModel::Intermittent { period },
            ] {
                let got = DetectabilityTable::build(
                    &circuit,
                    &faults,
                    &DetectOptions { fault_model: model, ..base.clone() },
                ).expect("fits").0;
                prop_assert_eq!(&got, &permanent, "{:?} {}", semantics, model);
            }
        }
    }

    #[test]
    fn singleton_monitors_never_miss_operationally(
        circuit in small_circuit_strategy(),
        seed in any::<u64>(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let singles: Vec<u64> = (0..circuit.total_bits()).map(|b| 1 << b).collect();
        for (i, &f) in faults.iter().enumerate().take(12) {
            for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
                let out = simulate_fault_detection(
                    &circuit, f, &singles, 1, 300, seed ^ i as u64, semantics,
                );
                let missed = matches!(out, SimOutcome::Missed { .. });
                prop_assert!(!missed);
            }
        }
    }
}
