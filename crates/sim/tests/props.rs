//! Property-based tests for the fault-simulation layer: table
//! extraction fidelity, detectability invariants, dominance-reduction
//! equivalence and the analytic/operational soundness link.

use ced_fsm::encoded::EncodedFsm;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_logic::MinimizeOptions;
use ced_sim::coverage::{simulate_fault_detection, SimOutcome};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};
use ced_sim::fault::{all_faults, collapsed_faults};
use ced_sim::tables::TransitionTables;
use proptest::prelude::*;

fn small_circuit_strategy() -> impl Strategy<Value = ced_fsm::FsmCircuit> {
    (1usize..=2, 2usize..=6, 1usize..=3, any::<u64>()).prop_map(
        |(inputs, states, outputs, seed)| {
            let fsm = generate(&GeneratorConfig {
                name: "sim-prop".into(),
                num_inputs: inputs,
                num_states: states,
                num_outputs: outputs,
                cubes_per_state: 3,
                self_loop_bias: 0.3,
                output_dc_prob: 0.1,
                output_pool: 2,
                seed,
            });
            let enc = assign(&fsm, EncodingStrategy::Natural);
            EncodedFsm::new(fsm, enc)
                .expect("well-formed")
                .synthesize(&MinimizeOptions::default())
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tables_match_circuit_stepping(circuit in small_circuit_strategy()) {
        let t = TransitionTables::good(&circuit);
        for code in 0..(1u64 << circuit.state_bits()) {
            for input in 0..(1u64 << circuit.num_inputs()) {
                let (next, out) = circuit.step(code, input);
                prop_assert_eq!(t.next(code, input), next);
                prop_assert_eq!(t.output(code, input), out);
            }
        }
    }

    #[test]
    fn collapsed_faults_are_subset_of_all(circuit in small_circuit_strategy()) {
        let all = all_faults(circuit.netlist());
        let collapsed = collapsed_faults(circuit.netlist());
        prop_assert!(collapsed.len() <= all.len());
        for f in &collapsed {
            prop_assert!(all.contains(f));
        }
    }

    #[test]
    fn detectability_rows_have_nonzero_activation(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let (table, stats) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, ..DetectOptions::default() },
        ).expect("fits");
        prop_assert_eq!(stats.rows, table.len());
        for row in table.rows() {
            prop_assert!(row.any_step_union() != 0, "all-zero row");
            prop_assert_eq!(row.steps.len(), p);
        }
        // Singleton masks always cover.
        let singles: Vec<u64> = (0..table.num_bits()).map(|b| 1 << b).collect();
        prop_assert!(table.all_covered(&singles));
    }

    #[test]
    fn online_reduction_equals_offline(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let online = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, reduce: true, ..DetectOptions::default() },
        ).expect("fits").0;
        let offline = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, reduce: false, ..DetectOptions::default() },
        ).expect("fits").0.dominance_reduced();
        prop_assert_eq!(online, offline);
    }

    #[test]
    fn reduction_preserves_coverage_for_random_masks(
        circuit in small_circuit_strategy(),
        masks in proptest::collection::vec(1u64..64, 1..4),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let raw = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 2, reduce: false, ..DetectOptions::default() },
        ).expect("fits").0;
        let reduced = raw.dominance_reduced();
        let n = raw.num_bits();
        let clip = if n >= 64 { u64::MAX } else { (1 << n) - 1 };
        let masks: Vec<u64> = masks.iter().map(|m| m & clip).filter(|&m| m != 0).collect();
        prop_assert_eq!(raw.all_covered(&masks), reduced.all_covered(&masks));
    }

    #[test]
    fn semantics_coincide_at_latency_one(circuit in small_circuit_strategy()) {
        let faults = collapsed_faults(circuit.netlist());
        let a = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 1, semantics: Semantics::Lockstep, ..DetectOptions::default() },
        ).expect("fits").0;
        let b = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 1, semantics: Semantics::FaultyTrajectory, ..DetectOptions::default() },
        ).expect("fits").0;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn register_upsets_always_covered_by_state_singletons(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
    ) {
        let table = ced_sim::models::register_upset_table(&circuit, p);
        let masks: Vec<u64> = (0..circuit.state_bits()).map(|b| 1 << b).collect();
        prop_assert!(table.all_covered(&masks));
        for row in table.rows() {
            prop_assert!(row.steps[0].count_ones() == 1, "flip step must be a single bit");
            prop_assert!(row.steps[0] < (1 << circuit.state_bits()));
        }
    }

    #[test]
    fn merged_tables_cover_both_parts(
        circuit in small_circuit_strategy(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let stuck = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: 2, reduce: false, ..DetectOptions::default() },
        ).expect("fits").0;
        let upsets = ced_sim::models::register_upset_table(&circuit, 2);
        let merged = stuck.merged(&upsets);
        // A random-ish family of masks: coverage of merged implies
        // coverage of each part.
        for masks in [vec![0b01u64, 0b10], vec![(1 << circuit.total_bits()) - 1], vec![0b11]] {
            if merged.all_covered(&masks) {
                prop_assert!(stuck.all_covered(&masks));
                prop_assert!(upsets.all_covered(&masks));
            }
        }
    }

    #[test]
    fn diagnosis_never_excludes_the_true_fault(
        circuit in small_circuit_strategy(),
        seed in any::<u64>(),
    ) {
        use ced_sim::diagnose::{FaultDictionary, Observation};
        use ced_sim::coverage::SimRng;
        let faults = collapsed_faults(circuit.netlist());
        let masks: Vec<u64> = (0..circuit.total_bits()).map(|b| 1 << b).collect();
        let dict = FaultDictionary::build(&circuit, &faults, &masks);
        let good = TransitionTables::good(&circuit);
        for (i, &f) in faults.iter().enumerate().take(6) {
            let bad = TransitionTables::faulty(&circuit, f);
            let mut rng = SimRng::new(seed ^ i as u64);
            let mut state = circuit.reset_code();
            let mut obs = Vec::new();
            for _ in 0..40 {
                let input = rng.next_u64() & ((1 << circuit.num_inputs()) - 1);
                let d = good.response(state, input) ^ bad.response(state, input);
                let mut syndrome = 0u64;
                for (l, &m) in masks.iter().enumerate() {
                    if (m & d).count_ones() & 1 == 1 {
                        syndrome |= 1 << l;
                    }
                }
                obs.push(Observation { state, input, syndrome });
                state = bad.next(state, input);
            }
            prop_assert!(dict.diagnose(&obs).contains(&i));
        }
    }

    #[test]
    fn singleton_monitors_never_miss_operationally(
        circuit in small_circuit_strategy(),
        seed in any::<u64>(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let singles: Vec<u64> = (0..circuit.total_bits()).map(|b| 1 << b).collect();
        for (i, &f) in faults.iter().enumerate().take(12) {
            for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
                let out = simulate_fault_detection(
                    &circuit, f, &singles, 1, 300, seed ^ i as u64, semantics,
                );
                let missed = matches!(out, SimOutcome::Missed { .. });
                prop_assert!(!missed);
            }
        }
    }
}
