//! Property tests pinning the bit-packed sparse representation to the
//! row-major tensor on *real* built tables: random generated machines,
//! random latency bounds, and all four fault-model families. The packed
//! queries must agree bit for bit — same booleans, same indices, same
//! counts — and the GF(2) case kernel must answer cover checks exactly
//! like the full table.

use ced_fsm::encoded::EncodedFsm;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_logic::MinimizeOptions;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::fault::{collapsed_faults, FaultModel};
use ced_sim::packed::{PackedTable, SparseTables};
use ced_store::RowSet;
use proptest::prelude::*;

fn small_circuit_strategy() -> impl Strategy<Value = ced_fsm::FsmCircuit> {
    (1usize..=2, 2usize..=6, 1usize..=3, any::<u64>()).prop_map(
        |(inputs, states, outputs, seed)| {
            let fsm = generate(&GeneratorConfig {
                name: "sparse-prop".into(),
                num_inputs: inputs,
                num_states: states,
                num_outputs: outputs,
                cubes_per_state: 3,
                self_loop_bias: 0.3,
                output_dc_prob: 0.1,
                output_pool: 2,
                seed,
            });
            let enc = assign(&fsm, EncodingStrategy::Natural);
            EncodedFsm::new(fsm, enc)
                .expect("well-formed")
                .synthesize(&MinimizeOptions::default())
        },
    )
}

/// One representative of each fault-model family, indexed so proptest
/// can pick among them.
fn model(index: usize) -> FaultModel {
    match index % 4 {
        0 => FaultModel::PermanentStuckAt,
        1 => FaultModel::TransientSeu { duration: 2 },
        2 => FaultModel::Intermittent { period: 2 },
        _ => FaultModel::MultiBitCluster { radius: 1 },
    }
}

/// A deterministic stream of clipped mask families.
fn mask_families(num_bits: usize, seed: u64, count: usize) -> Vec<Vec<u64>> {
    let clip = if num_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << num_bits) - 1
    };
    let mut x = seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 7
    };
    (0..count)
        .map(|i| (0..=(i % 3)).map(|_| next() & clip).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packed query agrees with its row-major twin on a real
    /// tensor, whatever the fault model and latency bound.
    #[test]
    fn packed_table_matches_dense_on_built_tensors(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
        model_index in 0usize..4,
        mask_seed in any::<u64>(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let table = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                fault_model: model(model_index),
                ..DetectOptions::default()
            },
        ).expect("fits").0;
        let packed = PackedTable::from_table(&table);
        prop_assert_eq!(packed.len(), table.len());
        prop_assert_eq!(packed.num_bits(), table.num_bits());
        prop_assert_eq!(packed.latency(), table.latency());
        for masks in mask_families(table.num_bits(), mask_seed, 12) {
            prop_assert_eq!(
                packed.first_uncovered(&masks),
                table.first_uncovered(&masks),
                "masks {:?}", masks
            );
            prop_assert_eq!(packed.all_covered(&masks), table.all_covered(&masks));
            prop_assert_eq!(packed.uncovered_rows(&masks), table.uncovered_rows(&masks));
        }
    }

    /// The case-kernel boolean equals the full-table boolean on real
    /// tensors — the witness map is sound on machine-shaped structure,
    /// not just on synthetic rows.
    #[test]
    fn kernel_cover_check_matches_full_on_built_tensors(
        circuit in small_circuit_strategy(),
        p in 1usize..=3,
        model_index in 0usize..4,
        mask_seed in any::<u64>(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let table = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                fault_model: model(model_index),
                ..DetectOptions::default()
            },
        ).expect("fits").0;
        let sparse = SparseTables::build(&table);
        prop_assert!(sparse.kernel().len() <= table.len());
        prop_assert_eq!(sparse.reduction().len(), table.len());
        for masks in mask_families(table.num_bits(), mask_seed, 16) {
            prop_assert_eq!(
                sparse.all_covered(&masks),
                table.all_covered(&masks),
                "masks {:?}", masks
            );
        }
        // Singleton masks cover every built table; the kernel must say
        // so too.
        let singles: Vec<u64> = (0..table.num_bits()).map(|b| 1 << b).collect();
        prop_assert!(sparse.all_covered(&singles));
    }

    /// Witness soundness on real tensors: every dropped row's witness
    /// is at least as hard to detect — any mask detecting the witness
    /// detects the dropped row. This is the per-row obligation behind
    /// the kernel boolean, checked directly.
    #[test]
    fn case_witnesses_are_sound_on_built_tensors(
        circuit in small_circuit_strategy(),
        p in 1usize..=2,
        model_index in 0usize..4,
        mask_seed in any::<u64>(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let table = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                fault_model: model(model_index),
                ..DetectOptions::default()
            },
        ).expect("fits").0;
        let sparse = SparseTables::build(&table);
        let reduction = sparse.reduction();
        let rows = table.rows();
        for masks in mask_families(table.num_bits(), mask_seed, 8) {
            for (i, row) in rows.iter().enumerate() {
                let w = reduction.witness_for(i);
                for &m in &masks {
                    if rows[w].detected_by(m) {
                        prop_assert!(
                            row.detected_by(m),
                            "mask {m:#x} detects witness {w} but not row {i}"
                        );
                    }
                }
            }
        }
    }

    /// Greedy scoring parity: the packed covered-count over a shrinking
    /// uncovered set equals the filtered row-major count on real
    /// tensors (the query the greedy hill climber spends its time in).
    #[test]
    fn packed_covered_count_matches_on_built_tensors(
        circuit in small_circuit_strategy(),
        p in 1usize..=2,
        mask_seed in any::<u64>(),
    ) {
        let faults = collapsed_faults(circuit.netlist());
        let table = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions { latency: p, ..DetectOptions::default() },
        ).expect("fits").0;
        let packed = PackedTable::from_table(&table);
        let mut uncovered = RowSet::full(table.len());
        for (step, masks) in mask_families(table.num_bits(), mask_seed, 6).iter().enumerate() {
            for &mask in masks {
                let dense = uncovered
                    .iter()
                    .filter(|&i| table.rows()[i].detected_by(mask))
                    .count();
                prop_assert_eq!(packed.covered_count(mask, &uncovered), dense);
            }
            // Shrink the uncovered set as the greedy loop would.
            for i in (step..table.len()).step_by(3) {
                uncovered.remove(i);
            }
        }
    }
}
