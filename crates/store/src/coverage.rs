//! The shared coverage-bitset substrate.
//!
//! Two views of "which erroneous cases does this object cover" used to
//! be duplicated across crates:
//!
//! * **Step-set families** — a detectability row is canonically the
//!   *set* of its nonzero step masks, and a row whose step-set is a
//!   superset of another row's is implied by it (any parity cover of
//!   the subset row covers the superset row too). `sim::detect` kept
//!   one copy of this pruning inside its enumeration collector and a
//!   second in `dominance_reduced`. [`CoverageMatrix`] is that family,
//!   with the subset-enumeration dominance test and the
//!   supersets-removal cleanup in one place.
//!
//! * **Row bitsets** — the cover search in `core::exact` kept coverage
//!   words (`Vec<u64>` over table rows) per candidate mask, and
//!   `core::greedy` kept an uncovered-row index list. [`RowSet`] is
//!   that bitset, with the subset/dominance drop shared via
//!   [`drop_dominated`].
//!
//! Everything here is deterministic: iteration and serialization
//! orders are sorted, never hash order.

use ced_runtime::{ByteReader, ByteWriter, CheckpointError};
use std::collections::HashSet;

/// A family of canonical step-sets (each set sorted, distinct,
/// nonzero), optionally maintained in dominance-reduced (minimal
/// step-set) form.
///
/// Dominance: a set is *dominated* when some kept set is a subset of it
/// (including equality) — everything containing the kept set is already
/// implied for every covering question. Sets are tiny (`|s| ≤ p`, the
/// latency bound), so the test enumerates all `2^|s| − 1` subsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMatrix {
    sets: HashSet<Vec<u64>>,
}

impl CoverageMatrix {
    /// An empty family.
    pub fn new() -> CoverageMatrix {
        CoverageMatrix::default()
    }

    /// Builds a family from pre-canonicalized sets (no dominance
    /// filtering; used to restore snapshots).
    pub fn from_sets(sets: impl IntoIterator<Item = Vec<u64>>) -> CoverageMatrix {
        CoverageMatrix {
            sets: sets.into_iter().collect(),
        }
    }

    /// The canonical step-set of a (partial) row: nonzero entries,
    /// sorted, deduplicated.
    pub fn canonical(steps: &[u64]) -> Vec<u64> {
        let mut s: Vec<u64> = steps.iter().copied().filter(|&d| d != 0).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Number of kept sets.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True iff no sets are kept.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// True iff exactly this canonical set is kept.
    pub fn contains(&self, set: &[u64]) -> bool {
        self.sets.contains(set)
    }

    /// True iff some kept set is a subset of `set` (including
    /// equality). Empty sets are never dominated.
    pub fn dominated(&self, set: &[u64]) -> bool {
        if set.is_empty() {
            return false;
        }
        let k = set.len();
        // All non-empty subsets of a ≤p-element set (p is small).
        for pick in 1..(1usize << k) {
            let subset: Vec<u64> = (0..k)
                .filter(|i| (pick >> i) & 1 == 1)
                .map(|i| set[i])
                .collect();
            if self.sets.contains(&subset) {
                return true;
            }
        }
        false
    }

    /// Inserts a pre-canonicalized set without any dominance check
    /// (raw-row mode and snapshot restore).
    pub fn insert_raw(&mut self, set: Vec<u64>) {
        self.sets.insert(set);
    }

    /// Inserts `set` unless it is empty or dominated; returns whether
    /// it was kept. The family may transiently hold supersets of later
    /// insertions — run [`Self::remove_supersets`] to re-minimalize.
    pub fn insert_minimal(&mut self, set: Vec<u64>) -> bool {
        if set.is_empty() || self.dominated(&set) {
            return false;
        }
        self.sets.insert(set);
        true
    }

    /// Removes every set that is a proper superset of another kept set,
    /// smallest sets first. Deterministic: ties are broken
    /// lexicographically, and equal-size distinct sets never dominate
    /// each other.
    pub fn remove_supersets(&mut self) {
        let mut by_len: Vec<Vec<u64>> = self.sets.drain().collect();
        by_len.sort_by(|a, b| (a.len(), a).cmp(&(b.len(), b)));
        let mut kept: HashSet<Vec<u64>> = HashSet::with_capacity(by_len.len());
        'outer: for s in by_len {
            let k = s.len();
            if k > 1 {
                // Proper non-empty subsets only (the set itself is
                // distinct from everything already kept).
                for pick in 1..((1usize << k) - 1) {
                    let subset: Vec<u64> = (0..k)
                        .filter(|i| (pick >> i) & 1 == 1)
                        .map(|i| s[i])
                        .collect();
                    if kept.contains(&subset) {
                        continue 'outer;
                    }
                }
            }
            kept.insert(s);
        }
        self.sets = kept;
    }

    /// The kept sets in sorted order (the canonical serialization and
    /// snapshot order — independent of hash iteration order).
    pub fn sorted_sets(&self) -> Vec<Vec<u64>> {
        let mut sets: Vec<Vec<u64>> = self.sets.iter().cloned().collect();
        sets.sort_unstable();
        sets
    }

    /// Consumes the family into its sorted sets.
    pub fn into_sorted_sets(self) -> Vec<Vec<u64>> {
        let mut sets: Vec<Vec<u64>> = self.sets.into_iter().collect();
        sets.sort_unstable();
        sets
    }

    /// Serializes the family in canonical (sorted) order.
    pub fn write(&self, w: &mut ByteWriter) {
        let sets = self.sorted_sets();
        w.usize(sets.len());
        for s in &sets {
            w.u64_slice(s);
        }
    }

    /// Deserializes a family written by [`Self::write`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncated or malformed payloads.
    pub fn read(r: &mut ByteReader<'_>) -> Result<CoverageMatrix, CheckpointError> {
        let n = r.usize()?;
        let mut sets = HashSet::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            sets.insert(r.u64_slice()?);
        }
        Ok(CoverageMatrix { sets })
    }
}

/// A bitset over the rows of a detectability table: which erroneous
/// cases an object (candidate parity mask, partial cover) detects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowSet {
    words: Vec<u64>,
    rows: usize,
}

impl RowSet {
    /// The empty set over `rows` rows.
    pub fn empty(rows: usize) -> RowSet {
        RowSet {
            words: vec![0u64; rows.div_ceil(64)],
            rows,
        }
    }

    /// The full set over `rows` rows.
    pub fn full(rows: usize) -> RowSet {
        let mut s = RowSet::empty(rows);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        let extra = s.words.len() * 64 - rows;
        if extra > 0 {
            if let Some(last) = s.words.last_mut() {
                *last >>= extra;
            }
        }
        s
    }

    /// Builds a set from backing words (LSB-first); bits beyond `rows`
    /// are masked off.
    pub fn from_words(mut words: Vec<u64>, rows: usize) -> RowSet {
        words.resize(rows.div_ceil(64), 0);
        let extra = words.len() * 64 - rows;
        if extra > 0 {
            if let Some(last) = words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
        RowSet { words, rows }
    }

    /// Number of rows the set ranges over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The backing words (LSB-first).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Marks row `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.rows);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears row `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.rows);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// True iff row `i` is marked.
    pub fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of marked rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff no row is marked.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True iff every marked row of `self` is marked in `other`.
    pub fn is_subset_of(&self, other: &RowSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &RowSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The lowest unmarked row, if any.
    pub fn first_clear(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let i = wi * 64 + (!w).trailing_zeros() as usize;
                if i < self.rows {
                    return Some(i);
                }
            }
        }
        None
    }

    /// The lowest marked row, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates the marked rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// A GF(2) linear basis over `u64` vectors in row-echelon form: every
/// kept vector has a distinct leading (highest set) bit, maintained in
/// descending leading-bit order so reduction is a single pass.
#[derive(Debug, Clone, Default)]
struct Gf2Basis {
    vecs: Vec<u64>,
}

impl Gf2Basis {
    /// Reduces `v` against the basis; the result is `0` iff `v` lies in
    /// the span.
    fn reduce(&self, mut v: u64) -> u64 {
        for &b in &self.vecs {
            let lead = 63 - b.leading_zeros();
            if (v >> lead) & 1 == 1 {
                v ^= b;
            }
        }
        v
    }

    /// Inserts `v` if independent of the span; returns whether the
    /// dimension grew.
    fn insert(&mut self, v: u64) -> bool {
        let v = self.reduce(v);
        if v == 0 {
            return false;
        }
        self.vecs.push(v);
        // Keep descending leading-bit order; leading bits are distinct
        // by construction, so plain descending value order works.
        self.vecs.sort_unstable_by(|a, b| b.cmp(a));
        true
    }

    fn dim(&self) -> usize {
        self.vecs.len()
    }

    /// True iff `span(other) ⊆ span(self)`.
    fn spans(&self, other: &Gf2Basis) -> bool {
        other.vecs.iter().all(|&v| self.reduce(v) == 0)
    }
}

/// The result of [`reduce_cases`]: a kernel of erroneous cases whose
/// coverage implies coverage of the full case set, plus the witness map
/// proving it row by row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseReduction {
    kernel: Vec<usize>,
    witness: Vec<usize>,
}

impl CaseReduction {
    /// The kept row indices, ascending. Covering exactly these rows is
    /// equivalent to covering every row of the input.
    pub fn kernel(&self) -> &[usize] {
        &self.kernel
    }

    /// The kernel row whose detection implies detection of `row` (the
    /// reconstruction map; a kernel row witnesses itself).
    pub fn witness_for(&self, row: usize) -> usize {
        self.witness[row]
    }

    /// Number of rows in the original case set.
    pub fn len(&self) -> usize {
        self.witness.len()
    }

    /// True iff the input had no rows.
    pub fn is_empty(&self) -> bool {
        self.witness.is_empty()
    }
}

/// Symmetry/dominance reduction of erroneous *cases* (rows of step
/// masks), strictly generalizing the step-set subset dominance of
/// [`CoverageMatrix`] to GF(2) span containment.
///
/// A parity mask `m` detects row `i` iff some step mask `d ∈ D(i)` has
/// odd overlap with `m`, i.e. iff `m` is *not* orthogonal to all of
/// `D(i)` — equivalently `m ∉ span(D(i))⊥`. If
/// `span(D(j)) ⊆ span(D(i))` then `span(D(i))⊥ ⊆ span(D(j))⊥`, so any
/// mask failing to detect row `i` also fails to detect row `j`:
/// **detecting `j` implies detecting `i`**, and row `i` may be dropped
/// with witness `j`. (A step-set subset is the special case where the
/// containment is witnessed by the generators themselves; XOR
/// combinations are what the span view adds.)
///
/// The kernel keeps, for each containment class, the row with the
/// smallest span — rows are processed in ascending `(dimension, index)`
/// order and a row is dropped the moment an already-kept row's span is
/// contained in its own. Ties (equal spans) keep the lowest index. The
/// witness map is total: a cover detects every input row iff it
/// detects every kernel row, because `detects(witness(i)) ⇒ detects(i)`
/// and every kernel row is its own witness. Deterministic in the input
/// order alone.
pub fn reduce_cases<R: AsRef<[u64]>>(rows: &[R]) -> CaseReduction {
    let m = rows.len();
    let mut bases = Vec::with_capacity(m);
    let mut support = vec![0u64; m];
    for (i, row) in rows.iter().enumerate() {
        let mut basis = Gf2Basis::default();
        for &d in row.as_ref() {
            if d != 0 {
                basis.insert(d);
                support[i] |= d;
            }
        }
        bases.push(basis);
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_unstable_by_key(|&i| (bases[i].dim(), i));
    let mut kernel: Vec<usize> = Vec::new();
    let mut witness = vec![usize::MAX; m];
    'rows: for &i in &order {
        for &j in &kernel {
            // Cheap necessary conditions first: a contained span has no
            // support outside the container's and no larger dimension.
            if bases[j].dim() <= bases[i].dim()
                && support[j] & !support[i] == 0
                && bases[i].spans(&bases[j])
            {
                witness[i] = j;
                continue 'rows;
            }
        }
        witness[i] = i;
        kernel.push(i);
    }
    kernel.sort_unstable();
    CaseReduction { kernel, witness }
}

/// Drops dominated candidates: a candidate whose coverage is a subset
/// of an earlier *kept* candidate's coverage (including equality) is
/// removed. The caller orders the input by preference (the cover
/// searches order by descending coverage size so supersets are seen
/// first); order among the survivors is preserved.
pub fn drop_dominated<T>(candidates: Vec<(RowSet, T)>) -> Vec<(RowSet, T)> {
    let mut kept: Vec<(RowSet, T)> = Vec::new();
    'outer: for (cov, payload) in candidates {
        for (kc, _) in &kept {
            if cov.is_subset_of(kc) {
                continue 'outer;
            }
        }
        kept.push((cov, payload));
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sorts_dedups_and_drops_zeros() {
        assert_eq!(CoverageMatrix::canonical(&[3, 0, 1, 3]), vec![1, 3]);
        assert!(CoverageMatrix::canonical(&[0, 0]).is_empty());
    }

    #[test]
    fn dominance_includes_equality_and_subsets() {
        let mut m = CoverageMatrix::new();
        m.insert_raw(vec![2, 5]);
        assert!(m.dominated(&[2, 5]));
        assert!(m.dominated(&[1, 2, 5]));
        assert!(!m.dominated(&[2]));
        assert!(!m.dominated(&[]));
    }

    #[test]
    fn insert_minimal_skips_dominated_and_empty() {
        let mut m = CoverageMatrix::new();
        assert!(m.insert_minimal(vec![1, 2]));
        assert!(!m.insert_minimal(vec![1, 2, 3]));
        assert!(!m.insert_minimal(Vec::new()));
        // A subset of a kept set is NOT dominated by it; it supersedes.
        assert!(m.insert_minimal(vec![1]));
        m.remove_supersets();
        assert_eq!(m.sorted_sets(), vec![vec![1]]);
    }

    #[test]
    fn remove_supersets_is_order_independent() {
        let sets = [vec![1u64, 2, 3], vec![1, 2], vec![2], vec![4, 5], vec![4]];
        let mut forward = CoverageMatrix::new();
        for s in &sets {
            forward.insert_raw(s.clone());
        }
        let mut reverse = CoverageMatrix::new();
        for s in sets.iter().rev() {
            reverse.insert_raw(s.clone());
        }
        forward.remove_supersets();
        reverse.remove_supersets();
        assert_eq!(forward.sorted_sets(), reverse.sorted_sets());
        assert_eq!(forward.sorted_sets(), vec![vec![2], vec![4]]);
    }

    #[test]
    fn serialization_round_trips_in_canonical_order() {
        let mut m = CoverageMatrix::new();
        m.insert_raw(vec![7]);
        m.insert_raw(vec![1, 9]);
        let mut w = ByteWriter::new();
        m.write(&mut w);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = CoverageMatrix::read(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.sorted_sets(), m.sorted_sets());
        // Canonical bytes: a second write is identical.
        let mut w2 = ByteWriter::new();
        back.write(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn rowset_basics() {
        let mut s = RowSet::empty(70);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(69);
        assert_eq!(s.count(), 2);
        assert!(s.contains(69) && !s.contains(68));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 69]);
        assert_eq!(s.first_set(), Some(0));
        assert_eq!(s.first_clear(), Some(1));
        s.remove(0);
        assert_eq!(s.first_set(), Some(69));
        let full = RowSet::full(70);
        assert_eq!(full.count(), 70);
        assert_eq!(full.first_clear(), None);
        assert!(s.is_subset_of(&full));
        assert!(!full.is_subset_of(&s));
        let mut u = s.clone();
        u.union_with(&full);
        assert_eq!(u, full);
    }

    /// Reference detection predicate: some step has odd overlap.
    fn detects(mask: u64, row: &[u64]) -> bool {
        row.iter().any(|&d| (d & mask).count_ones() & 1 == 1)
    }

    #[test]
    fn reduce_cases_subset_rows_dominate_supersets() {
        // Row 1's step-set is a superset of row 0's: covering row 0
        // covers row 1. Row 2 is independent.
        let rows = vec![vec![0b01u64], vec![0b01, 0b10], vec![0b100]];
        let red = reduce_cases(&rows);
        assert_eq!(red.kernel(), &[0, 2]);
        assert_eq!(red.witness_for(0), 0);
        assert_eq!(red.witness_for(1), 0);
        assert_eq!(red.witness_for(2), 2);
    }

    #[test]
    fn reduce_cases_sees_xor_combinations_beyond_subsets() {
        // span{011, 101} = {0, 011, 101, 110} contains span{110}: the
        // subset test misses this (110 is in neither step set), the
        // span test does not.
        let rows = vec![vec![0b011u64, 0b101], vec![0b110]];
        let red = reduce_cases(&rows);
        assert_eq!(red.kernel(), &[1]);
        assert_eq!(red.witness_for(0), 1);
    }

    #[test]
    fn reduce_cases_equal_spans_keep_lowest_index() {
        let rows = vec![vec![0b11u64, 0b01], vec![0b01, 0b10]];
        let red = reduce_cases(&rows);
        assert_eq!(red.kernel(), &[0]);
        assert_eq!(red.witness_for(1), 0);
    }

    #[test]
    fn reduce_cases_witnesses_are_sound_for_every_mask() {
        // Exhaustive check of the reconstruction property on a small
        // deterministic family: for every mask, detecting the witness
        // implies detecting the row — hence covering the kernel is
        // covering everything.
        let mut rows: Vec<Vec<u64>> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for _ in 0..40 {
            let mut row = Vec::new();
            for _ in 0..3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row.push((x >> 40) & 0x1F);
            }
            rows.push(row);
        }
        let red = reduce_cases(&rows);
        for mask in 0..32u64 {
            for (i, row) in rows.iter().enumerate() {
                let w = red.witness_for(i);
                if detects(mask, &rows[w]) {
                    assert!(detects(mask, row), "mask {mask:#b} row {i} witness {w}");
                }
            }
            // Boolean equivalence: covers-kernel ⇔ covers-all.
            let all = rows.iter().all(|r| detects(mask, r));
            let kernel = red.kernel().iter().all(|&i| detects(mask, &rows[i]));
            assert_eq!(all, kernel, "mask {mask:#b}");
        }
    }

    #[test]
    fn drop_dominated_keeps_first_superset() {
        let mk = |rows: &[usize]| {
            let mut s = RowSet::empty(8);
            for &i in rows {
                s.insert(i);
            }
            s
        };
        let out = drop_dominated(vec![
            (mk(&[0, 1, 2]), "big"),
            (mk(&[0, 1]), "subset"),
            (mk(&[3]), "disjoint"),
            (mk(&[0, 1, 2]), "equal"),
        ]);
        let names: Vec<&str> = out.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["big", "disjoint"]);
    }
}
