//! Incremental-pipeline substrate: a content-addressed artifact store
//! and the shared coverage-matrix representation.
//!
//! The pipeline (KISS2 → encoding → synthesis → fault simulation →
//! `V(i,j,k)` tensor → LP/rounding search → CED hardware) is a chain of
//! deterministic stages: every stage's output is a pure function of its
//! serialized inputs and options. [`Store`] exploits that by memoizing
//! stage outputs under a `(stage, fingerprint)` key, in memory and —
//! with a directory attached — on disk, so a p-sweep or a re-certify
//! replays cache hits instead of recomputing tensors and synthesis
//! results. Because each stage is deterministic and its serialization
//! is bit-exact, a cache hit is *byte-identical* to a recomputation;
//! the differential tests in `tests/` prove that end to end.
//!
//! [`CoverageMatrix`] and [`RowSet`] unify the three coverage-bitset
//! representations that used to live separately in `sim::detect` (step
//! masks with online dominance pruning), `core::exact` (coverage words
//! per candidate mask) and `core::greedy` (uncovered-row tracking), so
//! stage outputs have one canonical serialized form.
//!
//! The crate is std-only and depends only on `ced-runtime` (for the
//! checkpoint envelope and `ByteWriter`/`ByteReader`).

#![warn(missing_docs)]

pub mod coverage;
pub mod store;

pub use coverage::{drop_dominated, reduce_cases, CaseReduction, CoverageMatrix, RowSet};
pub use store::{
    fingerprint_bytes, GcOutcome, StageCounters, Store, StoreEntryInfo, StoreStats,
    STORE_ENTRY_KIND, STORE_INDEX_KIND, TENSOR_COMP_STAGE, TENSOR_FRAG_STAGE,
};
