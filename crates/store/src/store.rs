//! The content-addressed artifact store.
//!
//! Keys are `(stage name, fingerprint)` pairs, where the fingerprint is
//! the FNV-1a-64 hash of a canonical serialization of everything the
//! stage's output depends on (inputs and options). Values are the
//! stage's serialized output bytes. Because every pipeline stage is
//! deterministic and its serialization bit-exact, a stored artifact is
//! byte-identical to what a recomputation would produce — so replaying
//! a hit can never change a result, only skip work.
//!
//! Properties the rest of the workspace relies on:
//!
//! * **First-writer-wins.** A `put` for a key that already has an entry
//!   only refreshes its recency; the stored bytes never change. Under
//!   `ced-par` this makes the store order-insensitive: whichever worker
//!   finishes first wins, and since all writers compute identical bytes
//!   for identical fingerprints, the winner is irrelevant.
//! * **Corruption is a miss, never a wrong answer.** On-disk artifacts
//!   are wrapped in the checkpoint envelope (magic, version, kind,
//!   length, FNV-1a-64 checksum) with the key echoed inside the
//!   payload; any truncation, bit flip, or key mismatch fails
//!   verification and the entry is dropped and rebuilt.
//! * **Deterministic eviction.** When a byte budget is set, entries are
//!   evicted in ascending order of a logical touch counter — no clocks,
//!   so eviction order is a pure function of the access sequence.
//! * **Deterministic reporting.** Stats and entry listings are sorted
//!   by `(stage, fingerprint)`, never hash order.

use ced_runtime::{
    decode_checkpoint, fnv1a64, load_checkpoint, mtime_age, save_checkpoint, touch, ByteReader,
    ByteWriter, CheckpointError,
};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Checkpoint kind tag for a single on-disk artifact entry.
pub const STORE_ENTRY_KIND: u16 = 3;

/// Stage name for per-fault tensor fragments: one artifact per
/// `(fault cone, latency)` keyed by the cone fingerprint (see
/// `ced_sim::detect`). Defined here — not in `ced-sim` — so the store
/// can derive fragment-level counters without depending on the
/// simulator.
pub const TENSOR_FRAG_STAGE: &str = "tensor-frag";

/// Stage name for tensor composition records: a digest proving that a
/// full `DetectabilityTable` reassembled from [`TENSOR_FRAG_STAGE`]
/// fragments is byte-identical to a monolithic build.
pub const TENSOR_COMP_STAGE: &str = "tensor-comp";

/// Checkpoint kind tag for the on-disk store index.
pub const STORE_INDEX_KIND: u16 = 4;

/// Name of the index file inside a store directory.
const INDEX_FILE: &str = "index.ced";

/// Extension of run lease files inside a store directory. Every
/// disk-backed [`Store::open`] drops a lease file that lives until the
/// store is dropped; [`Store::gc`] removes **nothing** while a fresh
/// foreign lease exists, because a live process may hold references to
/// artifacts whose on-disk `last_run` is arbitrarily old.
const LEASE_EXTENSION: &str = "lease";

/// How stale a run lease's mtime must be before gc treats its owner as
/// dead and reaps the lease. Long-lived holders refresh their lease via
/// [`Store::persist`] (or explicitly with [`Store::refresh_lease`]).
const DEFAULT_LEASE_TTL: Duration = Duration::from_secs(15 * 60);

/// Disambiguates lease names when one process opens the same store
/// directory twice concurrently (tests, nested tools).
static LEASE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-stage hit/miss accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Artifacts served from the store.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Lookups that found a corrupt artifact (also counted as misses).
    pub corrupt: u64,
    /// Artifacts inserted this run.
    pub puts: u64,
}

/// A point-in-time summary of the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Logical run number (increments once per `Store::open`).
    pub run: u64,
    /// Number of stored artifacts.
    pub entries: usize,
    /// Total artifact payload bytes.
    pub bytes: u64,
    /// Per-stage counters for the current process, sorted by stage.
    pub stages: Vec<(String, StageCounters)>,
}

/// Metadata for one stored artifact (listing order: stage, then
/// fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreEntryInfo {
    /// Stage that produced the artifact.
    pub stage: String,
    /// Content fingerprint of the stage inputs.
    pub fingerprint: u64,
    /// Artifact payload length in bytes.
    pub len: u64,
    /// Last run that read or wrote the artifact.
    pub last_run: u64,
}

/// What a [`Store::gc`] pass removed and kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Entries dropped.
    pub removed: usize,
    /// Entries surviving.
    pub kept: usize,
    /// Payload bytes freed.
    pub bytes_freed: u64,
    /// Fresh foreign run leases found. When nonzero the pass removed
    /// nothing: another live process has the store open, and its view
    /// of which artifacts are reachable cannot be inferred from
    /// on-disk `last_run` values.
    pub blocked_by_leases: usize,
}

#[derive(Debug, Clone)]
struct Entry {
    len: u64,
    last_run: u64,
    touch: u64,
    /// Payload bytes; `None` until a disk-backed entry is first read.
    bytes: Option<Vec<u8>>,
}

#[derive(Debug, Default)]
struct Inner {
    dir: Option<PathBuf>,
    entries: BTreeMap<(String, u64), Entry>,
    counters: BTreeMap<String, StageCounters>,
    /// Counters persisted by the previous run's index, for `ced store
    /// stats` after the fact.
    previous_counters: BTreeMap<String, StageCounters>,
    /// This open's run lease file (disk-backed stores only); removed
    /// on drop, excluded from this store's own gc lease scan.
    lease: Option<PathBuf>,
    run: u64,
    touch_seq: u64,
    total_bytes: u64,
    max_bytes: Option<u64>,
}

/// Content-addressed artifact store; see the module docs. Shared
/// across threads behind an internal mutex (lookups and insertions are
/// short critical sections; artifact recomputation happens outside the
/// lock).
#[derive(Debug)]
pub struct Store {
    inner: Mutex<Inner>,
}

impl Store {
    /// A purely in-memory store (no directory; nothing survives the
    /// process).
    pub fn in_memory() -> Store {
        Store {
            inner: Mutex::new(Inner {
                run: 1,
                ..Inner::default()
            }),
        }
    }

    /// Opens (creating if needed) a disk-backed store under `dir` and
    /// starts a new logical run. A missing or corrupt index starts the
    /// store empty — artifacts still on disk are re-adopted lazily on
    /// first lookup.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Store, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let mut inner = Inner {
            dir: Some(dir.to_path_buf()),
            run: 1,
            ..Inner::default()
        };
        if let Ok(payload) = load_checkpoint(&dir.join(INDEX_FILE), STORE_INDEX_KIND) {
            if let Ok((run, entries, counters)) = read_index(&payload) {
                inner.run = run + 1;
                inner.total_bytes = entries.values().map(|e| e.len).sum();
                inner.entries = entries;
                inner.previous_counters = counters;
            }
        }
        // Drop this open's run lease so concurrent gc passes know a
        // live process has the store open.
        let lease = dir.join(format!(
            "run-{run}-{pid}-{seq}.{LEASE_EXTENSION}",
            run = inner.run,
            pid = std::process::id(),
            seq = LEASE_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&lease, b"ced-store run lease\n")
            .map_err(|e| CheckpointError::Io(format!("writing lease {}: {e}", lease.display())))?;
        inner.lease = Some(lease);
        Ok(Store {
            inner: Mutex::new(inner),
        })
    }

    /// Caps stored payload bytes; over-budget entries are evicted in
    /// ascending touch order on insertion.
    pub fn with_max_bytes(self, max_bytes: u64) -> Store {
        self.inner.lock().unwrap().max_bytes = Some(max_bytes);
        self
    }

    /// The current logical run number.
    pub fn run(&self) -> u64 {
        self.inner.lock().unwrap().run
    }

    /// Looks up the artifact for `(stage, fingerprint)`. Returns the
    /// stored bytes on a hit; counts a miss (plus a corruption, if a
    /// damaged on-disk artifact was found and discarded) otherwise.
    pub fn get_artifact(&self, stage: &str, fingerprint: u64) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let key = (stage.to_string(), fingerprint);
        let run = inner.run;
        inner.touch_seq += 1;
        let touch = inner.touch_seq;
        let known = inner.entries.contains_key(&key);
        if let Some(entry) = inner.entries.get_mut(&key) {
            if let Some(bytes) = &entry.bytes {
                let bytes = bytes.clone();
                entry.last_run = run;
                entry.touch = touch;
                stage_counters(&mut inner.counters, stage).hits += 1;
                return Some(bytes);
            }
        }
        // Disk-backed entry not yet in memory, or an index-missing
        // artifact file left by a lost index: try the file.
        if let Some(dir) = inner.dir.clone() {
            let path = artifact_path(&dir, stage, fingerprint);
            match read_artifact(&path, stage, fingerprint) {
                Ok(Some(bytes)) => {
                    inner.entries.insert(
                        key,
                        Entry {
                            len: bytes.len() as u64,
                            last_run: run,
                            touch,
                            bytes: Some(bytes.clone()),
                        },
                    );
                    if !known {
                        inner.total_bytes += bytes.len() as u64;
                    }
                    stage_counters(&mut inner.counters, stage).hits += 1;
                    return Some(bytes);
                }
                Ok(None) => {}
                Err(_) => {
                    // Truncated / flipped / mis-keyed: discard so the
                    // rebuild's put can replace it.
                    let _ = fs::remove_file(&path);
                    if let Some(old) = inner.entries.remove(&key) {
                        inner.total_bytes = inner.total_bytes.saturating_sub(old.len);
                    }
                    stage_counters(&mut inner.counters, stage).corrupt += 1;
                }
            }
        } else if known {
            // In-memory store never has byte-less entries.
            inner.entries.remove(&key);
        }
        stage_counters(&mut inner.counters, stage).misses += 1;
        None
    }

    /// Looks up and decodes a typed artifact. A decode failure is
    /// treated exactly like on-disk corruption: the entry is dropped
    /// (demoting the hit to a corrupt miss) and `None` is returned so
    /// the caller rebuilds.
    pub fn get_typed<T>(
        &self,
        stage: &str,
        fingerprint: u64,
        decode: impl FnOnce(&[u8]) -> Result<T, CheckpointError>,
    ) -> Option<T> {
        let bytes = self.get_artifact(stage, fingerprint)?;
        match decode(&bytes) {
            Ok(v) => Some(v),
            Err(_) => {
                self.note_corrupt(stage, fingerprint);
                None
            }
        }
    }

    /// Records that an artifact returned by [`Self::get_artifact`]
    /// failed the caller's own decoding: the hit becomes a corrupt
    /// miss and the entry (and its file) are dropped.
    pub fn note_corrupt(&self, stage: &str, fingerprint: u64) {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let key = (stage.to_string(), fingerprint);
        if let Some(old) = inner.entries.remove(&key) {
            inner.total_bytes = inner.total_bytes.saturating_sub(old.len);
        }
        if let Some(dir) = &inner.dir {
            let _ = fs::remove_file(artifact_path(dir, stage, fingerprint));
        }
        let c = stage_counters(&mut inner.counters, stage);
        c.hits = c.hits.saturating_sub(1);
        c.corrupt += 1;
        c.misses += 1;
    }

    /// Inserts an artifact. First-writer-wins: if the key already has
    /// an entry, only its recency is refreshed and `false` is returned.
    /// Disk-backed stores write the artifact file immediately (atomic
    /// sibling rename); the index is written by [`Self::persist`].
    pub fn put_artifact(&self, stage: &str, fingerprint: u64, bytes: &[u8]) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let inner = &mut *inner;
        let key = (stage.to_string(), fingerprint);
        let run = inner.run;
        inner.touch_seq += 1;
        let touch = inner.touch_seq;
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.last_run = run;
            entry.touch = touch;
            return false;
        }
        if let Some(dir) = &inner.dir {
            let payload = artifact_payload(stage, fingerprint, bytes);
            // A failed write leaves the entry memory-only; the next
            // run simply misses and rebuilds.
            let _ = save_checkpoint(
                &artifact_path(dir, stage, fingerprint),
                STORE_ENTRY_KIND,
                &payload,
            );
        }
        inner.entries.insert(
            key.clone(),
            Entry {
                len: bytes.len() as u64,
                last_run: run,
                touch,
                bytes: Some(bytes.to_vec()),
            },
        );
        inner.total_bytes += bytes.len() as u64;
        stage_counters(&mut inner.counters, stage).puts += 1;
        if let Some(max) = inner.max_bytes {
            while inner.total_bytes > max {
                let victim = inner
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, e)| e.touch)
                    .map(|(k, _)| k.clone());
                let Some(vkey) = victim else { break };
                if let Some(old) = inner.entries.remove(&vkey) {
                    inner.total_bytes = inner.total_bytes.saturating_sub(old.len);
                }
                if let Some(dir) = &inner.dir {
                    let _ = fs::remove_file(artifact_path(dir, &vkey.0, vkey.1));
                }
            }
        }
        true
    }

    /// Current-run summary (entries, bytes, per-stage counters in
    /// sorted order).
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().unwrap();
        StoreStats {
            run: inner.run,
            entries: inner.entries.len(),
            bytes: inner.total_bytes,
            stages: inner
                .counters
                .iter()
                .map(|(s, c)| (s.clone(), *c))
                .collect(),
        }
    }

    /// Per-stage counters persisted by the previous run's index (what
    /// `ced store stats` reports as "last run"), sorted by stage.
    pub fn previous_run_stats(&self) -> Vec<(String, StageCounters)> {
        let inner = self.inner.lock().unwrap();
        inner
            .previous_counters
            .iter()
            .map(|(s, c)| (s.clone(), *c))
            .collect()
    }

    /// The full stats document as deterministic JSON: one schema for
    /// `ced store stats --json`, scripts, and the `ced serve` health
    /// endpoint, instead of three scrapers over the human table.
    /// Everything is sorted (entries by `(stage, fingerprint)`, stage
    /// counters by stage), so the rendering is a pure function of the
    /// store state.
    pub fn stats_json(&self) -> ced_runtime::Json {
        use ced_runtime::Json;
        let counters_json = |counters: &[(String, StageCounters)]| {
            Json::Object(
                counters
                    .iter()
                    .map(|(stage, c)| {
                        (
                            stage.clone(),
                            Json::Object(vec![
                                ("hits".into(), Json::UInt(c.hits)),
                                ("misses".into(), Json::UInt(c.misses)),
                                ("corrupt".into(), Json::UInt(c.corrupt)),
                                ("puts".into(), Json::UInt(c.puts)),
                            ]),
                        )
                    })
                    .collect(),
            )
        };
        let stats = self.stats();
        let by_stage = |name: &str| {
            stats
                .stages
                .iter()
                .find(|(s, _)| s == name)
                .map(|(_, c)| *c)
                .unwrap_or_default()
        };
        // Derived fragment-level view: how many per-fault tensor
        // fragments were served warm versus rebuilt, and how many
        // whole-table compositions were recorded/verified. This is
        // what makes the warm-edit win observable from `ced store
        // stats --json` and the serve `health` endpoint. Counters come
        // from the current run; a process that has not analyzed yet
        // (`ced store stats` itself) falls back to the previous run's
        // persisted counters, so the command reports the last
        // analysis instead of its own idleness.
        let previous = self.previous_run_stats();
        let by_stage_previous = |name: &str| {
            previous
                .iter()
                .find(|(s, _)| s == name)
                .map(|(_, c)| *c)
                .unwrap_or_default()
        };
        let mut frag = by_stage(TENSOR_FRAG_STAGE);
        let mut comp = by_stage(TENSOR_COMP_STAGE);
        if frag == StageCounters::default() && comp == StageCounters::default() {
            frag = by_stage_previous(TENSOR_FRAG_STAGE);
            comp = by_stage_previous(TENSOR_COMP_STAGE);
        }
        let fragments = Json::Object(vec![
            ("hit".into(), Json::UInt(frag.hits)),
            ("rebuilt".into(), Json::UInt(frag.puts)),
            ("composed".into(), Json::UInt(comp.hits + comp.puts)),
        ]);
        Json::Object(vec![
            ("schema".into(), Json::str("ced-store-stats/1")),
            ("run".into(), Json::UInt(stats.run)),
            ("entries".into(), Json::UInt(stats.entries as u64)),
            ("bytes".into(), Json::UInt(stats.bytes)),
            ("fragments".into(), fragments),
            (
                "artifacts".into(),
                Json::Array(
                    self.entries()
                        .iter()
                        .map(|e| {
                            Json::Object(vec![
                                ("stage".into(), Json::Str(e.stage.clone())),
                                (
                                    "fingerprint".into(),
                                    Json::Str(format!("{:016x}", e.fingerprint)),
                                ),
                                ("bytes".into(), Json::UInt(e.len)),
                                ("last_run".into(), Json::UInt(e.last_run)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("current_run".into(), counters_json(&stats.stages)),
            ("previous_run".into(), counters_json(&previous)),
        ])
    }

    /// All entries, sorted by `(stage, fingerprint)`.
    pub fn entries(&self) -> Vec<StoreEntryInfo> {
        let inner = self.inner.lock().unwrap();
        inner
            .entries
            .iter()
            .map(|((stage, fp), e)| StoreEntryInfo {
                stage: stage.clone(),
                fingerprint: *fp,
                len: e.len,
                last_run: e.last_run,
            })
            .collect()
    }

    /// Drops every entry whose `last_run` is older than `min_run`,
    /// deletes its file, and persists the shrunken index.
    ///
    /// **Lease-safe:** if another live process holds the store open (a
    /// fresh run lease other than this store's own exists in the
    /// directory), the pass removes *nothing* and reports the block in
    /// [`GcOutcome::blocked_by_leases`]. Clamping to lease run numbers
    /// would not be enough — a live process may reference artifacts
    /// whose on-disk `last_run` predates its own run. Leases whose
    /// mtime is older than the default TTL (15 minutes) belong to dead
    /// processes; they are reaped and do not block.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the index rewrite fails.
    pub fn gc(&self, min_run: u64) -> Result<GcOutcome, CheckpointError> {
        self.gc_with_lease_ttl(min_run, DEFAULT_LEASE_TTL)
    }

    /// [`Store::gc`] with an explicit lease-freshness TTL (tests, and
    /// operators who know their longest-running holder).
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the index rewrite fails.
    pub fn gc_with_lease_ttl(
        &self,
        min_run: u64,
        ttl: Duration,
    ) -> Result<GcOutcome, CheckpointError> {
        let mut outcome = GcOutcome::default();
        {
            let mut inner = self.inner.lock().unwrap();
            let inner = &mut *inner;
            if let Some(dir) = inner.dir.clone() {
                outcome.blocked_by_leases =
                    reap_stale_count_fresh_leases(&dir, inner.lease.as_deref(), ttl);
                if outcome.blocked_by_leases > 0 {
                    outcome.kept = inner.entries.len();
                    return Ok(outcome);
                }
            }
            let doomed: Vec<(String, u64)> = inner
                .entries
                .iter()
                .filter(|(_, e)| e.last_run < min_run)
                .map(|(k, _)| k.clone())
                .collect();
            for key in doomed {
                if let Some(old) = inner.entries.remove(&key) {
                    inner.total_bytes = inner.total_bytes.saturating_sub(old.len);
                    outcome.bytes_freed += old.len;
                }
                if let Some(dir) = &inner.dir {
                    let _ = fs::remove_file(artifact_path(dir, &key.0, key.1));
                }
                outcome.removed += 1;
            }
            outcome.kept = inner.entries.len();
        }
        self.persist()?;
        Ok(outcome)
    }

    /// Re-marks this store's run lease as fresh (heartbeat). Holders
    /// that outlive the gc lease TTL call this periodically;
    /// [`Store::persist`] also refreshes it.
    pub fn refresh_lease(&self) {
        let inner = self.inner.lock().unwrap();
        if let Some(lease) = &inner.lease {
            let _ = touch(lease);
        }
    }

    /// Writes the index (run number, entry metadata, this run's
    /// counters) for a disk-backed store; a no-op in memory.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] if the index cannot be written.
    pub fn persist(&self) -> Result<(), CheckpointError> {
        let inner = self.inner.lock().unwrap();
        let Some(dir) = &inner.dir else {
            return Ok(());
        };
        if let Some(lease) = &inner.lease {
            let _ = touch(lease);
        }
        let mut w = ByteWriter::new();
        w.u64(inner.run);
        w.usize(inner.entries.len());
        for ((stage, fp), e) in &inner.entries {
            w.str(stage);
            w.u64(*fp);
            w.u64(e.len);
            w.u64(e.last_run);
        }
        w.usize(inner.counters.len());
        for (stage, c) in &inner.counters {
            w.str(stage);
            w.u64(c.hits);
            w.u64(c.misses);
            w.u64(c.corrupt);
            w.u64(c.puts);
        }
        save_checkpoint(&dir.join(INDEX_FILE), STORE_INDEX_KIND, &w.finish())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.lock() {
            if let Some(lease) = &inner.lease {
                let _ = fs::remove_file(lease);
            }
        }
    }
}

/// Scans `dir` for run lease files other than `own`: reaps (deletes)
/// leases staler than `ttl`, returns how many fresh ones remain. Scan
/// failures count as zero fresh leases — gc then behaves as before the
/// lease protocol existed, which is the right degradation for a
/// read-only or vanishing directory.
fn reap_stale_count_fresh_leases(dir: &Path, own: Option<&Path>, ttl: Duration) -> usize {
    let Ok(listing) = fs::read_dir(dir) else {
        return 0;
    };
    let mut fresh = 0;
    for entry in listing.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some(LEASE_EXTENSION) {
            continue;
        }
        if Some(path.as_path()) == own {
            continue;
        }
        match mtime_age(&path) {
            Some(age) if age > ttl => {
                // A lease its owner stopped heartbeating: the owner is
                // dead (crashed, killed); reap it.
                let _ = fs::remove_file(&path);
            }
            Some(_) => fresh += 1,
            // Vanished between listing and stat: owner just closed.
            None => {}
        }
    }
    fresh
}

fn stage_counters<'a>(
    counters: &'a mut BTreeMap<String, StageCounters>,
    stage: &str,
) -> &'a mut StageCounters {
    if !counters.contains_key(stage) {
        counters.insert(stage.to_string(), StageCounters::default());
    }
    counters.get_mut(stage).unwrap()
}

fn artifact_path(dir: &Path, stage: &str, fingerprint: u64) -> PathBuf {
    dir.join(format!("{stage}-{fingerprint:016x}.art"))
}

fn artifact_payload(stage: &str, fingerprint: u64, bytes: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(stage);
    w.u64(fingerprint);
    w.bytes(bytes);
    w.finish()
}

/// Reads an artifact file. `Ok(None)` when the file does not exist;
/// `Err` on any corruption or key mismatch.
fn read_artifact(
    path: &Path,
    stage: &str,
    fingerprint: u64,
) -> Result<Option<Vec<u8>>, CheckpointError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(CheckpointError::Io(e.to_string())),
    };
    let payload = decode_checkpoint(&bytes, STORE_ENTRY_KIND)?;
    let mut r = ByteReader::new(&payload);
    let stored_stage = r.str()?;
    let stored_fp = r.u64()?;
    let artifact = r.bytes()?.to_vec();
    r.expect_end()?;
    if stored_stage != stage || stored_fp != fingerprint {
        return Err(CheckpointError::Corrupt(format!(
            "artifact keyed ({stored_stage}, {stored_fp:016x}) found under ({stage}, {fingerprint:016x})"
        )));
    }
    Ok(Some(artifact))
}

type IndexContents = (
    u64,
    BTreeMap<(String, u64), Entry>,
    BTreeMap<String, StageCounters>,
);

fn read_index(payload: &[u8]) -> Result<IndexContents, CheckpointError> {
    let mut r = ByteReader::new(payload);
    let run = r.u64()?;
    let n = r.usize()?;
    let mut entries = BTreeMap::new();
    for _ in 0..n {
        let stage = r.str()?;
        let fp = r.u64()?;
        let len = r.u64()?;
        let last_run = r.u64()?;
        entries.insert(
            (stage, fp),
            Entry {
                len,
                last_run,
                touch: 0,
                bytes: None,
            },
        );
    }
    let m = r.usize()?;
    let mut counters = BTreeMap::new();
    for _ in 0..m {
        let stage = r.str()?;
        let c = StageCounters {
            hits: r.u64()?,
            misses: r.u64()?,
            corrupt: r.u64()?,
            puts: r.u64()?,
        };
        counters.insert(stage, c);
    }
    r.expect_end()?;
    Ok((run, entries, counters))
}

/// A fingerprint convenience: FNV-1a-64 over canonical bytes. Stages
/// build the bytes with [`ByteWriter`] so the hash input is the same
/// canonical form the artifacts themselves use.
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    fnv1a64(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ced-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn in_memory_round_trip_and_counters() {
        let store = Store::in_memory();
        assert_eq!(store.get_artifact("tensor", 7), None);
        assert!(store.put_artifact("tensor", 7, b"abc"));
        assert_eq!(store.get_artifact("tensor", 7).unwrap(), b"abc");
        let stats = store.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 3);
        assert_eq!(
            stats.stages,
            vec![(
                "tensor".to_string(),
                StageCounters {
                    hits: 1,
                    misses: 1,
                    corrupt: 0,
                    puts: 1
                }
            )]
        );
    }

    #[test]
    fn first_writer_wins() {
        let store = Store::in_memory();
        assert!(store.put_artifact("synth", 1, b"first"));
        assert!(!store.put_artifact("synth", 1, b"second"));
        assert_eq!(store.get_artifact("synth", 1).unwrap(), b"first");
    }

    #[test]
    fn disk_persists_across_reopen_byte_identically() {
        let dir = tmp_dir("reopen");
        {
            let store = Store::open(&dir).unwrap();
            assert_eq!(store.run(), 1);
            store.put_artifact("tensor", 42, b"payload-bytes");
            store.persist().unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.run(), 2);
        assert_eq!(store.get_artifact("tensor", 42).unwrap(), b"payload-bytes");
        let stats = store.stats();
        assert_eq!(stats.stages[0].1.hits, 1);
        // Previous run's counters survived in the index.
        let prev = store.previous_run_stats();
        assert_eq!(prev[0].1.puts, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lost_index_recovers_from_artifact_files() {
        let dir = tmp_dir("lost-index");
        {
            let store = Store::open(&dir).unwrap();
            store.put_artifact("search", 5, b"result");
            // No persist(): the index is never written.
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get_artifact("search", 5).unwrap(), b"result");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_and_truncation_are_misses_then_rebuilt() {
        let dir = tmp_dir("corrupt");
        let store = Store::open(&dir).unwrap();
        store.put_artifact("tensor", 9, b"good-bytes");
        store.persist().unwrap();
        drop(store);
        let path = artifact_path(&dir, "tensor", 9);
        let original = fs::read(&path).unwrap();
        for mutation in 0..2 {
            let mut bad = original.clone();
            if mutation == 0 {
                let mid = bad.len() / 2;
                bad[mid] ^= 0x10;
            } else {
                bad.truncate(bad.len() - 3);
            }
            fs::write(&path, &bad).unwrap();
            let store = Store::open(&dir).unwrap();
            assert_eq!(store.get_artifact("tensor", 9), None, "mutation {mutation}");
            let c = store.stats().stages[0].1;
            assert_eq!((c.corrupt, c.misses, c.hits), (1, 1, 0));
            // The damaged file is gone; a rebuild re-puts cleanly.
            assert!(!path.exists());
            store.put_artifact("tensor", 9, b"good-bytes");
            assert_eq!(store.get_artifact("tensor", 9).unwrap(), b"good-bytes");
            store.persist().unwrap();
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mis_keyed_artifact_file_is_rejected() {
        let dir = tmp_dir("miskey");
        let store = Store::open(&dir).unwrap();
        store.put_artifact("tensor", 1, b"for-key-one");
        drop(store);
        // Copy the valid file for key 1 over key 2's slot: envelope
        // checksum passes, but the embedded key binding does not.
        fs::copy(
            artifact_path(&dir, "tensor", 1),
            artifact_path(&dir, "tensor", 2),
        )
        .unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get_artifact("tensor", 2), None);
        assert_eq!(store.stats().stages[0].1.corrupt, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn get_typed_decode_failure_is_corruption() {
        let store = Store::in_memory();
        store.put_artifact("search", 3, b"not-a-valid-latency-result");
        let got: Option<u64> = store.get_typed("search", 3, |_| {
            Err(CheckpointError::Corrupt("bad payload".into()))
        });
        assert_eq!(got, None);
        let c = store.stats().stages[0].1;
        assert_eq!((c.hits, c.corrupt, c.misses), (0, 1, 1));
        assert_eq!(store.stats().entries, 0);
        // Rebuild path: a fresh put works.
        assert!(store.put_artifact("search", 3, b"rebuilt"));
        assert_eq!(store.get_artifact("search", 3).unwrap(), b"rebuilt");
    }

    #[test]
    fn eviction_is_deterministic_oldest_touch_first() {
        let store = Store::in_memory().with_max_bytes(8);
        store.put_artifact("s", 1, b"aaaa");
        store.put_artifact("s", 2, b"bbbb");
        // Refresh key 1 so key 2 is the oldest touch.
        assert!(store.get_artifact("s", 1).is_some());
        store.put_artifact("s", 3, b"cccc");
        let keys: Vec<u64> = store.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(keys, vec![1, 3]);
        assert_eq!(store.stats().bytes, 8);
    }

    #[test]
    fn gc_drops_entries_older_than_min_run() {
        let dir = tmp_dir("gc");
        {
            let store = Store::open(&dir).unwrap();
            store.put_artifact("tensor", 1, b"old");
            store.put_artifact("tensor", 2, b"old-too");
            store.persist().unwrap();
        }
        {
            // Run 2 touches only key 2.
            let store = Store::open(&dir).unwrap();
            assert!(store.get_artifact("tensor", 2).is_some());
            store.persist().unwrap();
        }
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.run(), 3);
        let outcome = store.gc(2).unwrap();
        assert_eq!((outcome.removed, outcome.kept), (1, 1));
        assert_eq!(outcome.bytes_freed, 3);
        assert_eq!(store.entries()[0].fingerprint, 2);
        assert!(!artifact_path(&dir, "tensor", 1).exists());
        // The surviving entry still loads after the gc'd index.
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get_artifact("tensor", 2).unwrap(), b"old-too");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_removes_nothing_while_another_holder_has_a_fresh_lease() {
        let dir = tmp_dir("gc-lease");
        {
            let store = Store::open(&dir).unwrap();
            store.put_artifact("tensor", 1, b"old");
            store.persist().unwrap();
        }
        // Two concurrent holders (what two racing processes look like
        // on disk). The writer's artifact has last_run 1 — stale by
        // run number — but the concurrent holder may be about to read
        // it, so gc must not collect anything.
        let holder = Store::open(&dir).unwrap();
        let collector = Store::open(&dir).unwrap();
        let outcome = collector.gc(u64::MAX).unwrap();
        assert_eq!(outcome.blocked_by_leases, 1);
        assert_eq!((outcome.removed, outcome.bytes_freed), (0, 0));
        assert_eq!(outcome.kept, 1);
        assert!(artifact_path(&dir, "tensor", 1).exists());
        // The blocked holder can still read what gc would have taken.
        assert_eq!(holder.get_artifact("tensor", 1).unwrap(), b"old");
        drop(holder);
        // Holder gone (lease removed on drop): gc proceeds.
        let outcome = collector.gc(u64::MAX).unwrap();
        assert_eq!(outcome.blocked_by_leases, 0);
        assert_eq!(outcome.removed, 1);
        assert!(!artifact_path(&dir, "tensor", 1).exists());
        drop(collector);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_leases_are_reaped_not_blocking() {
        let dir = tmp_dir("gc-stale-lease");
        let store = Store::open(&dir).unwrap();
        store.put_artifact("tensor", 1, b"old");
        store.persist().unwrap();
        // A lease from a kill -9'd process: present, never refreshed.
        let dead = dir.join("run-9-99999-0.lease");
        fs::write(&dead, b"ced-store run lease\n").unwrap();
        let old = std::time::SystemTime::now() - Duration::from_secs(3600);
        fs::File::options()
            .write(true)
            .open(&dead)
            .unwrap()
            .set_times(fs::FileTimes::new().set_modified(old))
            .unwrap();
        let outcome = store
            .gc_with_lease_ttl(u64::MAX, Duration::from_secs(60))
            .unwrap();
        assert_eq!(outcome.blocked_by_leases, 0);
        assert_eq!(outcome.removed, 1);
        assert!(!dead.exists(), "stale lease must be reaped");
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lease_lifecycle_open_refresh_drop() {
        let dir = tmp_dir("lease-cycle");
        let leases = |d: &Path| -> Vec<PathBuf> {
            fs::read_dir(d)
                .unwrap()
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("lease"))
                .collect()
        };
        let store = Store::open(&dir).unwrap();
        assert_eq!(leases(&dir).len(), 1);
        store.refresh_lease();
        drop(store);
        assert!(leases(&dir).is_empty(), "drop must remove the lease");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_listing_is_sorted() {
        let store = Store::in_memory();
        store.put_artifact("tensor", 2, b"x");
        store.put_artifact("search", 9, b"y");
        store.put_artifact("tensor", 1, b"z");
        let listed: Vec<(String, u64)> = store
            .entries()
            .into_iter()
            .map(|e| (e.stage, e.fingerprint))
            .collect();
        assert_eq!(
            listed,
            vec![
                ("search".to_string(), 9),
                ("tensor".to_string(), 1),
                ("tensor".to_string(), 2)
            ]
        );
    }
}
