//! Property-based tests for the artifact store's corruption handling:
//! for *any* payload, *any* single-bit flip and *any* truncation of
//! the on-disk artifact file must read back as a miss — never as
//! different bytes — and a rebuild must restore the original payload.

use ced_store::{fingerprint_bytes, Store};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SCRATCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per proptest case, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> ScratchDir {
        let n = SCRATCH_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ced-store-props-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes one artifact and returns the path of its on-disk file.
fn persist_one(dir: &PathBuf, payload: &[u8]) -> (u64, PathBuf) {
    let store = Store::open(dir).expect("store opens");
    let fp = fingerprint_bytes(payload);
    assert!(store.put_artifact("stage", fp, payload));
    store.persist().expect("index persists");
    let file = std::fs::read_dir(dir)
        .expect("dir readable")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().and_then(|e| e.to_str()) == Some("art"))
        .expect("artifact file exists");
    (fp, file)
}

fn corrupt_sum(store: &Store) -> u64 {
    store.stats().stages.iter().map(|(_, c)| c.corrupt).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Round trip: any payload survives persist + reopen bit-exactly.
    #[test]
    fn roundtrip_is_bit_exact(payload in proptest::collection::vec(any::<u8>(), 1..256)) {
        let scratch = ScratchDir::new();
        let (fp, _) = persist_one(&scratch.0, &payload);
        let store = Store::open(&scratch.0).expect("store reopens");
        prop_assert_eq!(store.get_artifact("stage", fp), Some(payload));
    }

    /// Any single-bit flip anywhere in the artifact file — envelope,
    /// checksum, key echo or payload — is detected as corruption: the
    /// lookup misses, the damaged file is discarded, and a rebuild
    /// restores the original bytes.
    #[test]
    fn any_bit_flip_is_a_miss_then_rebuilt(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip in any::<usize>(),
    ) {
        let scratch = ScratchDir::new();
        let (fp, file) = persist_one(&scratch.0, &payload);
        let mut bytes = std::fs::read(&file).expect("artifact readable");
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&file, &bytes).expect("artifact writable");

        let store = Store::open(&scratch.0).expect("store reopens");
        prop_assert_eq!(store.get_artifact("stage", fp), None,
            "a flipped artifact must never be served");
        prop_assert_eq!(corrupt_sum(&store), 1);
        prop_assert!(!file.exists(), "damaged file must be discarded");

        prop_assert!(store.put_artifact("stage", fp, &payload));
        prop_assert_eq!(store.get_artifact("stage", fp), Some(payload));
    }

    /// Any strict truncation of the artifact file (including to zero
    /// bytes) is a miss, never different bytes.
    #[test]
    fn any_truncation_is_a_miss(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        cut in any::<usize>(),
    ) {
        let scratch = ScratchDir::new();
        let (fp, file) = persist_one(&scratch.0, &payload);
        let mut bytes = std::fs::read(&file).expect("artifact readable");
        bytes.truncate(cut % bytes.len());
        std::fs::write(&file, &bytes).expect("artifact writable");

        let store = Store::open(&scratch.0).expect("store reopens");
        prop_assert_eq!(store.get_artifact("stage", fp), None);
        prop_assert_eq!(corrupt_sum(&store), 1);
    }

    /// An artifact renamed to a different key (stage or fingerprint)
    /// fails the key echo inside the envelope: reading it under the
    /// new key is corruption, not a hit with someone else's bytes.
    #[test]
    fn mis_keyed_artifact_is_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        other_fp in any::<u64>(),
    ) {
        let scratch = ScratchDir::new();
        let (fp, file) = persist_one(&scratch.0, &payload);
        prop_assume!(other_fp != fp);
        let renamed = scratch.0.join(format!("stage-{other_fp:016x}.art"));
        std::fs::rename(&file, &renamed).expect("rename");

        let store = Store::open(&scratch.0).expect("store reopens");
        prop_assert_eq!(store.get_artifact("stage", other_fp), None,
            "a mis-keyed artifact must never be served");
        prop_assert_eq!(store.get_artifact("stage", fp), None,
            "the original key has no file anymore");
    }

    /// First-writer-wins: a second put under the same key never
    /// replaces the stored bytes (identical writers make the winner
    /// irrelevant in the real pipeline; the property holds regardless).
    #[test]
    fn first_writer_wins(
        first in proptest::collection::vec(any::<u8>(), 1..128),
        second in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        let store = Store::in_memory();
        prop_assert!(store.put_artifact("stage", 7, &first));
        prop_assert!(!store.put_artifact("stage", 7, &second));
        prop_assert_eq!(store.get_artifact("stage", 7), Some(first));
    }
}
