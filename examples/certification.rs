//! Trust-but-verify: independently re-prove a pipeline's claims.
//!
//! Runs the full CED pipeline on the paper's worked example and a
//! benchmark analogue, then hands each report to the `ced-cert`
//! verifier chain — BFS product-machine soundness, exact-rational LP
//! certificates, synthesis equivalence, checker co-simulation and a
//! greedy differential — and prints the resulting certificate chain.
//! Finally it plants a one-bit defect in a known-good cover and shows
//! the refutation witness the soundness verifier produces.
//!
//! Run with: `cargo run -p ced-examples --bin certification`

use ced_cert::{certify_report, CertifyOptions, Verdict};
use ced_core::pipeline::{run_circuit, PipelineOptions};
use ced_fsm::suite;
use ced_logic::gate::CellLibrary;
use ced_runtime::Budget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();

    for fsm in [
        suite::sequence_detector(),
        suite::by_name("tav").expect("suite machine").build(),
    ] {
        let report = run_circuit(&fsm, &[1, 2], &options, &lib)?;
        let cert = certify_report(
            &fsm,
            &report,
            &options,
            &CertifyOptions::default(),
            &Budget::unlimited(),
        )?;
        print!("{}", ced_cert::report::render_text(&cert));
        println!();
    }

    // Now corrupt one bit of a certified cover: the soundness verifier
    // must refute it with a concrete undetected path.
    let fsm = suite::sequence_detector();
    let mut report = run_circuit(&fsm, &[1], &options, &lib)?;
    let mask = report.latencies[0].cover.masks[0];
    report.latencies[0].cover.masks[0] = mask ^ (1 << mask.trailing_zeros());
    let cert = certify_report(
        &fsm,
        &report,
        &options,
        &CertifyOptions::default(),
        &Budget::unlimited(),
    )?;
    println!("after planting a one-bit defect in the first mask:");
    print!("{}", ced_cert::report::render_text(&cert));
    assert_eq!(cert.verdict(), Verdict::Refuted);
    Ok(())
}
