//! Bringing your own machine: KISS2 in, CED out.
//!
//! Parses a KISS2 description (the MCNC interchange format — real
//! benchmark files drop in unchanged), explores state encodings, and
//! reports the bounded-latency CED cost for each.
//!
//! Run with: `cargo run -p ced-examples --bin custom_fsm`

use ced_core::pipeline::{run_circuit, PipelineOptions};
use ced_fsm::encoding::EncodingStrategy;
use ced_fsm::kiss;
use ced_logic::gate::CellLibrary;

/// A small bus-arbiter-like controller, written inline; replace with
/// `std::fs::read_to_string("your.kiss2")?` for a file.
const KISS2: &str = "\
.i 2
.o 2
.s 4
.r IDLE
00 IDLE IDLE 00
01 IDLE GNT1 01
1- IDLE GNT0 10
-- GNT0 WAIT 10
00 GNT1 IDLE 00
-1 GNT1 GNT1 01
10 GNT1 GNT0 10
0- WAIT IDLE 00
1- WAIT GNT0 10
.e
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = kiss::parse(KISS2)?;
    println!(
        "parsed {}: {} inputs, {} states, {} outputs, {} lines",
        fsm.name(),
        fsm.num_inputs(),
        fsm.num_states(),
        fsm.num_outputs(),
        fsm.transitions().len()
    );
    fsm.check_deterministic()?;

    let lib = CellLibrary::new();
    println!(
        "\n{:<12} {:>8} {:>8} | {:>12} {:>12} {:>12}",
        "encoding", "gates", "cost", "q(p=1)", "q(p=2)", "q(p=3)"
    );
    for (label, strategy) in [
        ("natural", EncodingStrategy::Natural),
        ("gray", EncodingStrategy::Gray),
        ("adjacency", EncodingStrategy::Adjacency),
    ] {
        let options = PipelineOptions {
            encoding: strategy,
            ..PipelineOptions::paper_defaults()
        };
        let report = run_circuit(&fsm, &[1, 2, 3], &options, &lib)?;
        let q: Vec<String> = report
            .latencies
            .iter()
            .map(|l| format!("{} ({:.0})", l.cover.len(), l.cost.area))
            .collect();
        println!(
            "{:<12} {:>8} {:>8.1} | {:>12} {:>12} {:>12}",
            label, report.original_gates, report.original_cost, q[0], q[1], q[2]
        );
    }
    println!("\ncolumns under q(p): parity trees (checker cost) per latency bound.");
    Ok(())
}
