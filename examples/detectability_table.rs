//! Regenerates the paper's Fig. 2: the error-detectability table.
//!
//! Builds the worked-example FSM, enumerates erroneous cases at latency
//! p = 2, and prints the table exactly in the Fig. 2 layout — rows are
//! erroneous cases, super-columns are latency steps, columns are the
//! monitored bits `b1..bn`, and a `1` marks a bit through which the
//! case can be detected at that step.
//!
//! Run with: `cargo run -p ced-examples --bin detectability_table`

use ced_examples::synthesize;
use ced_fsm::suite;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::fault::collapsed_faults;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = suite::worked_example();
    let circuit = synthesize(&fsm);
    println!(
        "machine: {} — r={} inputs, s={} state bits, {} outputs (n={})",
        circuit.name(),
        circuit.num_inputs(),
        circuit.state_bits(),
        circuit.num_outputs(),
        circuit.total_bits()
    );

    let faults = collapsed_faults(circuit.netlist());
    println!("fault list: {} collapsed stuck-at faults", faults.len());

    for p in 1..=2 {
        let (table, stats) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                // The literal Fig. 2 table: all deduplicated erroneous
                // cases, temporal step order preserved.
                reduce: false,
                ..DetectOptions::default()
            },
        )?;
        println!(
            "\n=== error detectability table, latency p = {p} ===\n\
             ({} activations → {} raw rows → {} unique erroneous cases)\n",
            stats.activations, stats.rows_raw, stats.rows
        );
        println!(
            "columns, most significant first: b{}..b1 \
             (b1..b{} = next-state bits, the rest outputs)\n",
            table.num_bits(),
            circuit.state_bits()
        );
        print!("{}", table.render());
    }

    println!(
        "\nReading the table: a parity tree (XOR of a bit subset) detects an \
         erroneous case iff it taps an odd number of marked bits in some \
         latency column — the paper's Statement 2."
    );
    Ok(())
}
