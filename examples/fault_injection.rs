//! Operational validation: inject every fault, watch the checker fire.
//!
//! The analytic guarantee says: a parity cover verified against the
//! detectability table detects every modeled fault within p cycles of
//! its first error. This example checks that *operationally* — it
//! injects each stuck-at fault into the running machine, drives random
//! inputs, and measures the actual detection latency — under **both**
//! step-difference semantics:
//!
//! * `FaultyTrajectory`: what the Fig. 3 hardware observes (prediction
//!   from the actual state register) — the physically certifiable one;
//! * `Lockstep`: the paper's fault-simulation view (golden reference
//!   trajectory) — checked against a lockstep-verified cover.
//!
//! The run also demonstrates the soundness gap this reproduction
//! surfaces: a cover verified under lockstep semantics may miss errors
//! when judged by the faulty-trajectory (hardware) condition at p ≥ 2.
//!
//! Run with: `cargo run -p ced-examples --bin fault_injection --release`

use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_examples::synthesize;
use ced_fsm::suite;
use ced_sim::coverage::{simulate_fault_detection, SimOutcome};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};
use ced_sim::fault::collapsed_faults;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let latency = 2usize;
    let fsm = suite::traffic_light();
    let circuit = synthesize(&fsm);
    let faults = collapsed_faults(circuit.netlist());
    println!(
        "machine: {} — n = {} monitored bits, {} faults, latency bound p = {latency}",
        circuit.name(),
        circuit.total_bits(),
        faults.len()
    );

    for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
        println!("\n===== semantics: {semantics:?} =====");
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency,
                semantics,
                ..DetectOptions::default()
            },
        )?;
        let outcome = minimize_parity_functions(&table, &CedOptions::default());
        println!(
            "Algorithm 1: {} erroneous cases covered by q = {} parity trees: {:?}",
            table.len(),
            outcome.q,
            outcome
                .cover
                .masks
                .iter()
                .map(|m| format!("{m:b}"))
                .collect::<Vec<_>>()
        );

        // Inject every fault; several seeds each; histogram worst case.
        let mut histogram = vec![0usize; latency + 1];
        let mut untestable = 0usize;
        let mut missed = 0usize;
        for (i, &fault) in faults.iter().enumerate() {
            let mut worst = 0usize;
            let mut seen = false;
            for seed in 0..8u64 {
                match simulate_fault_detection(
                    &circuit,
                    fault,
                    &outcome.cover.masks,
                    latency,
                    2000,
                    0xFEED ^ (i as u64) << 8 ^ seed,
                    semantics,
                ) {
                    SimOutcome::NoErrorObserved => {}
                    SimOutcome::DetectedInTime { latency: l } => {
                        seen = true;
                        worst = worst.max(l);
                    }
                    SimOutcome::Missed { .. } => {
                        seen = true;
                        worst = latency + 1;
                    }
                }
            }
            if !seen {
                untestable += 1;
            } else if worst > latency {
                missed += 1;
            } else {
                histogram[worst] += 1;
            }
        }
        println!("detection-latency histogram (worst case per fault, 8 runs each):");
        for (cycles, count) in histogram.iter().enumerate().skip(1) {
            println!("  {cycles} cycle(s): {count} faults");
        }
        println!("  no error observed: {untestable}");
        println!("  missed: {missed}");
        assert_eq!(
            missed, 0,
            "cover verified under {semantics:?} missed under the same semantics!"
        );
        println!("bounded-latency guarantee held under {semantics:?} ✓");

        if semantics == Semantics::Lockstep {
            // The reproduction finding: judge the lockstep cover by the
            // hardware-observable condition instead.
            let mut cross_missed = 0usize;
            for (i, &fault) in faults.iter().enumerate() {
                for seed in 0..8u64 {
                    if let SimOutcome::Missed { .. } = simulate_fault_detection(
                        &circuit,
                        fault,
                        &outcome.cover.masks,
                        latency,
                        2000,
                        0xFEED ^ (i as u64) << 8 ^ seed,
                        Semantics::FaultyTrajectory,
                    ) {
                        cross_missed += 1;
                        break;
                    }
                }
            }
            println!(
                "cross-check: the lockstep-verified cover, judged by the \
                 Fig. 3 hardware condition, misses {cross_missed} fault(s) \
                 — 0 would mean the two semantics agreed on this machine."
            );
        }
    }
    Ok(())
}
