//! The latency/overhead trade-off (paper §2 and §5).
//!
//! Sweeps the latency bound p = 1..5 on two machines with opposite loop
//! structure — a self-loop-heavy small controller and a loop-light
//! larger one — and shows (i) the monotone drop in parity functions and
//! (ii) the saturation once p passes the shortest-loop bound.
//!
//! Run with: `cargo run -p ced-examples --bin latency_tradeoff --release`

use ced_core::pipeline::{fault_list, run_circuit, synthesize_circuit, PipelineOptions};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_logic::gate::CellLibrary;
use ced_sim::loops::max_useful_latency;

fn machine(name: &str, states: usize, self_loop_bias: f64, seed: u64) -> ced_fsm::Fsm {
    generate(&GeneratorConfig {
        name: name.into(),
        num_inputs: 2,
        num_states: states,
        num_outputs: 2,
        cubes_per_state: 4,
        self_loop_bias,
        output_dc_prob: 0.05,
        output_pool: 3,
        seed,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let latencies = [1usize, 2, 3, 4, 5];

    for (label, fsm) in [
        ("loopy-small", machine("loopy-small", 6, 0.6, 11)),
        ("sparse-large", machine("sparse-large", 14, 0.05, 12)),
    ] {
        let circuit = synthesize_circuit(&fsm, &options)?;
        let faults = fault_list(&circuit, &options);
        let p_star = max_useful_latency(&circuit, &faults);
        println!(
            "\n{label}: {} states, {:.0}% self-loops, max useful latency p* = {p_star}",
            fsm.num_states(),
            fsm.self_loop_fraction() * 100.0
        );

        let report = run_circuit(&fsm, &latencies, &options, &lib)?;
        println!(
            "{:>3} {:>6} {:>8} {:>10} {:>12}",
            "p", "trees", "gates", "cost", "vs p=1 cost"
        );
        let base = report.latencies[0].cost.area;
        for lr in &report.latencies {
            println!(
                "{:>3} {:>6} {:>8} {:>10.1} {:>11.1}%",
                lr.latency,
                lr.cover.len(),
                lr.cost.gates,
                lr.cost.area,
                100.0 * lr.cost.area / base
            );
        }
        println!(
            "note: the tree count is non-increasing in p and flattens near \
             p* = {p_star} (paper §2: every longer path wraps a loop)."
        );
    }
    Ok(())
}
