//! Shared helpers for the runnable examples.

use ced_fsm::encoded::EncodedFsm;
use ced_fsm::encoded::FsmCircuit;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::machine::Fsm;
use ced_logic::MinimizeOptions;

/// Synthesizes a machine with default settings, completing it first if
/// it is partially specified.
pub fn synthesize(fsm: &Fsm) -> FsmCircuit {
    let mut fsm = fsm.clone();
    if fsm.check_complete().is_err() {
        fsm.complete_with_self_loops();
    }
    let enc = assign(&fsm, EncodingStrategy::Natural);
    EncodedFsm::new(fsm, enc)
        .expect("well-formed example machine")
        .synthesize(&MinimizeOptions::default())
}

/// Formats a parity mask as the bit names it taps (b1..bn, paper
/// convention: b1..bs next-state bits, the rest outputs).
pub fn mask_to_bits(mask: u64, state_bits: usize) -> String {
    let mut parts = Vec::new();
    for j in 0..64 {
        if (mask >> j) & 1 == 1 {
            if j < state_bits {
                parts.push(format!("b{} (state)", j + 1));
            } else {
                parts.push(format!("b{} (output)", j + 1));
            }
        }
    }
    parts.join(" ⊕ ")
}
