//! Quickstart: bounded-latency CED for a small FSM, end to end.
//!
//! Synthesizes a 1011-sequence detector, runs the full pipeline for
//! latency bounds p = 1, 2, 3 and prints the resulting parity covers
//! and hardware costs — the Fig. 3 architecture realized in code.
//!
//! Run with: `cargo run -p ced-examples --bin quickstart`

use ced_core::pipeline::{run_circuit, PipelineOptions};
use ced_core::synthesize_ced;
use ced_fsm::suite;
use ced_logic::gate::CellLibrary;
use ced_logic::MinimizeOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fsm = suite::sequence_detector();
    println!(
        "machine: {} — {}",
        fsm.name(),
        ced_fsm::analysis::FsmStats::of(&fsm)
    );

    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let report = run_circuit(&fsm, &[1, 2, 3], &options, &lib)?;

    println!(
        "\noriginal circuit: {} gates, cost {:.1} (incl. {} state FFs)",
        report.original_gates, report.original_cost, report.state_bits
    );
    println!(
        "duplication baseline: {} compared functions, {} gates, cost {:.1}",
        report.duplication.parity_functions, report.duplication.gates, report.duplication.area
    );
    println!(
        "fault model: {} collapsed stuck-at faults, {} untestable, {} erroneous-case activations",
        report.detect_stats.faults,
        report.detect_stats.untestable_faults,
        report.detect_stats.activations
    );

    let circuit = ced_core::pipeline::synthesize_circuit(&fsm, &options)?;
    for lr in &report.latencies {
        println!(
            "\nlatency p={}: {} erroneous cases, q = {} parity trees \
             ({} LP solves, {} rounding attempts)",
            lr.latency,
            lr.erroneous_cases,
            lr.cover.len(),
            lr.lp_solves,
            lr.rounding_attempts
        );
        for (i, &mask) in lr.cover.masks.iter().enumerate() {
            println!(
                "  tree {}: {}",
                i + 1,
                ced_examples::mask_to_bits(mask, report.state_bits)
            );
        }
        // Re-synthesize to show the Fig. 3 structure explicitly.
        let ced = synthesize_ced(&circuit, &lr.cover, lr.latency, &MinimizeOptions::default());
        let cost = ced.cost(&lib);
        println!(
            "  checker: {} gates, {} hold FFs, cost {:.1} \
             ({:.1}% of duplication)",
            cost.gates,
            cost.flip_flops,
            cost.area,
            100.0 * cost.area / report.duplication.area
        );
    }
    Ok(())
}
