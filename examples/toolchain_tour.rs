//! A tour of the whole toolchain on one machine: parse → state-minimize
//! → encode → synthesize → export → re-import → equivalence-check →
//! protect with bounded-latency CED → diagnose an injected fault.
//!
//! Run with: `cargo run -p ced-examples --bin toolchain_tour`

use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_fsm::encoded::EncodedFsm;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::kiss;
use ced_fsm::minimize::minimize_states;
use ced_logic::{blif, MinimizeOptions};
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::diagnose::{FaultDictionary, Observation};
use ced_sim::equiv::check_equivalence;
use ced_sim::fault::collapsed_faults;
use ced_sim::models::register_upset_table;
use ced_sim::tables::TransitionTables;

/// A deliberately bloated controller: states `e2`/`e3` duplicate `e0`/
/// `e1`'s behaviour and should disappear under minimization.
const KISS2: &str = "\
.model bloated
.i 1
.o 2
.s 5
.r e0
0 e0 e0 00
1 e0 e1 01
0 e1 e2 10
1 e1 f  11
0 e2 e2 00
1 e2 e3 01
0 e3 e0 10
1 e3 f  11
- f  e0 00
.e
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse and minimize.
    let fsm = kiss::parse(KISS2)?;
    let min = minimize_states(&fsm)?;
    println!(
        "1. parsed `{}`: {} states → minimized to {}",
        fsm.name(),
        fsm.num_states(),
        min.num_states()
    );

    // 2. Encode and synthesize both; prove them equivalent at gate level.
    let synth = |m: &ced_fsm::Fsm| {
        let enc = assign(m, EncodingStrategy::Gray);
        EncodedFsm::new(m.clone(), enc).map(|e| e.synthesize(&MinimizeOptions::default()))
    };
    let big = synth(&fsm)?;
    let small = synth(&min)?;
    println!(
        "2. synthesized: {} vs {} gates; equivalence: {:?}",
        big.gate_count(),
        small.gate_count(),
        check_equivalence(&big, &small).is_equivalent()
    );

    // 3. Export to BLIF, re-import, sanity-check one transition.
    let text = small.to_blif();
    let model = blif::parse(&text)?;
    println!(
        "3. BLIF round-trip: {} latches, {} gates re-imported",
        model.latches.len(),
        model.netlist.gate_count()
    );

    // 4. Protect with bounded-latency CED (stuck-at ∪ register upsets).
    let faults = collapsed_faults(small.netlist());
    let stuck = DetectabilityTable::build(
        &small,
        &faults,
        &DetectOptions {
            latency: 2,
            reduce: false,
            ..DetectOptions::default()
        },
    )?
    .0;
    let combined = stuck.merged(&register_upset_table(&small, 2));
    let outcome = minimize_parity_functions(&combined, &CedOptions::default());
    println!(
        "4. CED: {} combined erroneous cases (stuck-at + register upsets) \
         covered by q = {} parity trees at p = 2",
        combined.len(),
        outcome.q
    );

    // 5. Inject a fault, collect checker observations, diagnose.
    let dict = FaultDictionary::build(&small, &faults, &outcome.cover.masks);
    let culprit = 3usize;
    let good = TransitionTables::good(&small);
    let bad = TransitionTables::faulty(&small, faults[culprit]);
    let mut state = small.reset_code();
    let mut observations = Vec::new();
    let mut x = 0x5EEDu64;
    for _ in 0..150 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let input = (x >> 40) & ((1 << small.num_inputs()) - 1);
        let d = good.response(state, input) ^ bad.response(state, input);
        let mut syndrome = 0u64;
        for (l, &m) in outcome.cover.masks.iter().enumerate() {
            if (m & d).count_ones() & 1 == 1 {
                syndrome |= 1 << l;
            }
        }
        observations.push(Observation {
            state,
            input,
            syndrome,
        });
        state = bad.next(state, input);
    }
    let candidates = dict.diagnose(&observations);
    println!(
        "5. diagnosis: injected {} → {} candidate fault(s) after 150 cycles \
         (dictionary resolution {:.2})",
        faults[culprit],
        candidates.len(),
        dict.resolution()
    );
    assert!(candidates.contains(&culprit), "true fault must survive");
    println!("\ntour complete ✓");
    Ok(())
}
