//! The §2 persistence assumption, quantified.
//!
//! Bounded-latency CED assumes "a fault remains present for at least p
//! clock cycles after causing an error" — realistic for permanent and
//! wear-out intermittent faults, violated by single-event upsets. This
//! example sweeps the fault-persistence duration and measures the
//! escape rate of a latency-2 checker: errors whose fault vanishes
//! before any window step exposes them slip through, exactly as the
//! paper warns.
//!
//! Run with: `cargo run -p ced-examples --bin transient_faults --release`

use ced_core::ip::detection_latencies;
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_examples::synthesize;
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_sim::coverage::{simulate_transient_fault_detection, TransientOutcome};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};
use ced_sim::fault::collapsed_faults;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let latency = 2usize;

    // Search (deterministically) for a machine whose latency-2 cover
    // actually *relies* on the second step — otherwise every error is
    // caught immediately and persistence is irrelevant.
    let mut chosen = None;
    'search: for seed in 0..40u64 {
        let fsm = generate(&GeneratorConfig {
            name: format!("transient{seed}"),
            num_inputs: 2,
            num_states: 10,
            num_outputs: 3,
            cubes_per_state: 4,
            self_loop_bias: 0.05,
            output_dc_prob: 0.05,
            output_pool: 3,
            seed,
        });
        let circuit = synthesize(&fsm);
        let faults = collapsed_faults(circuit.netlist());
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency,
                semantics: Semantics::FaultyTrajectory,
                ..DetectOptions::default()
            },
        )?;
        let cover = minimize_parity_functions(&table, &CedOptions::default()).cover;
        let step2_reliant = detection_latencies(&table, &cover)
            .iter()
            .filter(|l| **l == Some(2))
            .count();
        if step2_reliant > 0 {
            println!(
                "machine {}: q = {} trees; {} of {} erroneous cases are \
                 detected only at step 2",
                circuit.name(),
                cover.len(),
                step2_reliant,
                table.len()
            );
            chosen = Some((circuit, faults, cover));
            break 'search;
        }
    }
    let Some((circuit, faults, cover)) = chosen else {
        println!("no step-2-reliant cover found in the seed range; nothing to show");
        return Ok(());
    };

    // Analytic escape census for single-cycle (SEU-like) faults: an
    // activation escapes a persistence-1 fault iff no tree sees its
    // first-step difference with odd parity — step 2 never comes.
    let good = ced_sim::tables::TransitionTables::good(&circuit);
    let mut activations = 0usize;
    let mut seu_escapes = 0usize;
    for &fault in &faults {
        let bad = ced_sim::tables::TransitionTables::faulty(&circuit, fault);
        for &c in &good.reachable_codes() {
            for a in 0..(1u64 << circuit.num_inputs()) {
                let d1 = good.response(c, a) ^ bad.response(c, a);
                if d1 == 0 {
                    continue;
                }
                activations += 1;
                let caught = cover.masks.iter().any(|&m| (m & d1).count_ones() & 1 == 1);
                if !caught {
                    seu_escapes += 1;
                }
            }
        }
    }
    println!(
        "analytic SEU census: {} of {} error activations escape a \
         persistence-1 fault ({:.2}%) — all detected when persistence ≥ p",
        seu_escapes,
        activations,
        100.0 * seu_escapes as f64 / activations.max(1) as f64
    );
    println!(
        "\n{:>12} {:>10} {:>10} {:>10} {:>12}",
        "persistence", "detected", "escaped", "quiet", "escape rate"
    );

    for persistence in [1usize, 2, 3, 5, 10, 10_000] {
        let mut detected = 0usize;
        let mut escaped = 0usize;
        let mut quiet = 0usize;
        for (i, &fault) in faults.iter().enumerate() {
            for onset in 0..12usize {
                match simulate_transient_fault_detection(
                    &circuit,
                    fault,
                    &cover.masks,
                    latency,
                    onset,
                    persistence,
                    400,
                    0xABCD ^ (i as u64) << 8 ^ onset as u64,
                ) {
                    TransientOutcome::Detected { .. } => detected += 1,
                    TransientOutcome::Escaped => escaped += 1,
                    TransientOutcome::NoErrorObserved => quiet += 1,
                }
            }
        }
        let rate = if detected + escaped > 0 {
            100.0 * escaped as f64 / (detected + escaped) as f64
        } else {
            0.0
        };
        let label = if persistence == 10_000 {
            "permanent".to_string()
        } else {
            persistence.to_string()
        };
        println!("{label:>12} {detected:>10} {escaped:>10} {quiet:>10} {rate:>11.1}%");
    }
    println!(
        "\nescapes vanish once persistence ≥ the latency bound — the paper's \
         §2 assumption. Single-cycle faults (SEUs) demand either p = 1 or \
         the convolutional-code scheme the paper cites."
    );
    Ok(())
}
