// placeholder
