//! Solver cross-validation: exact optimum ≤ LP+RR ≤ n; greedy verified;
//! symmetric and full LP forms agree; latency-1 reduces to the DATE'03
//! special case (every row's single step).

use ced_core::exact::exact_minimum_cover;
use ced_core::greedy::{greedy_cover, GreedyOptions};
use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_core::relax::LpForm;
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_fsm::suite;
use ced_sim::detect::{DetectOptions, DetectabilityTable};

fn table_for(fsm: &ced_fsm::Fsm, p: usize) -> DetectabilityTable {
    table_for_opt(fsm, p, true)
}

fn table_for_opt(fsm: &ced_fsm::Fsm, p: usize, reduce: bool) -> DetectabilityTable {
    let options = PipelineOptions::paper_defaults();
    let circuit = synthesize_circuit(fsm, &options).expect("synthesizes");
    let faults = fault_list(&circuit, &options);
    DetectabilityTable::build(
        &circuit,
        &faults,
        &DetectOptions {
            latency: p,
            reduce,
            ..DetectOptions::default()
        },
    )
    .expect("fits")
    .0
}

#[test]
fn solver_orderings_hold() {
    for fsm in [
        suite::sequence_detector(),
        suite::serial_adder(),
        suite::traffic_light(),
        suite::worked_example(),
    ] {
        for p in [1usize, 2] {
            let table = table_for(&fsm, p);
            let n = table.num_bits();
            let lp_rr = minimize_parity_functions(&table, &CedOptions::default());
            let greedy = greedy_cover(&table, &GreedyOptions::default());
            assert!(table.all_covered(&lp_rr.cover.masks));
            assert!(table.all_covered(&greedy.masks));
            assert!(lp_rr.q <= n, "{} p={p}", fsm.name());
            if let Some(exact) = exact_minimum_cover(&table) {
                assert!(table.all_covered(&exact.masks));
                assert!(
                    exact.len() <= lp_rr.q,
                    "{} p={p}: exact {} > lp+rr {}",
                    fsm.name(),
                    exact.len(),
                    lp_rr.q
                );
                assert!(
                    exact.len() <= greedy.len(),
                    "{} p={p}: exact beats greedy the wrong way",
                    fsm.name()
                );
            }
        }
    }
}

#[test]
fn lp_forms_agree() {
    for fsm in [suite::serial_adder(), suite::traffic_light()] {
        let table = table_for(&fsm, 2);
        let sym = minimize_parity_functions(&table, &CedOptions::default());
        let full = minimize_parity_functions(
            &table,
            &CedOptions {
                form: LpForm::Full,
                ..CedOptions::default()
            },
        );
        // Both stochastic oracles must return verified covers. The
        // symmetric form is the stronger sampler (all q masks drawn
        // from the jointly-optimal fractional β), so it should never be
        // much worse than the literal Statement-5 form; the reverse can
        // happen (per-block rounding is weaker), which is exactly why
        // the symmetric reduction is the default.
        assert!(table.all_covered(&sym.cover.masks));
        assert!(table.all_covered(&full.cover.masks));
        assert!(
            sym.q <= full.q + 1,
            "{}: symmetric {} much worse than full {}",
            fsm.name(),
            sym.q,
            full.q
        );
    }
}

#[test]
fn latency_one_is_the_date03_special_case() {
    // At p = 1, rows have exactly one step; the IP degenerates to the
    // DATE'03 parity-compaction problem. Covering must then hold using
    // only first-step information.
    let fsm = suite::worked_example();
    let t1 = table_for(&fsm, 1);
    assert_eq!(t1.latency(), 1);
    for row in t1.rows() {
        assert_eq!(row.steps.len(), 1);
        assert_ne!(row.steps[0], 0);
    }
    let out = minimize_parity_functions(&t1, &CedOptions::default());
    assert!(t1.all_covered(&out.cover.masks));
}

#[test]
fn truncation_equals_direct_build_cross_crate() {
    // Valid on unreduced tables only (reduction depends on the bound).
    let fsm = suite::traffic_light();
    let t3 = table_for_opt(&fsm, 3, false);
    for p in 1..=3 {
        let direct = table_for_opt(&fsm, p, false);
        assert_eq!(t3.truncated(p), direct, "p={p}");
    }
}
