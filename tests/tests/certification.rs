//! Cross-crate integration of the certification layer: the pipeline's
//! claims on real suite machines survive the independent verifier
//! chain, the suite campaign wires quarantine off refutations, and a
//! corrupted record is downgraded with its report intact.

use ced_cert::{certify_report, CertifyOptions, Verdict};
use ced_core::pipeline::{run_circuit, PipelineOptions};
use ced_core::suite::degraded_pipeline;
use ced_core::{run_suite, MachineStatus, SuiteControl, SuiteOptions};
use ced_fsm::suite;
use ced_logic::gate::CellLibrary;
use ced_runtime::Budget;

/// Every suite-smoke machine's `(q, p)` claims certify end to end —
/// the acceptance bar the CI smoke job enforces on the CLI path.
#[test]
fn suite_smoke_machines_certify() {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    for spec in suite::paper_table1_scaled() {
        if !["s27", "tav", "dk512"].contains(&spec.name) {
            continue;
        }
        let fsm = spec.build();
        let report = run_circuit(&fsm, &[1, 2], &options, &lib).expect("pipeline");
        let cert = certify_report(
            &fsm,
            &report,
            &options,
            &CertifyOptions::default(),
            &Budget::unlimited(),
        )
        .expect("certification ran");
        assert_eq!(
            cert.verdict(),
            Verdict::Certified,
            "{}:\n{}",
            spec.name,
            ced_cert::report::render_text(&cert)
        );
    }
}

/// Results produced under the degraded option set (the suite's retry
/// fidelity) certify too, when re-proved under the same options.
#[test]
fn degraded_fidelity_results_certify_under_their_own_options() {
    let lib = CellLibrary::new();
    let options = degraded_pipeline(&PipelineOptions::paper_defaults());
    let fsm = suite::sequence_detector();
    let report = run_circuit(&fsm, &[1], &options, &lib).expect("pipeline");
    let cert = certify_report(
        &fsm,
        &report,
        &options,
        &CertifyOptions::default(),
        &Budget::unlimited(),
    )
    .expect("certification ran");
    assert_eq!(
        cert.verdict(),
        Verdict::Certified,
        "{}",
        ced_cert::report::render_text(&cert)
    );
}

/// The suite → certify → quarantine wiring: a completed record refuted
/// by certification is downgraded in place and the summary counts move
/// with it, while its pipeline report fragment survives.
#[test]
fn refuted_record_quarantines_in_suite_report() {
    let lib = CellLibrary::new();
    let machines = vec![("seq".to_string(), suite::sequence_detector())];
    let options = SuiteOptions {
        latencies: vec![1],
        ..SuiteOptions::default()
    };
    let mut report = run_suite(&machines, &options, &lib, SuiteControl::new()).expect("suite");
    assert_eq!(report.completed(), 1);
    assert_eq!(report.quarantined(), 0);
    assert!(report.to_json().contains("\"quarantined\":0"));

    // Simulate what `ced suite --certify` does on a refutation.
    report.records[0].quarantine("certification refuted: solution-soundness".into());
    report.certified = true;
    assert_eq!(report.records[0].status, MachineStatus::Quarantined);
    assert_eq!(report.quarantined(), 1);
    let json = report.to_json();
    assert!(json.contains("\"certified\":true"), "{json}");
    assert!(json.contains("\"quarantined\":1"), "{json}");
    assert!(
        json.contains("certification refuted: solution-soundness"),
        "{json}"
    );
    // The pipeline numbers are still there for post-mortem reading.
    assert!(json.contains("\"masks\""), "{json}");
}
