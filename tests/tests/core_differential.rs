//! Sparse ≡ dense engine differential battery (the tentpole's pin).
//!
//! The bit-packed sparse engine (packed tensor columns, GF(2) case
//! kernel, sparse-row simplex) must be indistinguishable from the
//! original dense paths in every observable byte: `CircuitReport`
//! fields, `ced-suite-report/1` documents, store keys (a dense rerun
//! must *hit* artifacts a sparse run stored), degradation trails under
//! forced ladder descent, and the independent certification chain —
//! across fault models, job counts and warm/cold stores.

use ced_core::pipeline::{run_circuit, PipelineOptions};
use ced_core::{run_suite, CedOptions, SolverEngine, SuiteControl, SuiteOptions};
use ced_fsm::generator::{generate, scaled_workload};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::Budget;
use ced_sim::fault::FaultModel;
use ced_store::Store;
use std::sync::Arc;

const MACHINES: [&str; 3] = ["s27", "tav", "dk512"];
const LATENCIES: [usize; 2] = [1, 2];

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

/// The differential corpus: three scaled paper machines plus one
/// generated scaling machine (the `ced gen` workload at 2×). Seed 3 is
/// chosen so the generated machine's pipeline result also certifies
/// under the independent verifier chain — on some seeds the greedy
/// baseline beats the stochastic LP search and the certifier (rightly)
/// refuses the result, a search-quality property orthogonal to the
/// engine equivalence pinned here.
fn corpus() -> Vec<(String, Fsm)> {
    let mut machines: Vec<(String, Fsm)> = MACHINES
        .iter()
        .map(|&name| (name.to_string(), scaled(name)))
        .collect();
    let gen = generate(&scaled_workload(2, 3));
    machines.push(("gen2x".to_string(), gen));
    machines
}

fn engine_options(engine: SolverEngine, fault_model: FaultModel) -> SuiteOptions {
    let mut options = SuiteOptions {
        latencies: LATENCIES.to_vec(),
        ..SuiteOptions::default()
    };
    options.pipeline.fault_model = fault_model;
    options.pipeline.ced.engine = engine;
    options
}

/// Replaces the `"jobs":N` header token (the only part of a suite
/// report that records the worker count) with a fixed value.
fn normalize_jobs(json: &str) -> String {
    let Some(start) = json.find("\"jobs\":") else {
        return json.to_string();
    };
    let digits = start + "\"jobs\":".len();
    let end = json[digits..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |i| digits + i);
    format!("{}\"jobs\":0{}", &json[..start], &json[end..])
}

fn suite_json(
    machines: &[(String, Fsm)],
    options: &SuiteOptions,
    pool: Option<&ParExec>,
    store: Option<Arc<Store>>,
) -> String {
    let mut control = SuiteControl::new();
    control.pool = pool;
    control.store = store;
    normalize_jobs(
        &run_suite(machines, options, &CellLibrary::new(), control)
            .expect("suite completes")
            .to_json(),
    )
}

/// The tentpole matrix: for every fault-model family, the full suite
/// document is byte-identical between the sparse (default) and dense
/// engines.
#[test]
fn suite_reports_identical_sparse_vs_dense_across_fault_models() {
    let machines = corpus();
    for fault_model in [
        FaultModel::PermanentStuckAt,
        FaultModel::TransientSeu { duration: 4 },
        FaultModel::Intermittent { period: 3 },
        FaultModel::MultiBitCluster { radius: 1 },
    ] {
        let sparse = suite_json(
            &machines,
            &engine_options(SolverEngine::Sparse, fault_model),
            None,
            None,
        );
        let dense = suite_json(
            &machines,
            &engine_options(SolverEngine::Dense, fault_model),
            None,
            None,
        );
        assert_eq!(sparse, dense, "fault model {fault_model}");
    }
}

/// Engine choice is invisible to the store: a sparse cold run populates
/// the cache, and a *dense* rerun must hit the same search keys (the
/// engine is deliberately excluded from the fingerprint), returning the
/// same bytes — and vice versa. Runs span `--jobs 1` and `--jobs 4`.
#[test]
fn store_keys_shared_between_engines_across_job_counts() {
    let machines = corpus();
    let sparse_opts = engine_options(SolverEngine::Sparse, FaultModel::PermanentStuckAt);
    let dense_opts = engine_options(SolverEngine::Dense, FaultModel::PermanentStuckAt);

    let store = Arc::new(Store::in_memory());
    let cold_sparse = suite_json(&machines, &sparse_opts, None, Some(Arc::clone(&store)));
    let search_puts = |s: &Store| {
        s.stats()
            .stages
            .iter()
            .find(|(stage, _)| stage == "search")
            .map(|(_, c)| (c.hits, c.misses, c.puts))
            .unwrap_or_default()
    };
    let (_, _, puts) = search_puts(&store);
    assert!(puts > 0, "cold sparse run must store search artifacts");

    let (hits_before, misses_before, _) = search_puts(&store);
    let warm_dense = suite_json(
        &machines,
        &dense_opts,
        Some(&ParExec::new(4)),
        Some(Arc::clone(&store)),
    );
    let (hits_after, misses_after, _) = search_puts(&store);
    assert!(
        hits_after > hits_before,
        "dense rerun must hit the sparse run's search artifacts"
    );
    assert_eq!(
        misses_after, misses_before,
        "dense rerun must not miss any search artifact the sparse run stored"
    );
    let warm_sparse = suite_json(
        &machines,
        &sparse_opts,
        Some(&ParExec::new(1)),
        Some(Arc::clone(&store)),
    );

    assert_eq!(cold_sparse, warm_dense, "sparse cold vs dense warm");
    assert_eq!(cold_sparse, warm_sparse, "sparse cold vs sparse warm");
}

/// Forced ladder descent (rounding disabled, then a starved LP budget)
/// must produce identical `DegradationEvent` trails and final covers
/// under both engines, machine by machine.
#[test]
fn degradation_trails_identical_under_both_engines() {
    let lib = CellLibrary::new();
    for (name, fsm) in corpus() {
        for degrade in [
            |c: &mut CedOptions| c.iterations = 0,
            |c: &mut CedOptions| c.max_lp_solves = Some(1),
        ] {
            let mut sparse_opts = PipelineOptions::paper_defaults();
            degrade(&mut sparse_opts.ced);
            let mut dense_opts = sparse_opts.clone();
            dense_opts.ced.engine = SolverEngine::Dense;

            let sparse = run_circuit(&fsm, &LATENCIES, &sparse_opts, &lib).expect("pipeline");
            let dense = run_circuit(&fsm, &LATENCIES, &dense_opts, &lib).expect("pipeline");
            for (a, b) in sparse.latencies.iter().zip(&dense.latencies) {
                assert_eq!(a.cover.masks, b.cover.masks, "{name} p={}", a.latency);
                assert_eq!(a.method, b.method, "{name} p={}", a.latency);
                assert_eq!(a.degradation, b.degradation, "{name} p={}", a.latency);
            }
        }
    }
}

/// Independent cross-check: covers produced by the sparse engine
/// certify under the BFS/rational verifier chain, which shares no code
/// with the packed representation or the kernel reduction.
#[test]
fn sparse_engine_covers_certify_independently() {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    assert_eq!(options.ced.engine, SolverEngine::Sparse, "sparse default");
    for (name, fsm) in corpus() {
        let report = run_circuit(&fsm, &LATENCIES, &options, &lib).expect("pipeline");
        let cert = ced_cert::certify_report(
            &fsm,
            &report,
            &options,
            &ced_cert::CertifyOptions::default(),
            &Budget::unlimited(),
        )
        .expect("certification ran");
        assert_eq!(
            cert.verdict(),
            ced_cert::Verdict::Certified,
            "{name}:\n{}",
            ced_cert::report::render_text(&cert)
        );
    }
}
