//! The paper's central promise, checked operationally across crates:
//! a parity cover verified against the detectability table detects
//! **every** modeled fault within the latency bound, when the faulty
//! machine is actually run.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_fsm::suite;
use ced_sim::coverage::{simulate_fault_detection, SimOutcome};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};

fn check_machine(fsm: &ced_fsm::Fsm, latencies: &[usize]) {
    for semantics in [Semantics::FaultyTrajectory, Semantics::Lockstep] {
        check_machine_with(fsm, latencies, semantics);
    }
}

/// Verifies the guarantee with matching analytic and operational
/// semantics (a lockstep cover is only promised under the lockstep
/// condition; see DESIGN.md §5 and EXPERIMENTS.md).
fn check_machine_with(fsm: &ced_fsm::Fsm, latencies: &[usize], semantics: Semantics) {
    let options = PipelineOptions::paper_defaults();
    let circuit = synthesize_circuit(fsm, &options).expect("synthesizes");
    let faults = fault_list(&circuit, &options);
    for &p in latencies {
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                semantics,
                ..DetectOptions::default()
            },
        )
        .expect("table fits");
        let outcome = minimize_parity_functions(&table, &CedOptions::default());
        assert!(
            table.all_covered(&outcome.cover.masks),
            "{}: cover fails Statement 4 at p={p}",
            fsm.name()
        );
        for (i, &fault) in faults.iter().enumerate() {
            let sim = simulate_fault_detection(
                &circuit,
                fault,
                &outcome.cover.masks,
                p,
                1500,
                0xC0FFEE ^ (i as u64) << 3 ^ p as u64,
                semantics,
            );
            assert!(
                !matches!(sim, SimOutcome::Missed { .. }),
                "{}: fault {fault} missed at p={p} with q={} masks {:?}",
                fsm.name(),
                outcome.q,
                outcome.cover.masks
            );
        }
    }
}

#[test]
fn guarantee_holds_for_sequence_detector() {
    check_machine(&suite::sequence_detector(), &[1, 2]);
}

#[test]
fn guarantee_holds_for_serial_adder() {
    check_machine(&suite::serial_adder(), &[1, 2, 3]);
}

#[test]
fn guarantee_holds_for_traffic_light() {
    check_machine(&suite::traffic_light(), &[1, 2]);
}

#[test]
fn guarantee_holds_for_synthetic_machines() {
    use ced_fsm::generator::{generate, GeneratorConfig};
    for seed in [3u64, 17] {
        let fsm = generate(&GeneratorConfig {
            name: format!("guarantee{seed}"),
            num_inputs: 2,
            num_states: 6,
            num_outputs: 2,
            cubes_per_state: 4,
            self_loop_bias: 0.3,
            output_dc_prob: 0.05,
            output_pool: 3,
            seed,
        });
        check_machine(&fsm, &[1, 2]);
    }
}

#[test]
fn reduced_cover_is_not_vacuous() {
    // The minimized cover must actually be smaller than monitoring every
    // bit for at least one machine — otherwise the optimization is
    // doing nothing.
    let options = PipelineOptions::paper_defaults();
    let mut any_reduction = false;
    for fsm in [suite::traffic_light(), suite::worked_example()] {
        let circuit = synthesize_circuit(&fsm, &options).expect("synthesizes");
        let faults = fault_list(&circuit, &options);
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: 2,
                ..DetectOptions::default()
            },
        )
        .expect("table fits");
        let outcome = minimize_parity_functions(&table, &CedOptions::default());
        if outcome.q < circuit.total_bits() {
            any_reduction = true;
        }
    }
    assert!(any_reduction, "optimizer never beat the singleton fallback");
}
