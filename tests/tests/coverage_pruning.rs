//! Regression pins for the shared dominance-pruning machinery in
//! `ced-store` (`CoverageMatrix`, `RowSet`, `drop_dominated`). Three
//! call sites used to carry private copies of this logic — the
//! detectability-table collector in `ced-sim`, the exact-cover
//! candidate pruning in `ced-core::exact` and the greedy uncovered-row
//! bookkeeping in `ced-core::greedy` — and the unification must not
//! have changed what any of them prunes. These tests pin the pruned
//! candidate counts on the scaled s27 / tav / dk512 machines and prove
//! the structural invariants (antichain output, dominated-only drops,
//! deterministic order) that all three call sites rely on.

use ced_core::exact::exact_minimum_cover;
use ced_core::greedy::{greedy_cover, GreedyOptions};
use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_store::{drop_dominated, CoverageMatrix, RowSet};

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

fn table_for(name: &str, latency: usize) -> DetectabilityTable {
    let options = PipelineOptions::paper_defaults();
    let fsm = scaled(name);
    let circuit = synthesize_circuit(&fsm, &options).expect("synthesizable");
    let faults = fault_list(&circuit, &options);
    let (table, _) = DetectabilityTable::build(
        &circuit,
        &faults,
        &DetectOptions {
            latency,
            ..DetectOptions::default()
        },
    )
    .expect("within row cap");
    table
}

/// Rebuilds the exact solver's candidate list (coverage bitset per
/// parity mask, deduplicated, preference-ordered) exactly as
/// `ced-core::exact` does, then prunes it with the shared
/// `drop_dominated`.
fn pruned_candidates(table: &DetectabilityTable) -> Vec<(RowSet, u64)> {
    let n = table.num_bits();
    let m = table.len();
    let mut by_coverage: std::collections::HashMap<RowSet, u64> = std::collections::HashMap::new();
    for mask in 1..(1u64 << n) {
        let mut cov = RowSet::empty(m);
        for (i, row) in table.rows().iter().enumerate() {
            if row.detected_by(mask) {
                cov.insert(i);
            }
        }
        if cov.is_empty() {
            continue;
        }
        by_coverage
            .entry(cov)
            .and_modify(|best| {
                if mask.count_ones() < best.count_ones() {
                    *best = mask;
                }
            })
            .or_insert(mask);
    }
    let total = by_coverage.len();
    let mut candidates: Vec<(RowSet, u64)> = by_coverage.into_iter().collect();
    candidates.sort_by(|(ca, ma), (cb, mb)| {
        cb.count()
            .cmp(&ca.count())
            .then_with(|| ca.cmp(cb))
            .then_with(|| ma.cmp(mb))
    });
    let kept = drop_dominated(candidates);
    assert!(kept.len() <= total);
    kept
}

/// Pinned (table rows, pruned candidate count) per machine and bound.
/// If a refactor of the shared pruning code changes either number, a
/// solver is now searching a different candidate space — that must be
/// a deliberate, reviewed change, not an accident.
const PINNED: [(&str, usize, usize, usize); 6] = [
    ("s27", 1, 15, 15),
    ("s27", 2, 15, 15),
    ("tav", 1, 20, 31),
    ("tav", 2, 19, 31),
    ("dk512", 1, 29, 31),
    ("dk512", 2, 26, 31),
];

#[test]
fn pruned_candidate_counts_are_pinned() {
    for (name, p, want_rows, want_kept) in PINNED {
        let table = table_for(name, p);
        let kept = pruned_candidates(&table);
        assert_eq!(
            (table.len(), kept.len()),
            (want_rows, want_kept),
            "{name} p={p}: (rows, pruned candidates) drifted"
        );
    }
}

/// Structural invariants of `drop_dominated` on real tables: the
/// output is an antichain (no survivor's coverage contained in
/// another's), every dropped candidate was dominated by a survivor,
/// and the result is bit-for-bit deterministic.
#[test]
fn drop_dominated_output_is_a_deterministic_antichain() {
    for (name, p, _, _) in PINNED {
        let table = table_for(name, p);
        let kept = pruned_candidates(&table);
        for (i, (a, _)) in kept.iter().enumerate() {
            for (j, (b, _)) in kept.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.is_subset_of(b),
                        "{name} p={p}: survivors {i} and {j} are not an antichain"
                    );
                }
            }
        }
        let again = pruned_candidates(&table);
        assert_eq!(
            kept, again,
            "{name} p={p}: pruning must be order-deterministic"
        );
    }
}

/// The collector-side reduction (`CoverageMatrix`) agrees with the
/// table-side reduction (`dominance_reduced`): re-reducing a built
/// table is a no-op, and the surviving rows' canonical step-mask sets
/// form an antichain under the subset order `CoverageMatrix` enforces.
#[test]
fn table_reduction_is_idempotent_and_minimal() {
    for (name, p, _, _) in PINNED {
        let table = table_for(name, p);
        let again = table.dominance_reduced();
        assert_eq!(
            table.to_bytes(),
            again.to_bytes(),
            "{name} p={p}: dominance reduction must be idempotent"
        );
        let mut matrix = CoverageMatrix::new();
        for row in table.rows() {
            assert!(
                !matrix.dominated(&CoverageMatrix::canonical(&row.steps)),
                "{name} p={p}: a kept row dominates an earlier kept row"
            );
            matrix.insert_raw(CoverageMatrix::canonical(&row.steps));
        }
    }
}

/// End-to-end pin: on every machine and bound, the exact solver's
/// minimum cover (found inside the pruned candidate space) and the
/// greedy cover (driven by `RowSet` bookkeeping) both cover the full
/// table, and exact is never worse than greedy.
#[test]
fn exact_and_greedy_agree_on_pruned_tables() {
    for (name, p, _, _) in PINNED {
        let table = table_for(name, p);
        let greedy = greedy_cover(&table, &GreedyOptions::default());
        assert!(
            table.all_covered(&greedy.masks),
            "{name} p={p}: greedy cover must cover the table"
        );
        let exact = exact_minimum_cover(&table).expect("small tables certify");
        assert!(
            table.all_covered(&exact.masks),
            "{name} p={p}: exact cover must cover the table"
        );
        assert!(
            exact.masks.len() <= greedy.masks.len(),
            "{name} p={p}: exact must not be worse than greedy"
        );
    }
}
