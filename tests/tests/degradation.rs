//! Solver-ladder degradation: even when the randomized-rounding oracle
//! is forced to fail on every attempt (`ITER = 0`), the pipeline must
//! still return a *verified* parity cover via the greedy rung, and the
//! report must carry the degradation trail explaining how the result
//! was obtained.

use ced_core::pipeline::{
    build_input_model, fault_list, prepare_machine, run_circuit, InputGranularity, PipelineOptions,
};
use ced_core::report::degradation_notes;
use ced_core::search::{DegradationReason, LadderRung};
use ced_fsm::suite;
use ced_logic::gate::CellLibrary;
use ced_sim::detect::{DetectOptions, DetectabilityTable};

#[test]
fn forced_rounding_failure_degrades_to_verified_greedy_cover() {
    let fsm = suite::sequence_detector();
    let mut options = PipelineOptions::paper_defaults();
    options.ced.iterations = 0; // the oracle can never certify anything
    let latencies = [1usize, 2];
    let report = run_circuit(&fsm, &latencies, &options, &CellLibrary::new())
        .expect("pipeline must not die when rounding is disabled");

    // Rebuild the detectability tables independently and verify each
    // reported cover satisfies Statement 4 exactly.
    let (encoded, circuit) = prepare_machine(&fsm, &options).expect("synthesizes");
    let input_model = build_input_model(
        encoded.fsm(),
        encoded.encoding(),
        InputGranularity::TransitionCubes,
    );
    let faults = fault_list(&circuit, &options);
    for lr in &report.latencies {
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: lr.latency,
                semantics: options.semantics,
                input_model: input_model.clone(),
                ..DetectOptions::default()
            },
        )
        .expect("table fits");
        assert!(
            table.all_covered(&lr.cover.masks),
            "p={}: degraded cover fails Statement 4",
            lr.latency
        );
        assert!(
            !lr.cover.is_empty(),
            "p={}: ladder returned an empty cover",
            lr.latency
        );

        // The trail must exist and explain the forced failure.
        assert!(
            !lr.degradation.is_empty(),
            "p={}: degradation trail missing",
            lr.latency
        );
        assert!(
            lr.degradation
                .iter()
                .any(|e| e.reason == DegradationReason::RoundingDisabled
                    && e.to == LadderRung::GreedyCover),
            "p={}: trail does not record rounding-disabled → greedy: {:?}",
            lr.latency,
            lr.degradation
        );
        // The final cover must come from a non-stochastic rung (greedy,
        // or an incumbent inherited from a previous latency's greedy
        // result) — never from the disabled oracle.
        assert!(
            matches!(
                lr.method,
                LadderRung::GreedyCover | LadderRung::Incumbent | LadderRung::Duplication
            ),
            "p={}: cover attributed to the disabled oracle: {:?}",
            lr.latency,
            lr.method
        );
    }

    // The first latency has no incumbent to inherit, so the greedy rung
    // itself must have produced the cover.
    assert_eq!(report.latencies[0].method, LadderRung::GreedyCover);

    // And the human-readable report surfaces the degradation.
    let notes = degradation_notes(&report);
    assert!(!notes.is_empty());
    assert!(
        notes.iter().any(|n| n.contains("greedy-cover")),
        "{notes:?}"
    );
}

#[test]
fn clean_runs_report_no_degradation() {
    let fsm = suite::worked_example();
    let report = run_circuit(
        &fsm,
        &[1, 2],
        &PipelineOptions::paper_defaults(),
        &CellLibrary::new(),
    )
    .expect("pipeline runs");
    for lr in &report.latencies {
        assert!(
            lr.degradation.is_empty(),
            "p={}: unexpected degradation: {:?}",
            lr.latency,
            lr.degradation
        );
    }
    assert!(degradation_notes(&report).is_empty());
}
