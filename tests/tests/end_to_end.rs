//! Cross-crate integration: the complete pipeline on real (hand-
//! written) and synthetic machines, exercising every crate together.

use ced_core::pipeline::{run_circuit, synthesize_circuit, PipelineOptions};
use ced_core::report::{summarize, table1_row};
use ced_fsm::suite;
use ced_logic::gate::CellLibrary;

#[test]
fn pipeline_on_every_pedagogical_machine() {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    for fsm in [
        suite::sequence_detector(),
        suite::serial_adder(),
        suite::traffic_light(),
        suite::worked_example(),
    ] {
        let report = run_circuit(&fsm, &[1, 2], &options, &lib)
            .unwrap_or_else(|e| panic!("{}: {e}", fsm.name()));
        assert!(report.original_gates > 0, "{}", fsm.name());
        for lr in &report.latencies {
            assert!(!lr.cover.is_empty());
            assert!(lr.cost.gates > 0);
            assert!(lr.cost.area > 0.0);
        }
        // q never exceeds n (the singleton fallback).
        let n = report.state_bits + report.outputs;
        assert!(report.latencies[0].cover.len() <= n);
    }
}

#[test]
fn latency_monotonicity_on_suite_samples() {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    for name in ["s27", "tav"] {
        let spec = ced_fsm::suite::by_name(name).expect("suite circuit");
        let fsm = spec.build();
        let report = run_circuit(&fsm, &[1, 2, 3], &options, &lib).expect("pipeline");
        let q: Vec<usize> = report.latencies.iter().map(|l| l.cover.len()).collect();
        assert!(
            q.windows(2).all(|w| w[1] <= w[0]),
            "{name}: q not monotone: {q:?}"
        );
    }
}

#[test]
fn reports_feed_reporting_helpers() {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let reports: Vec<_> = [suite::serial_adder(), suite::traffic_light()]
        .iter()
        .map(|fsm| run_circuit(fsm, &[1, 2], &options, &lib).expect("pipeline"))
        .collect();
    let summary = summarize(&reports);
    assert_eq!(summary.latencies, vec![1, 2]);
    for r in &reports {
        let row = table1_row(r);
        assert!(row.contains(&r.name));
    }
}

#[test]
fn kiss_round_trip_preserves_pipeline_results() {
    // Serializing and re-parsing the machine must not change anything.
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let fsm = suite::worked_example();
    let text = ced_fsm::kiss::to_string(&fsm);
    let fsm2 = ced_fsm::kiss::parse(&text).expect("round trip parses");
    let r1 = run_circuit(&fsm, &[1, 2], &options, &lib).expect("pipeline");
    let r2 = run_circuit(&fsm2, &[1, 2], &options, &lib).expect("pipeline");
    assert_eq!(r1.original_gates, r2.original_gates);
    let q1: Vec<usize> = r1.latencies.iter().map(|l| l.cover.len()).collect();
    let q2: Vec<usize> = r2.latencies.iter().map(|l| l.cover.len()).collect();
    assert_eq!(q1, q2);
}

#[test]
fn encodings_affect_cost_not_correctness() {
    use ced_fsm::encoding::EncodingStrategy;
    let fsm = suite::sequence_detector();
    for strategy in [
        EncodingStrategy::Natural,
        EncodingStrategy::Gray,
        EncodingStrategy::Adjacency,
    ] {
        let options = PipelineOptions {
            encoding: strategy,
            ..PipelineOptions::paper_defaults()
        };
        let circuit = synthesize_circuit(&fsm, &options).expect("synthesizes");
        // Behaviour check: walk 1,0,1,1 from reset; output fires at the
        // last step regardless of encoding.
        let trace = circuit.run([1, 0, 1, 1]);
        assert_eq!(trace[3].1, 1, "{strategy:?}: 1011 not detected");
        assert_eq!(trace[2].1, 0);
    }
}
