//! Cross-crate round-trip: synthesized machine → BLIF text → parsed
//! model, compared gate-accurately against the original on every
//! (state, input) pair. Exercises `ced-fsm` synthesis + export,
//! `ced-logic` BLIF import, and the sequential semantics glue.

use ced_core::pipeline::{prepare_machine, PipelineOptions};
use ced_fsm::suite;
use ced_logic::blif;

#[test]
fn blif_round_trip_preserves_sequential_behaviour() {
    let options = PipelineOptions::paper_defaults();
    for fsm in [
        suite::sequence_detector(),
        suite::serial_adder(),
        suite::traffic_light(),
        suite::worked_example(),
    ] {
        let (_, circuit) = prepare_machine(&fsm, &options).expect("synthesizes");
        let text = circuit.to_blif();
        let model = blif::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", fsm.name()));

        // Interface layout: BLIF comb inputs = in* then ps*; outputs =
        // out* then ns*. FsmCircuit: inputs in*+ps*, outputs ns*+out*.
        let r = circuit.num_inputs();
        let s = circuit.state_bits();
        let o = circuit.num_outputs();
        assert_eq!(model.input_names.len(), r + s, "{}", fsm.name());
        assert_eq!(model.output_names.len(), o + s, "{}", fsm.name());
        assert_eq!(model.latches.len(), s);
        // Latch initial values encode the reset code.
        let mut reset = 0u64;
        for (b, (_, _, init)) in model.latches.iter().enumerate() {
            if *init == 1 {
                reset |= 1 << b;
            }
        }
        assert_eq!(reset, circuit.reset_code(), "{}", fsm.name());

        for code in 0..(1u64 << s) {
            for input in 0..(1u64 << r) {
                let (want_next, want_out) = circuit.step(code, input);
                let mut bits = Vec::with_capacity(r + s);
                for i in 0..r {
                    bits.push((input >> i) & 1 == 1);
                }
                for b in 0..s {
                    bits.push((code >> b) & 1 == 1);
                }
                let eval = model.netlist.eval_single(&bits);
                let mut got_out = 0u64;
                for (j, &bit) in eval.iter().enumerate().take(o) {
                    if bit {
                        got_out |= 1 << j;
                    }
                }
                let mut got_next = 0u64;
                for b in 0..s {
                    if eval[o + b] {
                        got_next |= 1 << b;
                    }
                }
                assert_eq!(
                    (got_next, got_out),
                    (want_next, want_out),
                    "{}: state {code} input {input}",
                    fsm.name()
                );
            }
        }
    }
}

#[test]
fn verilog_export_is_structurally_complete() {
    let options = PipelineOptions::paper_defaults();
    let (_, circuit) = prepare_machine(&suite::worked_example(), &options).expect("synthesizes");
    let v = circuit.to_verilog();
    // Every declared wire must be assigned exactly once.
    let wires: Vec<&str> = v
        .lines()
        .filter_map(|l| l.trim().strip_prefix("wire "))
        .map(|l| l.trim_end_matches(';'))
        .filter(|w| !w.contains('['))
        .collect();
    for w in wires {
        let assigns = v.matches(&format!("assign {w} =")).count();
        assert_eq!(assigns, 1, "wire {w} assigned {assigns} times");
    }
    // Both modules close.
    assert_eq!(v.matches("endmodule").count(), 2);
}
