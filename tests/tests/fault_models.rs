//! Fault-model differential suite. The tentpole claim: the explicit
//! `permanent` model is byte-identical to omitting the flag in every
//! rendered artifact — `ced-suite-report/1` documents, the appended
//! `ced-cert-report/1` documents, checkpoints and store keys — at
//! every job count, cold or warm. Non-permanent models must run the
//! same campaigns end-to-end, stamp their label into the report
//! header, and never collide with permanent artifacts in a shared
//! store.

use ced_core::pipeline::{run_circuit_controlled, PipelineControl, PipelineOptions};
use ced_core::{run_suite, suite_fingerprint, SuiteControl, SuiteOptions};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::Budget;
use ced_sim::fault::FaultModel;
use ced_store::Store;
use std::sync::Arc;

const MACHINES: [&str; 3] = ["s27", "tav", "dk512"];
const LATENCIES: [usize; 2] = [1, 2];

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

fn corpus() -> Vec<(String, Fsm)> {
    MACHINES
        .iter()
        .map(|&name| (name.to_string(), scaled(name)))
        .collect()
}

fn suite_options(model: Option<FaultModel>) -> SuiteOptions {
    let mut options = SuiteOptions {
        latencies: LATENCIES.to_vec(),
        ..SuiteOptions::default()
    };
    if let Some(model) = model {
        options.pipeline.fault_model = model;
    }
    options
}

/// Replaces the `"jobs":N` header token with a fixed value, as the
/// CI smoke diff does.
fn normalize_jobs(json: &str) -> String {
    let Some(start) = json.find("\"jobs\":") else {
        return json.to_string();
    };
    let digits = start + "\"jobs\":".len();
    let end = json[digits..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |i| digits + i);
    format!("{}\"jobs\":0{}", &json[..start], &json[end..])
}

fn run_suite_json(
    options: &SuiteOptions,
    pool: Option<&ParExec>,
    store: Option<Arc<Store>>,
) -> String {
    let mut control = SuiteControl::new();
    control.pool = pool;
    control.store = store;
    normalize_jobs(
        &run_suite(&corpus(), options, &CellLibrary::new(), control)
            .expect("suite completes")
            .to_json(),
    )
}

/// The tentpole differential: `--fault-model permanent` and the
/// omitted flag render byte-identical `ced-suite-report/1` documents
/// on s27/tav/dk512 — serially, under `--jobs 4`, and from a warm
/// store populated by the flag-omitted run.
#[test]
fn explicit_permanent_suite_report_is_byte_identical_to_omitted() {
    let omitted = suite_options(None);
    let explicit = suite_options(Some(FaultModel::PermanentStuckAt));

    let baseline = run_suite_json(&omitted, None, None);
    assert_eq!(
        baseline,
        run_suite_json(&explicit, None, None),
        "serial: explicit permanent vs omitted"
    );

    let pool = ParExec::new(4);
    assert_eq!(
        baseline,
        run_suite_json(&explicit, Some(&pool), None),
        "--jobs 4: explicit permanent vs omitted serial"
    );

    // Warm store handoff in both directions: artifacts stored by the
    // flag-omitted run must be served to the explicit-permanent run
    // (same keys), and the report must not change.
    let store = Arc::new(Store::in_memory());
    let cold = run_suite_json(&omitted, None, Some(Arc::clone(&store)));
    assert_eq!(baseline, cold, "cold store run changed the report");
    let hits_before: u64 = store.stats().stages.iter().map(|(_, c)| c.hits).sum();
    let warm = run_suite_json(&explicit, Some(&pool), Some(Arc::clone(&store)));
    let hits_after: u64 = store.stats().stages.iter().map(|(_, c)| c.hits).sum();
    assert_eq!(baseline, warm, "warm store run changed the report");
    assert!(
        hits_after > hits_before,
        "explicit permanent must hit the artifacts the omitted run stored"
    );
}

/// Same differential for the certification layer: the
/// `ced-cert-report/1` bytes must not depend on whether the permanent
/// model was spelled out.
#[test]
fn explicit_permanent_cert_report_is_byte_identical_to_omitted() {
    let lib = CellLibrary::new();
    for name in MACHINES {
        let fsm = scaled(name);
        let mut renders = Vec::new();
        for explicit in [false, true] {
            let mut options = PipelineOptions::paper_defaults();
            if explicit {
                options.fault_model = FaultModel::PermanentStuckAt;
            }
            let budget = Budget::unlimited();
            let report = run_circuit_controlled(
                &fsm,
                &LATENCIES,
                &options,
                &lib,
                PipelineControl::new(&budget),
            )
            .expect("pipeline completes");
            let cert = ced_cert::certify_report(
                &fsm,
                &report,
                &options,
                &ced_cert::CertifyOptions::default(),
                &budget,
            )
            .expect("certification ran");
            assert_eq!(cert.verdict(), ced_cert::Verdict::Certified, "{name}");
            renders.push(ced_cert::report::cert_report_json(&[cert]).render());
        }
        assert_eq!(renders[0], renders[1], "{name}: cert bytes differ");
    }
}

/// A transient-SEU campaign runs end-to-end on the same corpus: every
/// machine completes (no quarantines), the report header carries the
/// model label, and certification re-proves every claim under the
/// same fault automaton.
#[test]
fn transient_suite_runs_end_to_end_and_certifies() {
    let options = suite_options(Some(FaultModel::TransientSeu { duration: 4 }));
    let report = run_suite(
        &corpus(),
        &options,
        &CellLibrary::new(),
        SuiteControl::new(),
    )
    .expect("suite completes");
    assert_eq!(report.quarantined(), 0, "transient suite quarantined");
    assert_eq!(report.completed(), MACHINES.len());
    let json = report.to_json();
    assert!(
        json.contains("\"fault_model\":\"transient:4\""),
        "report must stamp the model label: {json}"
    );

    // The permanent report must NOT carry the field at all.
    let permanent = run_suite(
        &corpus(),
        &suite_options(None),
        &CellLibrary::new(),
        SuiteControl::new(),
    )
    .expect("suite completes")
    .to_json();
    assert!(
        !permanent.contains("fault_model"),
        "permanent reports must stay schema-identical to the seed"
    );

    // Certification under the same model agrees with the pipeline.
    for name in ["s27", "tav"] {
        let fsm = scaled(name);
        let budget = Budget::unlimited();
        let cert = ced_cert::certify_report(
            &fsm,
            &run_circuit_controlled(
                &fsm,
                &LATENCIES,
                &options.pipeline,
                &CellLibrary::new(),
                PipelineControl::new(&budget),
            )
            .expect("pipeline completes"),
            &options.pipeline,
            &ced_cert::CertifyOptions::default(),
            &budget,
        )
        .expect("certification ran");
        assert_eq!(
            cert.verdict(),
            ced_cert::Verdict::Certified,
            "{name} under transient:4"
        );
    }
}

/// Store-key hygiene: permanent and non-permanent campaigns sharing
/// one store must never serve each other's artifacts. The proof is
/// differential — each model's stored rerun must equal its own
/// storeless run even after the store was seeded by the other model.
#[test]
fn shared_store_keeps_fault_models_apart() {
    let permanent = suite_options(None);
    let transient = suite_options(Some(FaultModel::TransientSeu { duration: 2 }));

    let permanent_plain = run_suite_json(&permanent, None, None);
    let transient_plain = run_suite_json(&transient, None, None);
    assert_ne!(
        permanent_plain, transient_plain,
        "a 2-step SEU must change some answer on this corpus"
    );

    let store = Arc::new(Store::in_memory());
    let permanent_cold = run_suite_json(&permanent, None, Some(Arc::clone(&store)));
    let transient_warmish = run_suite_json(&transient, None, Some(Arc::clone(&store)));
    let permanent_warm = run_suite_json(&permanent, None, Some(Arc::clone(&store)));
    let transient_warm = run_suite_json(&transient, None, Some(Arc::clone(&store)));

    assert_eq!(permanent_plain, permanent_cold, "permanent cold via store");
    assert_eq!(
        transient_plain, transient_warmish,
        "transient run poisoned by permanent artifacts"
    );
    assert_eq!(
        permanent_plain, permanent_warm,
        "permanent rerun poisoned by transient artifacts"
    );
    assert_eq!(transient_plain, transient_warm, "transient warm rerun");
}

/// The campaign fingerprint that checkpoints and fleet manifests bind
/// to must separate fault models — and must NOT move when the default
/// model is merely spelled out.
#[test]
fn suite_fingerprint_separates_models_but_not_the_spelled_out_default() {
    let machines = corpus();
    let omitted = suite_fingerprint(&machines, &suite_options(None));
    let explicit = suite_fingerprint(
        &machines,
        &suite_options(Some(FaultModel::PermanentStuckAt)),
    );
    assert_eq!(
        omitted, explicit,
        "spelling out the default must not invalidate old checkpoints"
    );
    let mut seen = vec![omitted];
    for model in [
        FaultModel::TransientSeu { duration: 2 },
        FaultModel::TransientSeu { duration: 3 },
        FaultModel::Intermittent { period: 2 },
        FaultModel::MultiBitCluster { radius: 1 },
    ] {
        let fp = suite_fingerprint(&machines, &suite_options(Some(model)));
        assert!(
            !seen.contains(&fp),
            "{model} collides with an earlier model's fingerprint"
        );
        seen.push(fp);
    }
}
