//! Fleet differential guarantees, in-process: the merged multi-shard
//! report is byte-identical to the serial single-process campaign —
//! across shard counts, with dead workers, and with poisoned units
//! properly quarantined and accounted.

use ced_core::{run_suite, SuiteControl, SuiteOptions};
use ced_fleet::{
    run_coordinator, run_worker, CoordinatorOptions, FleetDir, FleetError, LedgerAction,
    WorkerOptions, WorkerOutcome,
};
use ced_fsm::machine::Fsm;
use ced_logic::gate::CellLibrary;
use ced_runtime::{claim_by_rename, CancelToken};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn corpus() -> Vec<(String, Fsm)> {
    use ced_fsm::suite as m;
    vec![
        ("seq".to_string(), m::sequence_detector()),
        ("adder".to_string(), m::serial_adder()),
        ("traffic".to_string(), m::traffic_light()),
        ("worked".to_string(), m::worked_example()),
    ]
}

fn options() -> SuiteOptions {
    SuiteOptions {
        latencies: vec![1],
        ..SuiteOptions::default()
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ced-fleetdiff-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn fast_coordinator() -> CoordinatorOptions {
    CoordinatorOptions {
        heartbeat_timeout: Duration::from_millis(400),
        poll_interval: Duration::from_millis(10),
        backoff_base: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(50),
        ..CoordinatorOptions::default()
    }
}

fn fast_worker(id: &str) -> WorkerOptions {
    WorkerOptions {
        worker_id: id.to_string(),
        heartbeat_period: Duration::from_millis(50),
        poll_interval: Duration::from_millis(10),
        idle_timeout: Some(Duration::from_secs(30)),
        manifest_wait: Duration::from_secs(10),
    }
}

/// Runs one campaign: a coordinator thread plus `shards` worker
/// threads over `dir`, returning the coordinator's outcome.
fn run_campaign(dir: &Path, shards: usize, copts: CoordinatorOptions) -> ced_fleet::FleetOutcome {
    std::thread::scope(|scope| {
        let coordinator = scope.spawn({
            let dir = dir.to_path_buf();
            move || {
                run_coordinator(&dir, &corpus(), &options(), &copts, &CancelToken::new()).unwrap()
            }
        });
        let workers: Vec<_> = (0..shards)
            .map(|w| {
                scope.spawn({
                    let dir = dir.to_path_buf();
                    move || {
                        run_worker(
                            &dir,
                            &options(),
                            &fast_worker(&format!("w{w}")),
                            &CellLibrary::new(),
                            &CancelToken::new(),
                            None,
                        )
                        .unwrap()
                    }
                })
            })
            .collect();
        let outcome = coordinator.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }
        outcome
    })
}

#[test]
fn fleet_report_is_byte_identical_across_shard_counts() {
    let serial = run_suite(
        &corpus(),
        &options(),
        &CellLibrary::new(),
        SuiteControl::new(),
    )
    .unwrap()
    .to_json();

    for shards in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("shards{shards}"));
        let outcome = run_campaign(&dir, shards, fast_coordinator());
        assert_eq!(
            outcome.report.to_json(),
            serial,
            "{shards}-shard fleet report must be byte-identical to the serial run"
        );
        // The on-disk report file too (what CI diffs).
        let on_disk = fs::read_to_string(FleetDir::new(&dir).report()).unwrap();
        assert_eq!(on_disk, serial);
        // Every lease accounted: one terminal event per unit.
        assert_eq!(outcome.ledger.check_accounting(corpus().len()), Ok(()));
        assert_eq!(outcome.poisoned_units, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Backdates a file's mtime so the coordinator sees it as stale.
fn backdate(path: &Path) {
    let old = std::time::SystemTime::now() - Duration::from_secs(3600);
    fs::File::options()
        .write(true)
        .open(path)
        .unwrap()
        .set_times(fs::FileTimes::new().set_modified(old))
        .unwrap();
}

/// Waits for a path to exist (the coordinator publishes asynchronously).
fn wait_for(path: &Path) {
    for _ in 0..1000 {
        if path.exists() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {}", path.display());
}

#[test]
fn dead_workers_lease_expires_and_report_stays_identical() {
    let serial = run_suite(
        &corpus(),
        &options(),
        &CellLibrary::new(),
        SuiteControl::new(),
    )
    .unwrap()
    .to_json();

    let dir = tmp_dir("deadworker");
    let fleet = FleetDir::new(&dir);
    let copts = fast_coordinator();

    let outcome = std::thread::scope(|scope| {
        let coordinator = scope.spawn({
            let dir = dir.clone();
            let copts = copts.clone();
            move || {
                run_coordinator(&dir, &corpus(), &options(), &copts, &CancelToken::new()).unwrap()
            }
        });

        // A "worker" that claims unit 0 and then dies: the claim
        // happens, the heartbeat never does.
        wait_for(&fleet.pending_unit(0));
        let dead_lease = fleet.lease_unit(0, "deadbeef");
        assert!(claim_by_rename(&fleet.pending_unit(0), &dead_lease).unwrap());
        backdate(&dead_lease);

        // A live worker drains everything the dead one dropped.
        let worker = scope.spawn({
            let dir = dir.clone();
            move || {
                run_worker(
                    &dir,
                    &options(),
                    &fast_worker("w0"),
                    &CellLibrary::new(),
                    &CancelToken::new(),
                    None,
                )
                .unwrap()
            }
        });
        let outcome = coordinator.join().unwrap();
        assert!(matches!(
            worker.join().unwrap(),
            WorkerOutcome::Drained { .. }
        ));
        outcome
    });

    assert!(outcome.reassigned >= 1, "the dead lease must be expired");
    assert_eq!(outcome.poisoned_units, 0);
    assert_eq!(outcome.report.to_json(), serial);
    assert_eq!(outcome.ledger.check_accounting(corpus().len()), Ok(()));
    let expiry = outcome
        .ledger
        .events
        .iter()
        .find(|e| e.action == LedgerAction::Reassigned)
        .expect("a reassignment event");
    assert_eq!(expiry.worker, "deadbeef");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn poisonous_unit_is_quarantined_after_max_attempts() {
    let dir = tmp_dir("poison");
    let fleet = FleetDir::new(&dir);
    let copts = CoordinatorOptions {
        max_attempts: 2,
        ..fast_coordinator()
    };

    let outcome = std::thread::scope(|scope| {
        let coordinator = scope.spawn({
            let dir = dir.clone();
            let copts = copts.clone();
            move || {
                run_coordinator(&dir, &corpus(), &options(), &copts, &CancelToken::new()).unwrap()
            }
        });

        // Unit 0 kills every worker that touches it: claim it with a
        // pre-staled lease each time it reappears, max_attempts times.
        for attempt in 1..=2u64 {
            wait_for(&fleet.pending_unit(0));
            let lease = fleet.lease_unit(0, &format!("victim{attempt}"));
            // The republish can race our wait; retry until the claim
            // lands.
            while !claim_by_rename(&fleet.pending_unit(0), &lease).unwrap() {
                std::thread::sleep(Duration::from_millis(10));
            }
            backdate(&lease);
        }

        let worker = scope.spawn({
            let dir = dir.clone();
            move || {
                run_worker(
                    &dir,
                    &options(),
                    &fast_worker("w0"),
                    &CellLibrary::new(),
                    &CancelToken::new(),
                    None,
                )
                .unwrap()
            }
        });
        let outcome = coordinator.join().unwrap();
        worker.join().unwrap();
        outcome
    });

    assert_eq!(outcome.poisoned_units, 1);
    assert_eq!(outcome.report.quarantined(), 1);
    assert_eq!(outcome.report.completed(), corpus().len() - 1);
    let rec = &outcome.report.records[0];
    assert_eq!(rec.name, "seq");
    assert!(
        rec.notes.iter().any(|n| n.contains("poisonous")),
        "{:?}",
        rec.notes
    );
    // Terminal ledger event for the poisoned unit is Quarantined, and
    // accounting still balances.
    assert_eq!(
        outcome.ledger.terminal(0).unwrap().action,
        LedgerAction::Quarantined
    );
    assert_eq!(outcome.ledger.check_accounting(corpus().len()), Ok(()));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn worker_refuses_foreign_campaign_options() {
    let dir = tmp_dir("mismatch");
    // Publish a manifest directly (what a coordinator with these
    // options would write).
    let machines = corpus();
    let opts = options();
    let manifest = ced_fleet::FleetManifest {
        version: env!("CARGO_PKG_VERSION").to_string(),
        fingerprint: ced_core::suite_fingerprint(&machines, &opts),
        latencies: opts.latencies.clone(),
        units: machines
            .iter()
            .map(|(n, f)| (n.clone(), ced_fsm::kiss::to_string(f)))
            .collect(),
    };
    let fleet = FleetDir::new(&dir);
    fs::create_dir_all(fleet.root()).unwrap();
    ced_runtime::publish_envelope(
        &fleet.manifest(),
        ced_fleet::FLEET_MANIFEST_KIND,
        &manifest.to_bytes(),
        "test",
    )
    .unwrap();

    // A worker launched with different latencies must refuse.
    let mut other = options();
    other.latencies = vec![1, 2];
    let err = run_worker(
        &dir,
        &other,
        &fast_worker("w0"),
        &CellLibrary::new(),
        &CancelToken::new(),
        None,
    )
    .unwrap_err();
    assert!(
        matches!(err, FleetError::FingerprintMismatch { .. }),
        "{err}"
    );

    // A worker launched under a different fault model must refuse:
    // its records would encode a different fault automaton than the
    // campaign's.
    let mut other = options();
    other.pipeline.fault_model = ced_sim::fault::FaultModel::TransientSeu { duration: 2 };
    let err = run_worker(
        &dir,
        &other,
        &fast_worker("w0"),
        &CellLibrary::new(),
        &CancelToken::new(),
        None,
    )
    .unwrap_err();
    assert!(
        matches!(err, FleetError::FingerprintMismatch { .. }),
        "{err}"
    );

    // A manifest from another build version must refuse too.
    let forged = ced_fleet::FleetManifest {
        version: "0.0.0-other".to_string(),
        ..manifest
    };
    ced_runtime::publish_envelope(
        &fleet.manifest(),
        ced_fleet::FLEET_MANIFEST_KIND,
        &forged.to_bytes(),
        "test",
    )
    .unwrap();
    let err = run_worker(
        &dir,
        &opts,
        &fast_worker("w0"),
        &CellLibrary::new(),
        &CancelToken::new(),
        None,
    )
    .unwrap_err();
    assert!(matches!(err, FleetError::VersionMismatch { .. }), "{err}");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn coordinator_refuses_directory_of_a_different_campaign() {
    let dir = tmp_dir("foreigndir");
    // Campaign A completes.
    let outcome = run_campaign(&dir, 2, fast_coordinator());
    assert_eq!(outcome.report.completed(), corpus().len());
    // Campaign B (different latencies) over the same directory: the
    // manifest fingerprint disagrees, so the coordinator refuses
    // rather than merging records produced under different options.
    let mut other = options();
    other.latencies = vec![1, 2];
    let err = run_coordinator(
        &dir,
        &corpus(),
        &other,
        &fast_coordinator(),
        &CancelToken::new(),
    )
    .unwrap_err();
    assert!(
        matches!(err, FleetError::FingerprintMismatch { .. }),
        "{err}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crashed_coordinator_resumes_over_finished_units() {
    let serial = run_suite(
        &corpus(),
        &options(),
        &CellLibrary::new(),
        SuiteControl::new(),
    )
    .unwrap()
    .to_json();

    let dir = tmp_dir("resume");
    // First campaign run completes normally.
    let first = run_campaign(&dir, 2, fast_coordinator());
    assert_eq!(first.report.to_json(), serial);
    // A coordinator restarted over the finished directory (as after a
    // crash between merge and exit) re-merges without re-running
    // anything: no workers exist, yet it returns immediately with the
    // identical report.
    let again = run_coordinator(
        &dir,
        &corpus(),
        &options(),
        &fast_coordinator(),
        &CancelToken::new(),
    )
    .unwrap();
    assert_eq!(again.report.to_json(), serial);
    assert_eq!(again.ledger.check_accounting(corpus().len()), Ok(()));
    fs::remove_dir_all(&dir).unwrap();
}
