//! Round-trip guarantees for the `ced gen` scaling workload: the
//! generated machine serializes to KISS2 and parses back identically
//! (guarding the `.states` directive handling), the text is a fixed
//! point of serialize∘parse, and generation is a pure function of
//! (scale, seed) — the properties the differential CI leg relies on
//! when it regenerates the corpus at each job count.

use ced_fsm::generator::{generate, scaled_workload};
use ced_fsm::kiss;

#[test]
fn generated_kiss2_parses_back_to_the_same_machine() {
    for (scale, seed) in [(1usize, 0u64), (2, 7), (4, 42)] {
        let fsm = generate(&scaled_workload(scale, seed));
        let text = kiss::to_string(&fsm);
        let back = kiss::parse(&text)
            .unwrap_or_else(|e| panic!("scale {scale} seed {seed}: reparse failed: {e}"));
        assert_eq!(back.num_states(), fsm.num_states(), "scale {scale}");
        assert_eq!(back.num_inputs(), fsm.num_inputs(), "scale {scale}");
        assert_eq!(back.num_outputs(), fsm.num_outputs(), "scale {scale}");
        // The text is a fixed point: serialize(parse(serialize(m))) ==
        // serialize(m), byte for byte — so downstream tools see one
        // canonical artifact no matter how many trips it took.
        assert_eq!(kiss::to_string(&back), text, "scale {scale} seed {seed}");
        assert!(back.check_complete().is_ok(), "scale {scale}");
        assert!(back.check_deterministic().is_ok(), "scale {scale}");
    }
}

#[test]
fn generation_is_byte_stable_in_scale_and_seed() {
    let a = kiss::to_string(&generate(&scaled_workload(3, 11)));
    let b = kiss::to_string(&generate(&scaled_workload(3, 11)));
    assert_eq!(a, b, "equal (scale, seed) must give equal bytes");
    let c = kiss::to_string(&generate(&scaled_workload(3, 12)));
    assert_ne!(a, c, "the seed must matter");
    let d = kiss::to_string(&generate(&scaled_workload(4, 11)));
    assert_ne!(a, d, "the scale must matter");
}

#[test]
fn state_count_override_shape_matches_preset() {
    // `ced gen --states N` rebuilds the pool clamp the preset would
    // have chosen at that size; mirror that arithmetic here so the CLI
    // and library agree on the workload family.
    let preset = scaled_workload(2, 3);
    assert_eq!(preset.num_states, 30);
    assert_eq!(preset.output_pool, (30usize / 3).clamp(2, 8));
    assert_eq!(preset.num_inputs, 1);
    assert_eq!(preset.num_outputs, 3);
}
