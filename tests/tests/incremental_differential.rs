//! Incremental ≡ from-scratch differential suite. The pinned
//! invariant of the edit→re-diagnose loop: a baseline-seeded analysis
//! of an edited machine is **byte-identical** to analyzing the edited
//! machine from scratch — across solver engines, fault models, job
//! counts and store temperature. The baseline only changes wall-clock
//! (per-fault-cone fragments promoted from the previous revision) and
//! the stderr summary; never a payload byte.
//!
//! Also pinned here: structural edits fall back to the whole-stage
//! path (still byte-identical), fragment promotion observably reuses
//! the baseline's work, and a *validly-encoded but wrong* fragment —
//! the strongest poisoning the content-addressed layer cannot catch by
//! checksum — trips the composition digest, degrades to a monolithic
//! rebuild, and still yields the exact from-scratch payload.

use ced_core::pipeline::PipelineOptions;
use ced_core::SolverEngine;
use ced_fsm::machine::{Fsm, OutputValue};
use ced_fsm::suite as bench;
use ced_par::ParExec;
use ced_runtime::Budget;
use ced_serve::ops::check_text_with_baseline;
use ced_serve::{DeltaSummary, OpKind, OpRequest};
use ced_sim::fault::FaultModel;
use ced_store::{StageCounters, Store, TENSOR_FRAG_STAGE};
use std::path::PathBuf;

const MACHINES: [&str; 3] = ["s27", "tav", "dk512"];
const LATENCY: usize = 2;

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("ced-incr-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic splitmix64 — the suite must pick the same "random"
/// edits on every run and platform.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Rebuilds `fsm` with transition `t_idx`'s output bit `bit` set to
/// `v` — the single-edit class of the paper's design loop.
fn with_output_edit(fsm: &Fsm, t_idx: usize, bit: usize, v: OutputValue) -> Fsm {
    let mut out = Fsm::new(fsm.name(), fsm.num_inputs(), fsm.num_outputs());
    for s in fsm.state_names() {
        out.add_state(s.clone());
    }
    out.set_reset_state(fsm.reset_state()).unwrap();
    for (i, t) in fsm.transitions().iter().enumerate() {
        let mut output = t.output.clone();
        if i == t_idx {
            output[bit] = v;
        }
        out.add_transition(t.input.clone(), t.from, t.to, output)
            .unwrap();
    }
    out
}

/// A random single-output-bit flip (don't-cares harden to 1).
fn random_output_edit(fsm: &Fsm, rng: &mut Lcg) -> Fsm {
    let t_idx = rng.below(fsm.transitions().len());
    let bit = rng.below(fsm.num_outputs());
    let v = match fsm.transitions()[t_idx].output[bit] {
        OutputValue::Zero | OutputValue::DontCare => OutputValue::One,
        OutputValue::One => OutputValue::Zero,
    };
    with_output_edit(fsm, t_idx, bit, v)
}

/// Rebuilds `fsm` with one transition retargeted to another state — a
/// structural edit the delta front-end must refuse to seed.
fn with_retargeted_transition(fsm: &Fsm, t_idx: usize) -> Fsm {
    let mut out = Fsm::new(fsm.name(), fsm.num_inputs(), fsm.num_outputs());
    for s in fsm.state_names() {
        out.add_state(s.clone());
    }
    out.set_reset_state(fsm.reset_state()).unwrap();
    for (i, t) in fsm.transitions().iter().enumerate() {
        let mut to = t.to;
        if i == t_idx {
            to = ced_fsm::machine::StateId((t.to.0 + 1) % fsm.num_states() as u32);
        }
        out.add_transition(t.input.clone(), t.from, to, t.output.clone())
            .unwrap();
    }
    out
}

fn request(engine: SolverEngine, model: FaultModel) -> OpRequest {
    let mut request = OpRequest::new(OpKind::Check, "");
    request.latency = LATENCY;
    request.options = PipelineOptions::paper_defaults();
    request.options.ced.engine = engine;
    request.options.fault_model = model;
    request
}

/// One analysis as the CLI/daemon runs it; returns (payload, summary).
fn analyze(
    fsm: &Fsm,
    baseline: Option<&Fsm>,
    request: &OpRequest,
    jobs: usize,
    store: Option<&Store>,
) -> (String, Option<DeltaSummary>) {
    let pool = ParExec::new(jobs);
    check_text_with_baseline(fsm, baseline, request, &Budget::new(), &pool, store)
        .expect("analysis completes")
}

fn frag_counters(store: &Store) -> StageCounters {
    store
        .stats()
        .stages
        .into_iter()
        .find(|(s, _)| s == TENSOR_FRAG_STAGE)
        .map(|(_, c)| c)
        .unwrap_or_default()
}

/// The tentpole differential: for every paper machine and every
/// (engine × fault-model) cell, a random single-output-bit edit
/// analyzed incrementally — warm store seeded by the baseline's own
/// run, and cold store with nothing to promote — matches the
/// from-scratch storeless payload byte-for-byte, at 1 and 4 jobs.
#[test]
fn incremental_matches_from_scratch_across_engines_models_jobs_and_temperature() {
    let configs: [(&str, SolverEngine, FaultModel); 4] = [
        (
            "sparse-perm",
            SolverEngine::Sparse,
            FaultModel::PermanentStuckAt,
        ),
        (
            "dense-perm",
            SolverEngine::Dense,
            FaultModel::PermanentStuckAt,
        ),
        (
            "sparse-trans",
            SolverEngine::Sparse,
            FaultModel::TransientSeu { duration: 4 },
        ),
        (
            "dense-trans",
            SolverEngine::Dense,
            FaultModel::TransientSeu { duration: 4 },
        ),
    ];
    let mut rng = Lcg(0xCED5);
    for name in MACHINES {
        let base = scaled(name);
        for (tag, engine, model) in configs {
            let edited = random_output_edit(&base, &mut rng);
            let request = request(engine, model);
            let what = format!("{name}/{tag}");

            // From-scratch reference: no store, no baseline.
            let (reference, none) = analyze(&edited, None, &request, 1, None);
            assert!(none.is_none(), "{what}: no baseline, no summary");

            // Warm incremental: the baseline's own run fills the
            // store, then the edited machine analyzes against it.
            let scratch = ScratchDir::new(&format!("warm-{name}-{tag}"));
            let store = Store::open(&scratch.0).expect("store opens");
            let _ = analyze(&base, None, &request, 1, Some(&store));
            for jobs in [1, 4] {
                let (warm, summary) = analyze(&edited, Some(&base), &request, jobs, Some(&store));
                assert_eq!(
                    warm, reference,
                    "{what}: warm incremental (jobs {jobs}) vs from-scratch"
                );
                let summary = summary.expect("baseline produces a summary");
                assert!(summary.cones_total > 0, "{what}: cones counted");
            }

            // Cold incremental: a baseline but an empty store —
            // nothing to promote, still byte-identical.
            let scratch = ScratchDir::new(&format!("cold-{name}-{tag}"));
            let store = Store::open(&scratch.0).expect("store opens");
            let (cold, _) = analyze(&edited, Some(&base), &request, 4, Some(&store));
            assert_eq!(cold, reference, "{what}: cold incremental vs from-scratch");
        }
    }
}

/// Structural edits (a retargeted transition) must refuse the
/// promotion seed and fall back to the whole-stage path — and the
/// fallback must still be byte-identical to from-scratch.
#[test]
fn structural_edits_fall_back_whole_stage_and_stay_identical() {
    let base = scaled("tav");
    let mut rng = Lcg(0xBEEF);
    let edited = with_retargeted_transition(&base, rng.below(base.transitions().len()));
    let request = request(SolverEngine::Sparse, FaultModel::PermanentStuckAt);

    let (reference, _) = analyze(&edited, None, &request, 1, None);

    let scratch = ScratchDir::new("structural");
    let store = Store::open(&scratch.0).expect("store opens");
    let _ = analyze(&base, None, &request, 1, Some(&store));
    let (incremental, summary) = analyze(&edited, Some(&base), &request, 1, Some(&store));
    assert_eq!(incremental, reference, "structural fallback differential");
    let summary = summary.expect("summary present");
    assert!(
        !summary.seeded,
        "a next-state edit must not seed cross-machine promotion"
    );
    assert_eq!(summary.changed_codes, 0, "no seed, no changed-code count");
}

/// Fragment promotion must observably reuse the baseline's fragments:
/// after a warm baseline run, the incremental analysis of an
/// output-edited machine hits the fragment stage at least once per
/// structurally clean cone it reports.
#[test]
fn promotion_observably_reuses_baseline_fragments() {
    let base = scaled("s27");
    let edited = random_output_edit(&base, &mut Lcg(7));
    let request = request(SolverEngine::Sparse, FaultModel::PermanentStuckAt);

    let scratch = ScratchDir::new("promote");
    let store = Store::open(&scratch.0).expect("store opens");
    let _ = analyze(&base, None, &request, 1, Some(&store));
    let before = frag_counters(&store);
    let (_, summary) = analyze(&edited, Some(&base), &request, 1, Some(&store));
    let after = frag_counters(&store);
    let summary = summary.expect("summary present");

    assert!(summary.seeded, "output-only edit must seed promotion");
    let clean = summary.cones_total - summary.cones_dirty;
    assert!(clean > 0, "an s27-sized edit leaves clean cones");
    assert!(
        after.hits - before.hits >= clean as u64,
        "every structurally clean cone must at least probe its \
         baseline fragment (hits {} -> {}, clean {clean})",
        before.hits,
        after.hits
    );
}

/// The strongest poisoning the checksum layer cannot catch: replace
/// one fragment with a *different, validly encoded* fragment (another
/// key's payload), silently dropping the replaced fault's rows from
/// the reassembly. The composition digest must refuse it, mark the
/// absorbed fragments corrupt, rebuild monolithically, and produce
/// the exact from-scratch payload.
#[test]
fn poisoned_valid_fragment_trips_composition_and_degrades_to_rebuild() {
    let base = scaled("s27");
    let request = request(SolverEngine::Sparse, FaultModel::PermanentStuckAt);
    let (reference, _) = analyze(&base, None, &request, 1, None);

    let scratch = ScratchDir::new("poison");
    let store = Store::open(&scratch.0).expect("store opens");
    let _ = analyze(&base, None, &request, 1, Some(&store));

    // Find two fragments with different payloads and overwrite one
    // with the other's bytes — the victim still decodes fine but its
    // fault's rows silently vanish from the reassembly.
    let frags: Vec<(u64, Vec<u8>)> = store
        .entries()
        .into_iter()
        .filter(|e| e.stage == TENSOR_FRAG_STAGE)
        .filter_map(|e| {
            store
                .get_artifact(TENSOR_FRAG_STAGE, e.fingerprint)
                .map(|bytes| (e.fingerprint, bytes))
        })
        .collect();
    let (donor, victim) = {
        let mut pair = None;
        'outer: for i in 0..frags.len() {
            for j in i + 1..frags.len() {
                if frags[i].1 != frags[j].1 {
                    pair = Some((i, j));
                    break 'outer;
                }
            }
        }
        pair.expect("two distinct fragments exist")
    };
    store.note_corrupt(TENSOR_FRAG_STAGE, frags[victim].0);
    let corrupt_baseline = frag_counters(&store).corrupt;
    assert!(
        store.put_artifact(TENSOR_FRAG_STAGE, frags[victim].0, &frags[donor].1),
        "poisoned fragment stored"
    );

    // Identical machine as its own baseline: the delta seed forces
    // the fragment path (no whole-table shortcut), so the poisoned
    // fragments are actually read.
    let (rebuilt, summary) = analyze(&base, Some(&base), &request, 1, Some(&store));
    assert_eq!(
        rebuilt, reference,
        "poisoned fragments must degrade to a byte-identical rebuild"
    );
    assert!(summary.expect("summary present").seeded);
    assert!(
        frag_counters(&store).corrupt > corrupt_baseline,
        "the composition mismatch must mark the absorbed fragments corrupt"
    );
}
