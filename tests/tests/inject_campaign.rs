//! The campaign acceptance criterion: on suite machines, a cover
//! verified under hardware semantics must yield a campaign in which
//! every injected detectable stuck-at fault is caught by the
//! *synthesized checker netlist* within the latency bound, with zero
//! disagreements against the detectability tensor `V(i,j,k)`.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_core::synthesize_ced;
use ced_fsm::suite;
use ced_inject::{run_campaign, CampaignOptions, CheckerFaultClass};
use ced_sim::detect::{DetectOptions, DetectabilityTable, InputModel, Semantics};

fn campaign_on(fsm: &ced_fsm::Fsm, latencies: &[usize]) {
    let options = PipelineOptions::paper_defaults();
    let circuit = synthesize_circuit(fsm, &options).expect("synthesizes");
    let faults = fault_list(&circuit, &options);
    for &p in latencies {
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                semantics: Semantics::FaultyTrajectory,
                input_model: InputModel::Exhaustive,
                ..DetectOptions::default()
            },
        )
        .expect("table fits");
        let outcome = minimize_parity_functions(&table, &CedOptions::default());
        assert!(table.all_covered(&outcome.cover.masks));
        let ced = synthesize_ced(&circuit, &outcome.cover, p, &options.minimize);
        let report =
            run_campaign(&circuit, &ced, &faults, &CampaignOptions::default()).expect("runs");

        // Zero disagreements vs V(i,j,k)…
        assert!(
            report.is_clean(),
            "{} p={p}: {}",
            fsm.name(),
            report.render()
        );
        // …and 100% of the detectable (covered, activated) faults
        // caught within the bound.
        assert_eq!(
            report.machine.detected_within_bound,
            report.machine.detectable,
            "{} p={p}: {}",
            fsm.name(),
            report.render()
        );
        assert!(report.machine.detectable > 0, "campaign saw no activity");
        assert_eq!(report.detection_rate(), 1.0);
        // A cover verified against the full table leaves nothing
        // uncovered, so no escapes are "expected".
        assert_eq!(report.machine.expected_escapes, 0);
        // Every observed latency respects the bound.
        for (l, &count) in report.machine.latency_histogram.iter().enumerate() {
            if count > 0 {
                assert!((1..=p).contains(&l));
            }
        }

        // The checker self-audit ran and classified every fault.
        let checker = report.checker.as_ref().expect("audit requested");
        assert_eq!(
            checker.injected,
            checker.false_alarms + checker.self_masking + checker.benign
        );
        // The ERROR output stuck-at-0 is the canonical dormant fault;
        // the audit must catch it.
        let error_net = ced.netlist().outputs()[0];
        assert!(
            checker.classes.iter().any(|(f, cl)| f.net == error_net
                && !f.stuck_at
                && *cl == CheckerFaultClass::SelfMasking),
            "{} p={p}: ERROR/sa0 not classified as self-masking",
            fsm.name()
        );
    }
}

#[test]
fn campaign_clean_on_sequence_detector() {
    campaign_on(&suite::sequence_detector(), &[1, 2]);
}

#[test]
fn campaign_clean_on_serial_adder() {
    campaign_on(&suite::serial_adder(), &[1, 2]);
}

#[test]
fn campaign_clean_on_traffic_light() {
    campaign_on(&suite::traffic_light(), &[1, 2]);
}

#[test]
fn degraded_greedy_cover_still_passes_the_campaign() {
    // The two tentpole halves meet: force the solver ladder down to the
    // greedy rung (rounding disabled), then demand the resulting
    // checker still survives the full cross-validating campaign.
    let fsm = suite::sequence_detector();
    let options = PipelineOptions::paper_defaults();
    let circuit = synthesize_circuit(&fsm, &options).expect("synthesizes");
    let faults = fault_list(&circuit, &options);
    let (table, _) = DetectabilityTable::build(
        &circuit,
        &faults,
        &DetectOptions {
            latency: 1,
            semantics: Semantics::FaultyTrajectory,
            input_model: InputModel::Exhaustive,
            ..DetectOptions::default()
        },
    )
    .expect("table fits");
    let outcome = minimize_parity_functions(
        &table,
        &CedOptions {
            iterations: 0,
            ..CedOptions::default()
        },
    );
    assert!(
        !outcome.degradation.is_empty(),
        "rounding was disabled; the ladder must have degraded"
    );
    let ced = synthesize_ced(&circuit, &outcome.cover, 1, &options.minimize);
    let report = run_campaign(&circuit, &ced, &faults, &CampaignOptions::default()).expect("runs");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(
        report.machine.detected_within_bound,
        report.machine.detectable
    );
}
