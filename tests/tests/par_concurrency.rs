//! Concurrency semantics of the runtime layer under the worker pool:
//! cooperative cancellation stops every worker and surfaces the hard
//! typed error (never a partial `Ok`), budget exhaustion drains the
//! pool into the same resumable checkpoints as the serial path, and a
//! worker panic quarantines exactly its own machine — no poisoning of
//! siblings, no disturbance of the merged record order.

use ced_core::{run_suite, MachineStatus, SuiteControl, SuiteError, SuiteOptions};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::{Budget, CancelToken, InterruptKind};

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

fn normalize_jobs(json: &str) -> String {
    let Some(start) = json.find("\"jobs\":") else {
        return json.to_string();
    };
    let digits = start + "\"jobs\":".len();
    let end = json[digits..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |i| digits + i);
    format!("{}\"jobs\":0{}", &json[..start], &json[end..])
}

/// Cancelling mid-campaign under a four-worker pool returns the hard
/// `Interrupted` error — never a partial `Ok` — and the outcomes it
/// carries are a clean index-prefix of the uninterrupted campaign.
#[test]
fn cancel_mid_campaign_stops_all_workers_with_the_hard_error() {
    use ced_core::ip::ParityCover;
    use ced_core::synthesize_ced;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_inject::{run_campaign_pooled, CampaignError, CampaignOptions};
    use ced_sim::fault::collapsed_faults;

    let fsm = bench::sequence_detector();
    let enc = assign(&fsm, EncodingStrategy::Natural);
    let circuit = EncodedFsm::new(fsm, enc)
        .expect("well-formed")
        .synthesize(&ced_logic::MinimizeOptions::default());
    let cover = ParityCover::singletons(circuit.total_bits());
    let ced = synthesize_ced(&circuit, &cover, 1, &ced_logic::MinimizeOptions::default());
    let faults = collapsed_faults(circuit.netlist());
    assert!(faults.len() > 4, "campaign too small to interrupt");

    let clean = run_campaign_pooled(
        &circuit,
        &ced,
        &faults,
        &CampaignOptions::default(),
        &Budget::unlimited(),
        &ParExec::new(4),
    )
    .expect("uninterrupted campaign completes");

    // Fire the token from the budget observer a few faults in: every
    // worker sees it at its next fault boundary and the pool drains.
    let token = CancelToken::new();
    let trigger = token.clone();
    let budget = Budget::new()
        .with_cancel(token)
        .with_observer(1, move |done, _| {
            if done >= 3 {
                trigger.cancel();
            }
        });
    let err = run_campaign_pooled(
        &circuit,
        &ced,
        &faults,
        &CampaignOptions::default(),
        &budget,
        &ParExec::new(4),
    )
    .expect_err("a cancelled campaign must not return Ok");
    match err {
        CampaignError::Interrupted {
            interrupted,
            partial,
        } => {
            assert_eq!(interrupted.kind, InterruptKind::Cancelled);
            assert!(
                partial.injected < faults.len(),
                "cancellation must cut the campaign short"
            );
            assert_eq!(partial.injected, partial.outcomes.len());
            // The partial is the serial campaign's prefix: ordered
            // merge + lowest-index interrupt, regardless of which
            // worker saw the token first.
            assert_eq!(
                partial.outcomes[..],
                clean.machine.outcomes[..partial.outcomes.len()]
            );
        }
        other => panic!("expected Interrupted, got {other}"),
    }
}

/// Cancelling a pooled suite mid-campaign leaves a resumable
/// checkpoint; the resumed (pooled) report is byte-identical to an
/// uninterrupted pooled run, which is itself identical to the serial
/// path modulo the `jobs` header token.
#[test]
fn cancelled_pooled_suite_resumes_byte_identical() {
    let machines: Vec<(String, Fsm)> = ["s27", "tav", "dk512"]
        .iter()
        .map(|&n| (n.to_string(), scaled(n)))
        .collect();
    let options = SuiteOptions {
        latencies: vec![1],
        ..SuiteOptions::default()
    };
    let lib = CellLibrary::new();
    let pool = ParExec::new(1);

    let mut control = SuiteControl::new();
    control.pool = Some(&pool);
    let uninterrupted =
        run_suite(&machines, &options, &lib, control).expect("clean pooled run completes");

    // Cancel as soon as the first machine's checkpoint lands.
    let control = SuiteControl::new();
    let cancel = control.cancel.clone();
    let mut control = control;
    control.pool = Some(&pool);
    let mut saved = None;
    let mut sink = |c: &ced_core::SuiteCheckpoint| {
        if saved.is_none() {
            saved = Some(c.clone());
        }
        cancel.cancel();
    };
    control.on_checkpoint = Some(&mut sink);
    let err = run_suite(&machines, &options, &lib, control).unwrap_err();
    let SuiteError::Interrupted(i) = err else {
        panic!("cancelled pooled suite must interrupt");
    };
    assert_eq!(i.interrupted.kind, InterruptKind::Cancelled);
    assert!(
        i.checkpoint.machines_done() >= 1 && i.checkpoint.machines_done() < machines.len(),
        "cancellation must stop the campaign partway ({} done)",
        i.checkpoint.machines_done()
    );
    assert_eq!(i.partial.records.len(), i.checkpoint.machines_done());

    let mut control = SuiteControl::new();
    control.pool = Some(&pool);
    control.resume = Some(saved.expect("checkpoint sink fired"));
    let resumed = run_suite(&machines, &options, &lib, control).expect("resumed run completes");
    assert_eq!(
        resumed.to_json(),
        uninterrupted.to_json(),
        "resumed pooled report must be byte-identical"
    );

    // And the pooled campaign as a whole matches the serial path.
    let serial = run_suite(&machines, &options, &lib, SuiteControl::new()).expect("serial run");
    assert_eq!(
        normalize_jobs(&serial.to_json()),
        normalize_jobs(&resumed.to_json())
    );
}

/// Budget exhaustion mid-suite under the pool degrades and
/// quarantines exactly as the serial path: the pool drains, nothing
/// hangs, and the report matches serial byte-for-byte (modulo the
/// `jobs` token).
#[test]
fn budget_exhaustion_under_the_pool_matches_the_serial_path() {
    let machines: Vec<(String, Fsm)> = vec![
        ("s27".to_string(), scaled("s27")),
        ("tav".to_string(), scaled("tav")),
    ];
    let mut options = SuiteOptions {
        latencies: vec![1],
        machine_ticks: Some(1),
        ..SuiteOptions::default()
    };
    options.pipeline.input_granularity = ced_core::pipeline::InputGranularity::Exhaustive;
    options.pipeline.full_fault_list = true;
    let lib = CellLibrary::new();

    let serial = run_suite(&machines, &options, &lib, SuiteControl::new())
        .expect("budget exhaustion must not abort the serial suite");
    assert_eq!(serial.quarantined(), machines.len());

    let pool = ParExec::new(4);
    let mut control = SuiteControl::new();
    control.pool = Some(&pool);
    let pooled = run_suite(&machines, &options, &lib, control)
        .expect("budget exhaustion must not abort the pooled suite");
    assert_eq!(
        normalize_jobs(&serial.to_json()),
        normalize_jobs(&pooled.to_json())
    );
}

/// A tick-cap interrupt during a pooled tensor build yields a
/// resumable checkpoint whose resumed output is byte-identical to an
/// uninterrupted build.
#[test]
fn pooled_build_interrupt_resumes_byte_identical() {
    use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
    use ced_sim::detect::{BuildControl, DetectError, DetectOptions, DetectabilityTable};

    let options = PipelineOptions::paper_defaults();
    let circuit = synthesize_circuit(&scaled("dk512"), &options).expect("synthesizable");
    let faults = fault_list(&circuit, &options);
    let detect = DetectOptions::default();
    let pool = ParExec::new(4);

    let clean = DetectabilityTable::build_many(&circuit, &faults, &detect, &[1]).expect("fits");

    let tight = Budget::new().with_tick_cap(10);
    let err = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &detect,
        &[1],
        BuildControl {
            pool: Some(&pool),
            ..BuildControl::new(&tight)
        },
    )
    .expect_err("a 10-tick budget cannot finish the build");
    let DetectError::Interrupted {
        interrupted,
        checkpoint,
    } = err
    else {
        panic!("tick exhaustion must surface as a typed interrupt");
    };
    assert_eq!(interrupted.kind, InterruptKind::TickCapExceeded);
    assert!(interrupted.resumable);
    let checkpoint = *checkpoint.expect("pooled build interrupts leave a resumable checkpoint");

    let unlimited = Budget::unlimited();
    let resumed = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &detect,
        &[1],
        BuildControl {
            pool: Some(&pool),
            resume: Some(checkpoint),
            ..BuildControl::new(&unlimited)
        },
    )
    .expect("resume with an unlimited budget completes");
    assert_eq!(resumed, clean);
}

/// A machine whose worker panics inside the pool is quarantined in
/// place: siblings finish untouched, the merged record order matches
/// the input order, and the report equals the serial path's.
#[test]
fn worker_panic_quarantines_in_place_without_poisoning_siblings() {
    // 1 state bit + 64 outputs = 65 monitored bits: transition-table
    // extraction asserts "response exceeds 64 bits" and panics inside
    // the worker, after synthesis has already succeeded.
    let panicker = generate(&GeneratorConfig {
        name: "too-wide".into(),
        num_inputs: 1,
        num_states: 2,
        num_outputs: 64,
        cubes_per_state: 2,
        self_loop_bias: 0.3,
        output_dc_prob: 0.0,
        output_pool: 2,
        seed: 7,
    });
    let machines: Vec<(String, Fsm)> = vec![
        ("s27".to_string(), scaled("s27")),
        ("too-wide".to_string(), panicker),
        ("tav".to_string(), scaled("tav")),
    ];
    let options = SuiteOptions {
        latencies: vec![1],
        ..SuiteOptions::default()
    };
    let lib = CellLibrary::new();

    let serial = run_suite(&machines, &options, &lib, SuiteControl::new())
        .expect("a panicking machine must not abort the serial suite");

    for jobs in [1, 4] {
        let pool = ParExec::new(jobs);
        let mut control = SuiteControl::new();
        control.pool = Some(&pool);
        let report = run_suite(&machines, &options, &lib, control)
            .expect("a panicking worker must not abort the pooled suite");

        let names: Vec<&str> = report.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["s27", "too-wide", "tav"], "jobs={jobs}");
        assert_eq!(report.records[0].status, MachineStatus::Completed);
        assert_eq!(report.records[1].status, MachineStatus::Quarantined);
        assert_eq!(report.records[2].status, MachineStatus::Completed);
        assert!(
            report.records[1]
                .notes
                .iter()
                .any(|n| n.contains("panick") || n.contains("exceeds 64 bits")),
            "jobs={jobs}: quarantine notes must carry the panic: {:?}",
            report.records[1].notes
        );
        assert_eq!(
            normalize_jobs(&report.to_json()),
            normalize_jobs(&serial.to_json()),
            "jobs={jobs}: pooled report must equal the serial path"
        );
    }
}
