//! Parallel ≡ serial differential suite: every artifact the pipeline
//! emits — detectability tensors, `ced-suite-report/1` documents,
//! `ced-cert-report/1` documents — must be byte-identical whether it
//! was produced by the strictly serial code path (`pool: None`), a
//! one-worker pool (`--jobs 1`) or a four-worker pool (`--jobs 4`).
//! The `jobs` header field of the suite report is the one token that
//! legitimately varies; comparisons normalize exactly that token and
//! nothing else.

use ced_core::pipeline::{fault_list, run_circuit, synthesize_circuit, PipelineOptions};
use ced_core::{run_suite, SuiteControl, SuiteOptions};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::Budget;
use ced_sim::detect::{BuildControl, DetectOptions, DetectabilityTable};

const MACHINES: [&str; 3] = ["s27", "tav", "dk512"];
const LATENCIES: [usize; 2] = [1, 2];

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

/// Replaces the `"jobs":N` header token (the only part of a suite
/// report that records the worker count) with a fixed value.
fn normalize_jobs(json: &str) -> String {
    let Some(start) = json.find("\"jobs\":") else {
        return json.to_string();
    };
    let digits = start + "\"jobs\":".len();
    let end = json[digits..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |i| digits + i);
    format!("{}\"jobs\":0{}", &json[..start], &json[end..])
}

#[test]
fn jobs_token_is_the_only_thing_normalized() {
    assert_eq!(
        normalize_jobs("{\"schema\":\"x\",\"jobs\":42,\"certified\":false}"),
        "{\"schema\":\"x\",\"jobs\":0,\"certified\":false}"
    );
    assert_eq!(normalize_jobs("{\"no\":1}"), "{\"no\":1}");
}

/// Tensor construction: serial path, one worker and four workers all
/// produce bit-identical tables and stats for every machine at every
/// latency bound.
#[test]
fn tensor_bytes_identical_across_job_counts() {
    let options = PipelineOptions::paper_defaults();
    for name in MACHINES {
        let fsm = scaled(name);
        let circuit = synthesize_circuit(&fsm, &options).expect("synthesizable");
        let faults = fault_list(&circuit, &options);
        for p in LATENCIES {
            let build = |pool: Option<&ParExec>| {
                let budget = Budget::unlimited();
                let results = DetectabilityTable::build_many_controlled(
                    &circuit,
                    &faults,
                    &DetectOptions {
                        latency: p,
                        ..DetectOptions::default()
                    },
                    &[p],
                    BuildControl {
                        pool,
                        ..BuildControl::new(&budget)
                    },
                )
                .expect("within row cap");
                results
                    .iter()
                    .flat_map(|(t, s)| {
                        let mut b = t.to_bytes();
                        b.extend_from_slice(format!("{s:?}").as_bytes());
                        b
                    })
                    .collect::<Vec<u8>>()
            };
            let serial = build(None);
            let one = build(Some(&ParExec::new(1)));
            let four = build(Some(&ParExec::new(4)));
            assert_eq!(serial, one, "{name} p={p}: serial vs --jobs 1");
            assert_eq!(serial, four, "{name} p={p}: serial vs --jobs 4");
        }
    }
}

/// The full suite campaign renders the same `ced-suite-report/1`
/// document from the serial machine loop and from pools of one and
/// four workers (modulo the `jobs` header token).
#[test]
fn suite_report_identical_across_job_counts() {
    let machines: Vec<(String, Fsm)> = MACHINES
        .iter()
        .map(|&name| (name.to_string(), scaled(name)))
        .collect();
    let options = SuiteOptions {
        latencies: LATENCIES.to_vec(),
        ..SuiteOptions::default()
    };
    let lib = CellLibrary::new();

    let run = |pool: Option<&ParExec>| {
        let mut control = SuiteControl::new();
        control.pool = pool;
        normalize_jobs(
            &run_suite(&machines, &options, &lib, control)
                .expect("suite completes")
                .to_json(),
        )
    };
    let serial = run(None);
    let one = run(Some(&ParExec::new(1)));
    let four = run(Some(&ParExec::new(4)));
    assert!(serial.contains("\"schema\":\"ced-suite-report/1\""));
    assert_eq!(serial, one, "serial vs --jobs 1");
    assert_eq!(serial, four, "serial vs --jobs 4");
}

/// Certification re-proves the same claims to the same
/// `ced-cert-report/1` bytes no matter how many workers verify them —
/// the cert report carries no job count at all.
#[test]
fn cert_report_identical_across_job_counts() {
    let options = PipelineOptions::paper_defaults();
    let lib = CellLibrary::new();
    for name in MACHINES {
        let fsm = scaled(name);
        let report = run_circuit(&fsm, &LATENCIES, &options, &lib).expect("pipeline");
        let certify = |pool: &ParExec| {
            let cert = ced_cert::certify_report_pooled(
                &fsm,
                &report,
                &options,
                &ced_cert::CertifyOptions::default(),
                &Budget::unlimited(),
                pool,
            )
            .expect("certification ran");
            ced_cert::report::cert_report_json(&[cert]).render()
        };
        let serial = ced_cert::certify_report(
            &fsm,
            &report,
            &options,
            &ced_cert::CertifyOptions::default(),
            &Budget::unlimited(),
        )
        .expect("certification ran");
        let serial = ced_cert::report::cert_report_json(&[serial]).render();
        assert!(serial.contains("\"schema\":\"ced-cert-report/1\""));
        assert_eq!(serial, certify(&ParExec::new(1)), "{name}: vs --jobs 1");
        assert_eq!(serial, certify(&ParExec::new(4)), "{name}: vs --jobs 4");
    }
}
