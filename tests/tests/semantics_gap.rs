//! E5: the lockstep (paper) vs faulty-trajectory (hardware) semantics
//! genuinely diverge at p ≥ 2 — a cover verified against the lockstep
//! detectability table can leave hardware-observable erroneous cases
//! uncovered. This test *finds* a witness machine (deterministically)
//! and asserts the gap, plus the complementary sanity facts.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};

fn machine(seed: u64) -> ced_fsm::Fsm {
    generate(&GeneratorConfig {
        name: format!("gap{seed}"),
        num_inputs: 2,
        num_states: 8,
        num_outputs: 3,
        cubes_per_state: 4,
        self_loop_bias: 0.1,
        output_dc_prob: 0.05,
        output_pool: 3,
        seed,
    })
}

fn tables_for(fsm: &ced_fsm::Fsm, p: usize) -> (DetectabilityTable, DetectabilityTable) {
    let options = PipelineOptions::paper_defaults();
    let circuit = synthesize_circuit(fsm, &options).expect("synthesizes");
    let faults = fault_list(&circuit, &options);
    let build = |semantics| {
        DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                semantics,
                ..DetectOptions::default()
            },
        )
        .expect("fits")
        .0
    };
    (
        build(Semantics::Lockstep),
        build(Semantics::FaultyTrajectory),
    )
}

#[test]
fn lockstep_cover_can_miss_hardware_cases_at_p2() {
    let mut witness = None;
    for seed in 0..30u64 {
        let fsm = machine(seed);
        let (lockstep, hardware) = tables_for(&fsm, 2);
        let cover = minimize_parity_functions(&lockstep, &CedOptions::default()).cover;
        assert!(
            lockstep.all_covered(&cover.masks),
            "seed {seed}: invalid cover"
        );
        if !hardware.all_covered(&cover.masks) {
            witness = Some((seed, hardware.uncovered_rows(&cover.masks).len()));
            break;
        }
    }
    let (seed, holes) = witness.expect(
        "no machine in the seed range exhibits the gap — if generator or \
         solver behaviour changed, widen the search before weakening E5",
    );
    assert!(holes > 0);
    eprintln!("witness: seed {seed}, {holes} hardware-only uncovered cases");
}

#[test]
fn gap_is_impossible_at_p1() {
    // At p = 1 the step-difference definitions coincide, so any cover of
    // one table covers the other.
    for seed in 0..6u64 {
        let fsm = machine(seed);
        let (lockstep, hardware) = tables_for(&fsm, 1);
        assert_eq!(lockstep, hardware, "seed {seed}: p=1 tables differ");
    }
}

#[test]
fn hardware_cover_is_sound_for_hardware_table() {
    // The dual direction of E5's fix: optimizing directly against the
    // hardware table yields a cover that is (trivially) valid for it —
    // at whatever q that costs.
    let fsm = machine(3);
    let (_, hardware) = tables_for(&fsm, 2);
    let cover = minimize_parity_functions(&hardware, &CedOptions::default()).cover;
    assert!(hardware.all_covered(&cover.masks));
}
