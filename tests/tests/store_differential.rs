//! Store ≡ no-store differential suite: a content-addressed cache hit
//! must be indistinguishable from a recompute. Every artifact the
//! pipeline renders — `CircuitReport` fields, `ced-suite-report/1`
//! documents, `ced-cert-report/1` documents — is compared across
//! (no store) / (cold store) / (warm store), across `--jobs 1` and
//! `--jobs 4` workers sharing one store, and across a store whose
//! on-disk artifacts were deliberately corrupted. The only acceptable
//! difference is wall-clock; corrupted artifacts must degrade to
//! misses (rebuilt and re-stored), never to wrong answers.

use ced_core::pipeline::{
    run_circuit, run_circuit_controlled, CircuitReport, PipelineControl, PipelineOptions,
};
use ced_core::{run_suite, SuiteControl, SuiteOptions};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::Budget;
use ced_store::{StageCounters, Store};
use std::path::PathBuf;
use std::sync::Arc;

const MACHINES: [&str; 3] = ["s27", "tav", "dk512"];
const LATENCIES: [usize; 2] = [1, 2];

fn scaled(name: &str) -> Fsm {
    bench::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scaled analogue named {name}"))
        .build()
}

fn counters(store: &Store, stage: &str) -> StageCounters {
    store
        .stats()
        .stages
        .into_iter()
        .find(|(s, _)| s == stage)
        .map(|(_, c)| c)
        .unwrap_or_default()
}

/// Field-by-field equality over everything a `CircuitReport` records —
/// including exact parity masks, f64 costs and solver telemetry, all
/// of which are deterministic and must survive a cache round trip
/// bit-exactly.
fn assert_reports_equal(a: &CircuitReport, b: &CircuitReport, what: &str) {
    assert_eq!(a.name, b.name, "{what}: name");
    assert_eq!(a.inputs, b.inputs, "{what}: inputs");
    assert_eq!(a.state_bits, b.state_bits, "{what}: state bits");
    assert_eq!(a.outputs, b.outputs, "{what}: outputs");
    assert_eq!(a.original_gates, b.original_gates, "{what}: gates");
    assert_eq!(a.original_cost, b.original_cost, "{what}: cost");
    assert_eq!(a.detect_stats, b.detect_stats, "{what}: detect stats");
    assert_eq!(a.duplication.area, b.duplication.area, "{what}: dup area");
    assert_eq!(a.latencies.len(), b.latencies.len(), "{what}: bounds");
    for (x, y) in a.latencies.iter().zip(&b.latencies) {
        let p = x.latency;
        assert_eq!(x.latency, y.latency, "{what}: latency");
        assert_eq!(x.erroneous_cases, y.erroneous_cases, "{what} p={p}: cases");
        assert_eq!(x.cover.masks, y.cover.masks, "{what} p={p}: masks");
        assert_eq!(x.cost, y.cost, "{what} p={p}: cost");
        assert_eq!(x.lp_solves, y.lp_solves, "{what} p={p}: lp solves");
        assert_eq!(
            x.rounding_attempts, y.rounding_attempts,
            "{what} p={p}: rounding"
        );
        assert_eq!(x.method, y.method, "{what} p={p}: method");
        assert_eq!(
            x.degradation.len(),
            y.degradation.len(),
            "{what} p={p}: degradation"
        );
    }
}

fn run_with_store(fsm: &Fsm, store: Option<&Store>) -> CircuitReport {
    let options = PipelineOptions::paper_defaults();
    let budget = Budget::unlimited();
    let mut control = PipelineControl::new(&budget);
    control.store = store;
    run_circuit_controlled(fsm, &LATENCIES, &options, &CellLibrary::new(), control)
        .expect("pipeline completes")
}

/// A scratch directory under the target-adjacent temp root; removed on
/// drop so reruns start clean.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("ced-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The tentpole claim, per machine: (no store), (cold store) and
/// (warm store) pipelines produce identical reports, and the warm run
/// serves every stage from the store.
#[test]
fn pipeline_reports_identical_plain_cold_warm() {
    let options = PipelineOptions::paper_defaults();
    for name in MACHINES {
        let fsm = scaled(name);
        let plain = run_circuit(&fsm, &LATENCIES, &options, &CellLibrary::new())
            .expect("pipeline completes");

        let store = Store::in_memory();
        let cold = run_with_store(&fsm, Some(&store));
        assert!(
            counters(&store, "synth").puts >= 1,
            "{name}: cold run must store the synthesized circuit"
        );
        assert!(
            counters(&store, "search").puts >= LATENCIES.len() as u64,
            "{name}: cold run must store one search artifact per bound"
        );

        let before = counters(&store, "search");
        let warm = run_with_store(&fsm, Some(&store));
        let after = counters(&store, "search");
        assert_eq!(
            after.hits - before.hits,
            LATENCIES.len() as u64,
            "{name}: warm run must hit every search artifact"
        );
        assert_eq!(
            after.misses, before.misses,
            "{name}: warm run must not miss"
        );

        assert_reports_equal(&plain, &cold, &format!("{name}: plain vs cold"));
        assert_reports_equal(&plain, &warm, &format!("{name}: plain vs warm"));
    }
}

/// Replaces the `"jobs":N` header token (the only part of a suite
/// report that records the worker count) with a fixed value.
fn normalize_jobs(json: &str) -> String {
    let Some(start) = json.find("\"jobs\":") else {
        return json.to_string();
    };
    let digits = start + "\"jobs\":".len();
    let end = json[digits..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |i| digits + i);
    format!("{}\"jobs\":0{}", &json[..start], &json[end..])
}

/// One store shared by `--jobs 1` and `--jobs 4` suite campaigns:
/// first-writer-wins puts keep the report byte-identical to the
/// storeless serial run at every job count, cold or warm.
#[test]
fn suite_json_identical_across_job_counts_sharing_one_store() {
    let machines: Vec<(String, Fsm)> = MACHINES
        .iter()
        .map(|&name| (name.to_string(), scaled(name)))
        .collect();
    let options = SuiteOptions {
        latencies: LATENCIES.to_vec(),
        ..SuiteOptions::default()
    };
    let lib = CellLibrary::new();

    let run = |pool: Option<&ParExec>, store: Option<Arc<Store>>| {
        let mut control = SuiteControl::new();
        control.pool = pool;
        control.store = store;
        normalize_jobs(
            &run_suite(&machines, &options, &lib, control)
                .expect("suite completes")
                .to_json(),
        )
    };

    let plain = run(None, None);
    let store = Arc::new(Store::in_memory());
    let cold_four = run(Some(&ParExec::new(4)), Some(Arc::clone(&store)));
    assert!(
        counters(&store, "search").puts > 0,
        "cold pooled suite must populate the store"
    );
    let warm_one = run(Some(&ParExec::new(1)), Some(Arc::clone(&store)));
    let warm_four = run(Some(&ParExec::new(4)), Some(Arc::clone(&store)));
    assert!(
        counters(&store, "search").hits > 0,
        "warm suite runs must hit the store"
    );

    assert_eq!(plain, cold_four, "plain vs cold --jobs 4");
    assert_eq!(plain, warm_one, "plain vs warm --jobs 1");
    assert_eq!(plain, warm_four, "plain vs warm --jobs 4");
}

/// Re-certification after a stored pipeline run: the verifier chain
/// re-proves every claim, the store only feeds it the `synth` and
/// `tensor` artifacts — and the `ced-cert-report/1` bytes match the
/// storeless certification exactly.
#[test]
fn cert_report_identical_with_and_without_store() {
    let options = PipelineOptions::paper_defaults();
    let lib = CellLibrary::new();
    for name in MACHINES {
        let fsm = scaled(name);
        let store = Store::in_memory();
        let report = run_with_store(&fsm, Some(&store));

        let plain = ced_cert::certify_report(
            &fsm,
            &report,
            &options,
            &ced_cert::CertifyOptions::default(),
            &Budget::unlimited(),
        )
        .expect("certification ran");
        let plain = ced_cert::report::cert_report_json(&[plain]).render();

        let tensor_before = counters(&store, "tensor");
        let stored = ced_cert::certify_report_stored(
            &fsm,
            &report,
            &options,
            &ced_cert::CertifyOptions::default(),
            &Budget::unlimited(),
            &ParExec::new(2),
            Some(&store),
        )
        .expect("certification ran");
        let stored = ced_cert::report::cert_report_json(&[stored]).render();
        let tensor_after = counters(&store, "tensor");

        assert_eq!(plain, stored, "{name}: cert bytes with vs without store");
        assert!(
            tensor_after.hits > tensor_before.hits,
            "{name}: stored certification must reuse the run's tensors"
        );
        let report_check = run_circuit(&fsm, &LATENCIES, &options, &lib).expect("pipeline");
        assert_reports_equal(&report, &report_check, &format!("{name}: stored pipeline"));
    }
}

/// Corruption on disk is a miss, never a wrong answer: bit-flip and
/// truncate every artifact of a persisted store, rerun warm, and the
/// report must still match the storeless run exactly while the store
/// records the corruption and rebuilds every artifact.
#[test]
fn corrupted_on_disk_artifacts_are_rebuilt_not_believed() {
    let scratch = ScratchDir::new("corrupt");
    let fsm = scaled("tav");
    let options = PipelineOptions::paper_defaults();
    let plain =
        run_circuit(&fsm, &LATENCIES, &options, &CellLibrary::new()).expect("pipeline completes");

    {
        let store = Store::open(&scratch.0).expect("store opens");
        let cold = run_with_store(&fsm, Some(&store));
        assert_reports_equal(&plain, &cold, "tav: plain vs cold on-disk");
        store.persist().expect("index persists");
    }

    let mut mangled = 0usize;
    for entry in std::fs::read_dir(&scratch.0).expect("store dir readable") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("art") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("artifact readable");
        if mangled.is_multiple_of(2) {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x41;
        } else {
            bytes.truncate(bytes.len() / 2);
        }
        std::fs::write(&path, bytes).expect("artifact writable");
        mangled += 1;
    }
    assert!(mangled >= 3, "expected synth+tensor+search artifacts");

    let store = Store::open(&scratch.0).expect("store reopens");
    let warm = run_with_store(&fsm, Some(&store));
    assert_reports_equal(&plain, &warm, "tav: plain vs corrupted-store rerun");

    let stats = store.stats();
    let corrupt: u64 = stats.stages.iter().map(|(_, c)| c.corrupt).sum();
    let puts: u64 = stats.stages.iter().map(|(_, c)| c.puts).sum();
    assert!(corrupt > 0, "corrupted artifacts must be detected");
    assert!(
        puts > 0,
        "corrupted artifacts must be rebuilt and re-stored"
    );

    // The rebuilt store now serves clean hits again.
    let again = run_with_store(&fsm, Some(&store));
    assert_reports_equal(&plain, &again, "tav: plain vs rebuilt-store rerun");
}
