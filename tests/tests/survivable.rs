//! Survivability acceptance tests: a suite campaign killed mid-run
//! via the cooperative cancel token and resumed from its checkpoint
//! must produce a final JSON report bit-identical to an uninterrupted
//! run with the same seed, and a pathological machine under a tight
//! budget must surface as a typed interrupt/quarantine with partial
//! results — never a hang, panic or abort.

use ced_core::pipeline::{PipelineControl, PipelineError, PipelineOptions};
use ced_core::{
    run_circuit_controlled, run_suite, MachineStatus, SuiteCheckpoint, SuiteControl, SuiteError,
    SuiteOptions, SUITE_CHECKPOINT_KIND,
};
use ced_fsm::machine::Fsm;
use ced_fsm::suite as bench;
use ced_logic::gate::CellLibrary;
use ced_runtime::{decode_checkpoint, encode_checkpoint, Budget, InterruptKind};

fn scaled_machines(names: &[&str]) -> Vec<(String, Fsm)> {
    names
        .iter()
        .map(|name| {
            let spec = bench::paper_table1_scaled()
                .into_iter()
                .find(|s| s.name == *name)
                .unwrap_or_else(|| panic!("no scaled analogue named {name}"));
            (spec.name.to_string(), spec.build())
        })
        .collect()
}

#[test]
fn suite_killed_mid_run_resumes_bit_identical() {
    let machines = scaled_machines(&["s27", "tav"]);
    let options = SuiteOptions {
        latencies: vec![1],
        ..SuiteOptions::default()
    };
    let lib = CellLibrary::new();

    let uninterrupted = run_suite(&machines, &options, &lib, SuiteControl::new())
        .expect("clean suite run completes");

    // Kill the campaign via the cancel token as soon as the first
    // machine's checkpoint lands.
    let control = SuiteControl::new();
    let cancel = control.cancel.clone();
    let mut control = control;
    let mut saved: Option<Vec<u8>> = None;
    let mut sink = |c: &SuiteCheckpoint| {
        saved = Some(encode_checkpoint(SUITE_CHECKPOINT_KIND, &c.to_bytes()));
        cancel.cancel();
    };
    control.on_checkpoint = Some(&mut sink);
    let err = run_suite(&machines, &options, &lib, control).unwrap_err();
    let SuiteError::Interrupted(i) = err else {
        panic!("cancelled suite must interrupt, got a different error");
    };
    assert_eq!(i.interrupted.kind, InterruptKind::Cancelled);
    assert_eq!(i.checkpoint.machines_done(), 1);
    assert_eq!(i.partial.records.len(), 1);

    // Resume through the on-disk container (magic/version/checksum),
    // exactly as `ced suite --resume` would.
    let container = saved.expect("checkpoint sink fired");
    let payload =
        decode_checkpoint(&container, SUITE_CHECKPOINT_KIND).expect("container validates");
    let checkpoint = SuiteCheckpoint::from_bytes(&payload).expect("payload decodes");
    let mut control = SuiteControl::new();
    control.resume = Some(checkpoint);
    let resumed = run_suite(&machines, &options, &lib, control).expect("resumed run completes");

    assert_eq!(
        resumed.to_json(),
        uninterrupted.to_json(),
        "resumed report must be bit-identical to the uninterrupted run"
    );
}

#[test]
fn pathological_budget_quarantines_with_partial_results() {
    // Exhaustive input enumeration plus the full (uncollapsed) fault
    // list is the heaviest configuration the pipeline supports; one
    // work tick cannot even clear the first fault boundary.
    let machines = scaled_machines(&["s27"]);
    let mut options = SuiteOptions {
        latencies: vec![1],
        machine_ticks: Some(1),
        ..SuiteOptions::default()
    };
    options.pipeline.input_granularity = ced_core::pipeline::InputGranularity::Exhaustive;
    options.pipeline.full_fault_list = true;

    let report = run_suite(
        &machines,
        &options,
        &CellLibrary::new(),
        SuiteControl::new(),
    )
    .expect("budget exhaustion must not abort the suite");
    let rec = &report.records[0];
    assert_eq!(rec.status, MachineStatus::Quarantined);
    assert_eq!(rec.attempts, 2, "degraded retry must have been attempted");
    assert!(
        rec.notes
            .iter()
            .any(|n| n.contains("interrupted by budget")),
        "notes must carry the typed interrupt: {:?}",
        rec.notes
    );
    let json = report.to_json();
    assert!(json.contains("\"quarantined\":1"));
    assert!(json.contains("\"report\":null"));
}

#[test]
fn pipeline_tick_cap_is_a_typed_resumable_interrupt() {
    let machines = scaled_machines(&["dk512"]);
    let (_, fsm) = &machines[0];
    let options = PipelineOptions::paper_defaults();
    let budget = Budget::new().with_tick_cap(10);
    let err = run_circuit_controlled(
        fsm,
        &[1],
        &options,
        &CellLibrary::new(),
        PipelineControl::new(&budget),
    )
    .expect_err("a 10-tick budget cannot finish the build");
    let PipelineError::Interrupted(i) = err else {
        panic!("tick exhaustion must surface as a typed interrupt");
    };
    assert_eq!(i.interrupted.kind, InterruptKind::TickCapExceeded);
    let ckpt = i
        .checkpoint
        .as_ref()
        .expect("build-phase interrupts leave a resumable checkpoint");

    // The checkpoint is genuinely usable: an unlimited resume finishes.
    let unlimited = Budget::unlimited();
    let mut control = PipelineControl::new(&unlimited);
    control.resume = Some(ckpt.clone());
    let report = run_circuit_controlled(fsm, &[1], &options, &CellLibrary::new(), control)
        .expect("resume with an unlimited budget completes");
    assert_eq!(report.latencies.len(), 1);
}
